#!/usr/bin/env python
"""CI smoke test for the content-addressed result store (`repro.store`).

Exercises the store the way it is meant to be used — across process
boundaries — and asserts the three properties the unit tests cannot see
from inside one interpreter:

1. **CLI cold/warm**: ``python -m repro <prog> --store DIR`` in one
   process writes the entry (``0 hit(s), 1 miss(es)``); the *same
   command in a fresh process* warm-starts (``1 hit(s), 0 miss(es)``)
   and prints byte-identical points-to answers;
2. **server crash/restart**: a ``python -m repro serve --store DIR``
   instance solves a session, is SIGKILLed (no clean shutdown, no
   in-memory state survives), and a rebooted server over the same
   directory answers the same query from the store — ``store_hits > 0``
   in the session document, identical names;
3. **latency**: an in-process warm start is at least 5x faster than the
   cold solve it replaces (measured on a benchmark where the solve
   dominates; the ratio is asserted with margin for CI-load noise).

Exit status is nonzero on any violation, with the failing step named on
stderr.  Usage::

    PYTHONPATH=src python tools/store_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.service.client import ServiceClient  # noqa: E402

#: The suite's densest program: its solve dominates the warm-start
#: rebuild by ~7x even with all code paths hot, and by far more in the
#: fresh-process probes below; the smoke asserts a conservative 5x so
#: CI-load noise cannot flake it.
PROGRAM = REPO / "benchmarks" / "c_programs" / "bc.c"
MIN_SPEEDUP = 5.0

SOURCE = """\
struct S { int *s1; int *s2; };
struct S s;
int x, y, *p;
void main(void) {
    s.s1 = &x;
    p = s.s1;
}
"""


def fail(step: str, detail: str) -> None:
    print(f"store-smoke FAILED at {step}: {detail}", file=sys.stderr)
    raise SystemExit(1)


def run_cli(store: str) -> tuple[str, list[str]]:
    """One `python -m repro` run; returns (store line, answer lines)."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", str(PROGRAM),
         "--store", store, "--profile"],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=300,
    )
    if proc.returncode != 0:
        fail("cli", f"exit {proc.returncode}; stderr tail: "
             f"{proc.stderr.strip().splitlines()[-3:]}")
    store_lines = [ln for ln in proc.stderr.splitlines()
                   if ln.startswith("# store:")]
    if len(store_lines) != 1:
        fail("cli", f"expected one '# store:' line, got {store_lines!r}")
    answers = [ln for ln in proc.stdout.splitlines()
               if ln and not ln.startswith("#")]
    return store_lines[0], answers


def check_cli_round_trip(store: str) -> None:
    cold_line, cold_answers = run_cli(store)
    if "0 hit(s), 1 miss(es)" not in cold_line:
        fail("cli cold", f"expected a miss+write, got {cold_line!r}")
    if not cold_answers:
        fail("cli cold", "no points-to answers on stdout")

    warm_line, warm_answers = run_cli(store)       # fresh process
    if "1 hit(s), 0 miss(es)" not in warm_line:
        fail("cli warm", f"expected a pure hit, got {warm_line!r}")
    if warm_answers != cold_answers:
        diff = [(a, b) for a, b in zip(cold_answers, warm_answers) if a != b]
        fail("cli warm", f"answers not byte-identical: {diff[:3]!r}")
    print(f"cli round-trip ok: {len(cold_answers)} answer lines "
          f"byte-identical across processes")


def boot_server(store: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", store],
        cwd=REPO, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("serving on http://"):
        proc.kill()
        _, err = proc.communicate(timeout=10)
        fail("server boot", f"bad announce line {line!r}; "
             f"stderr: {err.strip()}")
    return proc, line.split()[-1]


def check_server_restart(store: str) -> None:
    proc, url = boot_server(store)
    try:
        client = ServiceClient(url)
        sid = client.create_session(SOURCE, name="smoke.c")["session"]["id"]
        cold = client.points_to(sid, "p")["names"]
        if cold != ["x"]:
            fail("server cold", f"p -> {cold}, expected ['x']")
    finally:
        proc.send_signal(signal.SIGKILL)           # crash, not shutdown
        proc.communicate(timeout=30)

    proc, url = boot_server(store)
    try:
        client = ServiceClient(url)
        sid = client.create_session(SOURCE, name="smoke.c")["session"]["id"]
        warm = client.points_to(sid, "p")["names"]
        if warm != cold:
            fail("server warm", f"p -> {warm} after restart, had {cold}")
        doc = client.get_session(sid)["session"]
        hits = (doc.get("store") or {}).get("hits", 0)
        if not hits:
            fail("server warm", f"store_hits not visible: {doc.get('store')}")
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.communicate(timeout=30)
    print(f"server restart ok: SIGKILL survived, {hits} store hit(s), "
          f"identical answer {warm}")


_PROBE = """\
import sys, time
from repro import CommonInitialSequence
from repro.session import AnalysisSession

mode, store, path = sys.argv[1], sys.argv[2], sys.argv[3]
source = open(path).read()
session = AnalysisSession.from_c(source, name="probe.c", store=store)
strategy = CommonInitialSequence()
t0 = time.perf_counter()
if mode == "cold":
    session.solve(strategy)
else:
    if session.warm_start(strategy) is None:
        sys.exit("warm_start missed")
elapsed = time.perf_counter() - t0
if mode == "warm" and session.store_hits != 1:
    sys.exit(f"store_hits = {session.store_hits}")
print(f"{elapsed:.6f}")
"""


def _probe(mode: str, store: str) -> float:
    """Time one solve/warm-start as the first action of a fresh process
    — the scenario the on-disk store exists for.  Interpreter startup
    and parsing stay outside the timed region on both sides."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE, mode, store, str(PROGRAM)],
        cwd=REPO, env=env, capture_output=True, text=True, timeout=300,
    )
    if proc.returncode != 0:
        fail("latency", f"{mode} probe failed: {proc.stderr.strip()}")
    return float(proc.stdout.strip())


def check_latency(store: str) -> None:
    _probe("cold", store)                  # write the entry
    t_cold = min(_probe("cold", os.path.join(store, f"fresh{i}"))
                 for i in range(2))        # fresh dirs: always a real solve
    t_warm = min(_probe("warm", store) for i in range(2))
    ratio = t_cold / t_warm
    if ratio < MIN_SPEEDUP:
        fail("latency", f"warm start only {ratio:.1f}x faster "
             f"({t_cold * 1e3:.1f}ms -> {t_warm * 1e3:.1f}ms), "
             f"need >= {MIN_SPEEDUP}x")
    print(f"latency ok: cold {t_cold * 1e3:.1f}ms, warm "
          f"{t_warm * 1e3:.1f}ms ({ratio:.1f}x, floor {MIN_SPEEDUP}x)")


def main() -> int:
    started = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-store-smoke-") as store:
        check_cli_round_trip(store)
        check_server_restart(store)
        check_latency(os.path.join(store, "latency"))
    print(f"store-smoke PASSED in {time.monotonic() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
