#!/usr/bin/env python
"""Split benchmark programs into linkable translation units.

A thin CLI over :func:`repro.link.split_translation_units`: each input
file is split into per-function-group TUs (a shared header of types and
declarations, variable definitions in TU 0, contiguous groups of
function bodies), written to an output directory.  ``--check`` then
runs the differential the linker guarantees: analyzing the linked TUs
must be byte-identical — facts, deref profile, gated stats — to
analyzing their concatenation.

Usage::

    python tools/split_tu.py benchmarks/c_programs/*.c -o build/tus
    python tools/split_tu.py benchmarks/c_programs/bc.c --parts 4 --check
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core import STRATEGY_BY_KEY, Engine  # noqa: E402
from repro.frontend import program_from_c  # noqa: E402
from repro.link import (  # noqa: E402
    SplitError,
    concat_sources,
    link_sources,
    split_translation_units,
)


def check_differential(tus, name: str) -> bool:
    """Linked vs. concatenated equality under the CIS strategy."""
    from repro.bench.harness import _UNGATED_STATS

    def snapshot(program):
        result = Engine(
            program, STRATEGY_BY_KEY["common_initial_sequence"]()
        ).solve()
        facts = sorted(map(repr, result.facts.all_facts()))
        gated = {k: v for k, v in result.stats.as_dict().items()
                 if k not in _UNGATED_STATS}
        return facts, gated

    linked = snapshot(link_sources(tus, name=name))
    concat = snapshot(program_from_c(concat_sources(tus), name))
    return linked == concat


def main(argv=None) -> int:
    p = argparse.ArgumentParser(
        prog="python tools/split_tu.py",
        description="Split C programs into linkable translation units.",
    )
    p.add_argument("files", nargs="+", type=Path, help="C source files")
    p.add_argument(
        "-o", "--output", type=Path, default=None, metavar="DIR",
        help="write the TUs under DIR/<stem>/ (default: print names only)",
    )
    p.add_argument(
        "--parts", type=int, default=3, metavar="N",
        help="translation units per program (default: 3; capped at the "
        "number of function definitions)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="verify linked == concatenated analysis for each program",
    )
    args = p.parse_args(argv)

    failures = 0
    for path in args.files:
        try:
            source = path.read_text()
        except OSError as err:
            print(f"{path}: cannot read: {err.strerror}", file=sys.stderr)
            failures += 1
            continue
        try:
            tus = split_translation_units(
                source, name=path.name, parts=args.parts
            )
        except SplitError as err:
            print(f"{path.name}: skipped ({err})")
            continue
        except Exception as err:  # front-end errors: report, keep going
            print(f"{path.name}: failed ({err})", file=sys.stderr)
            failures += 1
            continue
        if args.output is not None:
            outdir = args.output / path.stem
            outdir.mkdir(parents=True, exist_ok=True)
            for tu_name, text in tus:
                (outdir / tu_name).write_text(text)
        status = f"{len(tus)} TUs"
        if args.check:
            if check_differential(tus, path.name):
                status += ", linked == concatenated"
            else:
                status += ", DIVERGED"
                failures += 1
        print(f"{path.name}: {status}"
              + (f" -> {args.output / path.stem}" if args.output else ""))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
