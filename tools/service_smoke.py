#!/usr/bin/env python
"""CI smoke test for the analysis service (`python -m repro serve`).

Boots the real server as a subprocess on an ephemeral port, then drives
it the way an external tenant would:

1. parse the ``serving on <url>`` announce line;
2. ``GET /healthz`` must report ``ok``;
3. a full create → query → incremental delta → re-query round-trip via
   :class:`repro.service.client.ServiceClient`, checking the points-to
   answers at each step;
4. a sweep of ADVERSARIAL-preset fuzz programs submitted over HTTP in
   both strict and lenient mode — every response must be a session or a
   structured JSON diagnostic envelope, never a 500;
5. SIGTERM must produce a clean shutdown (exit 0, ``shutdown: clean``).

Exit status is nonzero on any violation, with the failing step named on
stderr.  Usage::

    PYTHONPATH=src python tools/service_smoke.py [--seeds 0:25]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.service.client import ServiceClient, ServiceClientError  # noqa: E402
from repro.suite.generator import ADVERSARIAL, generate_program  # noqa: E402

SOURCE = """\
struct S { int *s1; int *s2; };
struct S s;
int x, y, *p;
void main(void) {
    s.s1 = &x;
    p = s.s1;
}
"""


def fail(step: str, detail: str) -> None:
    print(f"service-smoke FAILED at {step}: {detail}", file=sys.stderr)
    raise SystemExit(1)


def boot() -> tuple[subprocess.Popen, str]:
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        cwd=REPO, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("serving on http://"):
        proc.kill()
        _, err = proc.communicate(timeout=10)
        fail("boot", f"bad announce line {line!r}; stderr: {err.strip()}")
    return proc, line.split()[-1]


def check_round_trip(client: ServiceClient) -> None:
    if client.healthz().get("status") != "ok":
        fail("healthz", repr(client.healthz()))
    doc = client.create_session(SOURCE, name="smoke.c")
    sid = doc["session"]["id"]
    got = client.points_to(sid, "p")["names"]
    if got != ["x"]:
        fail("query", f"p -> {got}, expected ['x']")
    client.add_statements(
        sid, [{"form": "addrof", "lhs": "p", "target": "y"},
              {"form": "copy", "lhs": "p", "rhs": "s", "path": ["s1"]}],
        function="main",
    )
    got = client.points_to(sid, "p")["names"]
    if got != ["x", "y"]:
        fail("delta re-query", f"p -> {got}, expected ['x', 'y']")
    alias = client.may_alias(sid, "p", "s.s1")
    if not alias["may_alias"]:
        fail("alias query", repr(alias))
    print(f"round-trip ok: session {sid}, delta grew p to {got}")


def check_adversarial(client: ServiceClient, seeds: range) -> None:
    created = rejected = 0
    for seed in seeds:
        source = generate_program(seed, ADVERSARIAL)
        for strict in (True, False):
            try:
                doc = client.create_session(
                    source, name=f"fuzz{seed}.c", strict=strict)
                created += 1
                client.deref_stats(doc["session"]["id"])
            except ServiceClientError as err:
                rejected += 1
                if not 400 <= err.status < 500:
                    fail("adversarial",
                         f"seed {seed} strict={strict}: HTTP {err.status}")
                if not err.kind:
                    fail("adversarial",
                         f"seed {seed} strict={strict}: unstructured "
                         f"error {err.payload!r}")
    metrics = client.metrics()["server"]
    if metrics["internal_errors"] or "5xx" in metrics["responses_by_status"]:
        fail("adversarial", f"server saw a 500: {metrics}")
    print(f"adversarial sweep ok: {created} sessions created, "
          f"{rejected} structured rejections, 0 internal errors")


def check_shutdown(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        out, err = proc.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("shutdown", "server did not exit within 30s of SIGTERM")
    if proc.returncode != 0:
        fail("shutdown", f"exit code {proc.returncode}; stderr: {err.strip()}")
    if "shutdown: clean" not in out:
        fail("shutdown", f"missing clean-shutdown line in {out!r}")
    print("shutdown ok: exit 0, clean")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", default="0:25", metavar="LO:HI",
                    help="ADVERSARIAL seed range for the HTTP fuzz sweep")
    args = ap.parse_args(argv)
    lo, hi = (int(part) for part in args.seeds.split(":"))

    started = time.monotonic()
    proc, url = boot()
    try:
        client = ServiceClient(url)
        check_round_trip(client)
        check_adversarial(client, range(lo, hi))
    except BaseException:
        proc.kill()
        raise
    check_shutdown(proc)
    print(f"service-smoke PASSED in {time.monotonic() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
