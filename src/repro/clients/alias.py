"""May-alias queries on top of points-to results.

Two lvalue expressions may alias when the locations they denote can
overlap.  For normalized references this reduces to points-to set
intersection plus the structural overlap rules of each reference form:

- two `FieldRef`s into the same object overlap when one's path is a
  prefix of the other *after normalization* (the shorter path denotes an
  enclosing aggregate);
- two `OffsetRef`s overlap when their byte ranges intersect (sizes come
  from the layout);
- references into different objects never overlap.

This is the interface a client like a code slicer actually consumes; the
paper's precision story (Figure 4) is exactly about how many spurious
"may alias" answers each instance produces.
"""

from __future__ import annotations

from typing import Union

from ..core.engine import Result
from ..ir.objects import AbstractObject
from ..ir.refs import FieldRef, OffsetRef, Ref

__all__ = ["refs_overlap", "may_alias", "may_point_to_same"]


def refs_overlap(result: Result, a: Ref, b: Ref) -> bool:
    """Do two *normalized* references denote overlapping storage?"""
    if a.obj is not b.obj:
        return False
    if isinstance(a, FieldRef) and isinstance(b, FieldRef):
        n = min(len(a.path), len(b.path))
        return a.path[:n] == b.path[:n]
    if isinstance(a, OffsetRef) and isinstance(b, OffsetRef):
        layout = result.strategy.layout
        if a.offset == b.offset:
            return True
        lo, hi = (a, b) if a.offset <= b.offset else (b, a)
        # Without per-reference size information, use the scalar-word
        # granularity the Offsets strategy tracks values at.
        try:
            word = layout.abi.pointer_size
        except AttributeError:  # pragma: no cover - defensive
            word = 4
        return hi.offset < lo.offset + word
    return False


def _as_ref(result: Result, x: Union[AbstractObject, Ref]) -> Ref:
    if isinstance(x, AbstractObject):
        x = FieldRef(x, ())
    if isinstance(x, FieldRef):
        return result.strategy.normalize(x)
    return x


def may_alias(result: Result, p: Union[AbstractObject, Ref],
              q: Union[AbstractObject, Ref]) -> bool:
    """May the pointers ``p`` and ``q`` point to overlapping storage?

    ``p``/``q`` are pointer *holders*: objects or field references whose
    stored values are addresses.  Returns True when some pointee of one
    overlaps some pointee of the other.
    """
    pa = result.facts.points_to(_as_ref(result, p))
    pb = result.facts.points_to(_as_ref(result, q))
    if not pa or not pb:
        return False
    for ra in pa:
        for rb in pb:
            if refs_overlap(result, ra, rb):
                return True
    return False


def may_point_to_same(result: Result, p, q) -> bool:
    """Stricter variant: a shared *identical* normalized pointee."""
    pa = result.facts.points_to(_as_ref(result, p))
    pb = result.facts.points_to(_as_ref(result, q))
    return bool(pa & pb)
