"""Downstream clients of the points-to analysis.

- :func:`~repro.clients.derefstats.deref_stats` — average points-to set
  size per dereferenced pointer (the paper's Figure 4 metric);
- :func:`~repro.clients.callgraph.build_call_graph` — function-pointer
  aware call graph;
- :func:`~repro.clients.modref.mod_ref` — transitive MOD/REF sets.
"""

from .alias import may_alias, may_point_to_same, refs_overlap
from .callgraph import CallGraph, build_call_graph
from .derefstats import DerefSite, DerefStats, deref_stats
from .export import call_graph_dot, facts_json, points_to_dot
from .modref import ModRef, mod_ref

__all__ = [
    "CallGraph",
    "DerefSite",
    "DerefStats",
    "ModRef",
    "build_call_graph",
    "call_graph_dot",
    "deref_stats",
    "facts_json",
    "may_alias",
    "may_point_to_same",
    "mod_ref",
    "points_to_dot",
    "refs_overlap",
]
