"""MOD/REF analysis — a downstream client of the points-to results.

For each function, compute the sets of abstract objects it may *modify*
(write) and *reference* (read), both directly and through pointers, and
transitively through the functions it may call.  This is the
"modification side-effects problem" the paper's §6 cites as Ryder et al.'s
application of their offsets-based analysis [SRL98]; like slicing, its
precision is governed by the points-to sets, which makes it a useful
end-to-end probe of how much strategy precision buys a real client.

Temporaries are excluded from the reported sets: they are artifacts of
normalization, not program state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from ..core.engine import Result
from ..ir.objects import AbstractObject, ObjKind
from ..ir.stmts import AddrOf, Call, Copy, FieldAddr, Load, PtrArith, Store
from .callgraph import GLOBAL_CALLER, build_call_graph

__all__ = ["ModRef", "mod_ref"]

_TRANSPARENT = (ObjKind.TEMP, ObjKind.RETVAL, ObjKind.VARARG, ObjKind.FUNCTION)


def _visible(obj: AbstractObject) -> bool:
    return obj.kind not in _TRANSPARENT


@dataclass
class ModRef:
    """Per-function MOD and REF sets (object names)."""

    mod: Dict[str, Set[str]] = field(default_factory=dict)
    ref: Dict[str, Set[str]] = field(default_factory=dict)

    def mod_of(self, fn: str) -> FrozenSet[str]:
        return frozenset(self.mod.get(fn, ()))

    def ref_of(self, fn: str) -> FrozenSet[str]:
        return frozenset(self.ref.get(fn, ()))


def mod_ref(result: Result) -> ModRef:
    """Compute transitive MOD/REF sets from one analysis result."""
    program = result.program
    out = ModRef()
    for fn in list(program.functions) + [GLOBAL_CALLER]:
        out.mod.setdefault(fn, set())
        out.ref.setdefault(fn, set())

    # Local (intraprocedural) effects.
    for st in program.all_stmts():
        fn = st.fn or GLOBAL_CALLER
        mod = out.mod.setdefault(fn, set())
        ref = out.ref.setdefault(fn, set())
        if isinstance(st, Copy):
            if _visible(st.lhs):
                mod.add(st.lhs.name)
            if _visible(st.rhs.obj):
                ref.add(st.rhs.obj.name)
        elif isinstance(st, AddrOf):
            pass  # taking an address neither reads nor writes the target
        elif isinstance(st, Load):
            for tgt in result.points_to(st.ptr):
                if _visible(tgt.obj):
                    ref.add(tgt.obj.name)
        elif isinstance(st, Store):
            for tgt in result.points_to(st.ptr):
                if _visible(tgt.obj):
                    mod.add(tgt.obj.name)
            if _visible(st.rhs):
                ref.add(st.rhs.name)
        elif isinstance(st, FieldAddr):
            pass
        elif isinstance(st, PtrArith):
            for op in st.operands:
                if _visible(op):
                    ref.add(op.name)
        elif isinstance(st, Call):
            for arg in st.args:
                if _visible(arg):
                    ref.add(arg.name)

    # Transitive closure over the call graph.
    cg = build_call_graph(result)
    changed = True
    while changed:
        changed = False
        for caller, callees in cg.edges.items():
            cmod = out.mod.setdefault(caller, set())
            cref = out.ref.setdefault(caller, set())
            for callee in callees:
                for src, dst in ((out.mod.get(callee), cmod),
                                 (out.ref.get(callee), cref)):
                    if not src:
                        continue
                    before = len(dst)
                    dst |= src
                    if len(dst) != before:
                        changed = True
    return out
