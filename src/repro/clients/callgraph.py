"""Call-graph construction from points-to results.

Function pointers make call graphs a client of pointer analysis: the
possible targets of an indirect call are exactly the FUNCTION objects in
the points-to set of the called expression.  The precision of the
underlying strategy therefore directly shows up as spurious (or absent)
call edges — a classic downstream measure of points-to precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.engine import Result
from ..ir.objects import ObjKind
from ..ir.stmts import Call

__all__ = ["CallGraph", "build_call_graph"]

#: Pseudo-caller name for calls made from global initializers.
GLOBAL_CALLER = "<global>"


@dataclass
class CallGraph:
    """Caller → callee name edges, plus per-call-site target sets."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: (caller, line) → resolved target names for each indirect site.
    indirect_sites: Dict[Tuple[str, Optional[int]], Set[str]] = field(
        default_factory=dict
    )

    def callees(self, fn: str) -> FrozenSet[str]:
        return frozenset(self.edges.get(fn, ()))

    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())

    def reachable_from(self, root: str) -> Set[str]:
        """Functions transitively callable from ``root``."""
        seen: Set[str] = set()
        stack: List[str] = [root]
        while stack:
            fn = stack.pop()
            if fn in seen:
                continue
            seen.add(fn)
            stack.extend(self.edges.get(fn, ()))
        return seen

    def unresolved_indirect_sites(self) -> List[Tuple[str, Optional[int]]]:
        """Indirect call sites with an empty target set."""
        return [k for k, v in self.indirect_sites.items() if not v]


def build_call_graph(result: Result) -> CallGraph:
    """Build the call graph induced by one analysis result."""
    cg = CallGraph()
    for st in result.program.all_stmts():
        if not isinstance(st, Call):
            continue
        caller = st.fn or GLOBAL_CALLER
        targets: Set[str] = set()
        if st.indirect:
            for ref in result.points_to(st.callee):
                if ref.obj.kind is ObjKind.FUNCTION:
                    targets.add(ref.obj.name)
            cg.indirect_sites[(caller, st.line)] = set(targets)
        else:
            targets.add(st.callee.name)
        if targets:
            cg.edges.setdefault(caller, set()).update(targets)
    return cg
