"""Exporting analysis results as Graphviz DOT and machine-readable JSON.

Two graphs are commonly wanted downstream:

- the **points-to graph** — nodes are normalized locations, edges are
  ``pointsTo`` facts (optionally filtered to named program variables so
  the picture stays readable);
- the **call graph** — nodes are functions, solid edges direct calls,
  dashed edges targets resolved through function pointers.

The JSON form mirrors the fact base exactly and is meant for diffing two
runs (e.g. two strategies, or two ABIs) with standard tools.
"""

from __future__ import annotations

import json
from typing import Callable, Optional, Set

from ..core.engine import Result
from ..ir.objects import AbstractObject, ObjKind
from .callgraph import CallGraph, build_call_graph

__all__ = ["points_to_dot", "call_graph_dot", "facts_json"]

_HIDDEN_KINDS = (ObjKind.TEMP, ObjKind.RETVAL, ObjKind.VARARG)


def _default_filter(obj: AbstractObject) -> bool:
    return obj.kind not in _HIDDEN_KINDS


def _quote(s: str) -> str:
    return '"' + s.replace("\\", "\\\\").replace('"', '\\"') + '"'


def points_to_dot(
    result: Result,
    include: Optional[Callable[[AbstractObject], bool]] = None,
    title: str = "points-to",
) -> str:
    """Render the points-to graph as a DOT digraph.

    ``include`` filters *source* objects (default: hide compiler
    temporaries and interprocedural plumbing); targets of surviving
    edges are always shown.
    """
    keep = include or _default_filter
    lines = [
        f"digraph {_quote(title)} {{",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10];",
    ]
    nodes: Set[str] = set()
    edges = []
    for src, dst in result.facts.all_facts():
        if not keep(src.obj):
            continue
        s, d = repr(src), repr(dst)
        nodes.add(s)
        nodes.add(d)
        edges.append((s, d))
    for n in sorted(nodes):
        shape = "ellipse" if "malloc@" in n or "strdup@" in n else "box"
        lines.append(f"  {_quote(n)} [shape={shape}];")
    for s, d in sorted(edges):
        lines.append(f"  {_quote(s)} -> {_quote(d)};")
    lines.append("}")
    return "\n".join(lines)


def call_graph_dot(result: Result, title: str = "callgraph") -> str:
    """Render the call graph as DOT; indirect-call edges are dashed."""
    cg: CallGraph = build_call_graph(result)
    indirect_targets: Set[tuple] = set()
    for (caller, _line), targets in cg.indirect_sites.items():
        for t in targets:
            indirect_targets.add((caller, t))
    lines = [
        f"digraph {_quote(title)} {{",
        "  node [shape=oval, fontsize=10];",
    ]
    for caller in sorted(cg.edges):
        for callee in sorted(cg.edges[caller]):
            style = ' [style=dashed]' if (caller, callee) in indirect_targets else ""
            lines.append(f"  {_quote(caller)} -> {_quote(callee)}{style};")
    lines.append("}")
    return "\n".join(lines)


def facts_json(result: Result, include_temps: bool = False) -> str:
    """The full fact base as deterministic JSON (for diffing runs)."""
    out = {}
    for src in result.facts.sources():
        if not include_temps and src.obj.kind in _HIDDEN_KINDS:
            continue
        out[repr(src)] = sorted(map(repr, result.facts.points_to(src)))
    payload = {
        "program": result.program.name,
        "strategy": result.strategy.key,
        "portable": result.strategy.portable,
        "facts": dict(sorted(out.items())),
        "edge_count": result.facts.edge_count(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
