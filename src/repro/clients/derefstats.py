"""Points-to set sizes of dereferenced pointers — the paper's key metric.

Figure 4 of the paper reports, per program and per algorithm, the *average
points-to set size across all static instances of dereferenced pointers*.
This client computes that number from an analysis
:class:`~repro.core.engine.Result`:

- the deref sites are the program's non-synthetic loads, stores,
  address-of-field-through-pointer statements, and indirect calls
  (:meth:`Program.deref_stmts`);
- for each site, the size of the points-to set of the dereferenced
  pointer is taken **expanded**: a "Collapse Always" fact ``pointsTo(p, s)``
  where ``s`` is a structure counts once per field of ``s`` (the paper's
  parenthetical: "that fact is expanded to the set of facts
  pointsTo(p, s.α) for all fields α in s"), via
  :meth:`Strategy.target_weight`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.engine import Result
from ..ir.stmts import Stmt

__all__ = ["DerefSite", "DerefStats", "deref_stats"]


@dataclass(frozen=True)
class DerefSite:
    """One static dereference and the size of its pointer's points-to set."""

    stmt: Stmt
    pointer_name: str
    line: Optional[int]
    set_size: int


@dataclass
class DerefStats:
    """Aggregate over all deref sites of one analysis run (Figure 4 row)."""

    sites: List[DerefSite] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.sites)

    @property
    def total(self) -> int:
        return sum(s.set_size for s in self.sites)

    @property
    def average(self) -> float:
        """The Figure 4 number: average points-to set size per deref."""
        return self.total / self.count if self.sites else 0.0

    @property
    def maximum(self) -> int:
        return max((s.set_size for s in self.sites), default=0)

    @property
    def empty_sites(self) -> int:
        """Dereferences of pointers with no inferred pointee (dead code,
        or pointers only ever fed by unanalyzed input)."""
        return sum(1 for s in self.sites if s.set_size == 0)


def deref_stats(result: Result) -> DerefStats:
    """Compute Figure 4's statistic for one analysis result."""
    strategy = result.strategy
    out = DerefStats()
    for st in result.program.deref_stmts():
        ptr = result.pointer_of_deref(st)
        pset = result.points_to(ptr)
        size = sum(strategy.target_weight(ref) for ref in pset)
        out.sites.append(
            DerefSite(stmt=st, pointer_name=ptr.name, line=st.line, set_size=size)
        )
    return out
