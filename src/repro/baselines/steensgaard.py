"""Steensgaard's near-linear unification-based points-to analysis.

The paper's related-work section (§6) compares against Steensgaard
[Ste96b], whose algorithm trades precision for near-linear running time by
*unifying* the points-to sets of locations that are assigned to one
another, instead of propagating inclusions.  This module implements the
classic field-insensitive variant over the same normalized IR the
framework uses, so it can serve as a cheap baseline and as a soundness
cross-check (every Steensgaard alias pair must also be derivable by the
inclusion analysis run with "Collapse Always" — the reverse direction
bounds Steensgaard's extra imprecision).

Structure handling: structures are collapsed (each object is one node),
matching [Ste96b]; casting therefore needs no special treatment.

The implementation is a textbook union-find with a ``points-to`` link per
equivalence class:

- ``x = &y``   →  join(pts(x), ecr(y))
- ``x = y``    →  join(pts(x), pts(y))
- ``x = *y``   →  join(pts(x), pts(pts(y)))
- ``*x = y``   →  join(pts(pts(x)), pts(y))

where ``join`` unifies two classes and (recursively) their points-to
links.  Calls unify arguments with parameters and the call result with the
return value, including through function pointers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from ..ir.objects import AbstractObject, ObjKind
from ..ir.program import Program
from ..ir.stmts import (
    AddrOf,
    Call,
    Copy,
    FieldAddr,
    Load,
    PtrArith,
    Store,
)

__all__ = ["SteensgaardResult", "steensgaard"]


class _ECR:
    """Equivalence-class representative (union-find node)."""

    __slots__ = ("parent", "rank", "pts", "members")

    def __init__(self) -> None:
        self.parent: "_ECR" = self
        self.rank = 0
        #: The class this class points to, or None ("bottom").
        self.pts: Optional["_ECR"] = None
        #: Abstract objects whose storage this class represents.
        self.members: Set[AbstractObject] = set()


def _find(e: _ECR) -> _ECR:
    while e.parent is not e:
        e.parent = e.parent.parent
        e = e.parent
    return e


class SteensgaardResult:
    """Queryable result of a Steensgaard run."""

    def __init__(self, program: Program, ecr_of: Dict[AbstractObject, _ECR]):
        self.program = program
        self._ecr_of = ecr_of

    def points_to(self, obj: AbstractObject) -> FrozenSet[AbstractObject]:
        """Objects whose storage ``obj``'s value may address."""
        e = self._ecr_of.get(obj)
        if e is None:
            return frozenset()
        p = _find(e).pts
        if p is None:
            return frozenset()
        return frozenset(_find(p).members)

    def points_to_names(self, obj: AbstractObject) -> Set[str]:
        return {o.name for o in self.points_to(obj)}

    def may_alias(self, a: AbstractObject, b: AbstractObject) -> bool:
        """True when the two pointers may point to the same class."""
        ea, eb = self._ecr_of.get(a), self._ecr_of.get(b)
        if ea is None or eb is None:
            return False
        pa, pb = _find(ea).pts, _find(eb).pts
        return pa is not None and pb is not None and _find(pa) is _find(pb)

    def class_count(self) -> int:
        roots = {id(_find(e)) for e in self._ecr_of.values()}
        return len(roots)


class _Solver:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.ecr_of: Dict[AbstractObject, _ECR] = {}
        # Calls deferred until a function pointee appears.
        self._pending_calls: List[Call] = []

    # ------------------------------------------------------------------
    def ecr(self, obj: AbstractObject) -> _ECR:
        e = self.ecr_of.get(obj)
        if e is None:
            e = _ECR()
            e.members.add(obj)
            self.ecr_of[obj] = e
        return _find(e)

    def pts(self, e: _ECR) -> _ECR:
        """The class ``e`` points to, creating a fresh bottom class lazily."""
        e = _find(e)
        if e.pts is None:
            e.pts = _ECR()
        return _find(e.pts)

    def join(self, a: _ECR, b: _ECR) -> _ECR:
        a, b = _find(a), _find(b)
        if a is b:
            return a
        if a.rank < b.rank:
            a, b = b, a
        b.parent = a
        if a.rank == b.rank:
            a.rank += 1
        a.members |= b.members
        pa, pb = a.pts, b.pts
        a.pts = pa if pa is not None else pb
        if pa is not None and pb is not None:
            joined = self.join(pa, pb)
            a = _find(a)
            a.pts = joined
        return _find(a)

    # ------------------------------------------------------------------
    def process(self, st) -> None:
        if isinstance(st, AddrOf):
            self.join(self.pts(self.ecr(st.lhs)), self.ecr(st.target.obj))
        elif isinstance(st, Copy):
            self.join(self.pts(self.ecr(st.lhs)), self.pts(self.ecr(st.rhs.obj)))
        elif isinstance(st, FieldAddr):
            # Field-insensitive: &((*p).α) has the same class as p's value.
            self.join(self.pts(self.ecr(st.lhs)), self.pts(self.ecr(st.ptr)))
        elif isinstance(st, Load):
            target = self.pts(self.pts(self.ecr(st.ptr)))
            self.join(self.pts(self.ecr(st.lhs)), target)
        elif isinstance(st, Store):
            target = self.pts(self.pts(self.ecr(st.ptr)))
            self.join(target, self.pts(self.ecr(st.rhs)))
        elif isinstance(st, PtrArith):
            for op in st.operands:
                self.join(self.pts(self.ecr(st.lhs)), self.pts(self.ecr(op)))
        elif isinstance(st, Call):
            self._pending_calls.append(st)

    # ------------------------------------------------------------------
    def bind_calls(self) -> None:
        """Unify call arguments/results with every possible target.

        Unification makes this converge quickly: each call is re-examined
        until its set of reachable function targets stops growing.
        """
        bound: Set[tuple] = set()
        changed = True
        while changed:
            changed = False
            for call in self._pending_calls:
                for fobj in self._targets(call):
                    key = (id(call), fobj)
                    if key in bound:
                        continue
                    bound.add(key)
                    changed = True
                    info = self.program.function_for_object(fobj)
                    if info is None:
                        # Extern: unify result with pointer arguments
                        # (the same default the framework's summaries use).
                        if call.lhs is not None:
                            for a in call.args:
                                self.join(
                                    self.pts(self.ecr(call.lhs)),
                                    self.pts(self.ecr(a)),
                                )
                        continue
                    for arg, param in zip(call.args, info.params):
                        self.join(self.pts(self.ecr(param)), self.pts(self.ecr(arg)))
                    if call.lhs is not None and info.retval is not None:
                        self.join(
                            self.pts(self.ecr(call.lhs)),
                            self.pts(self.ecr(info.retval)),
                        )

    def _targets(self, call: Call) -> List[AbstractObject]:
        if not call.indirect:
            return [call.callee]
        p = _find(self.ecr(call.callee)).pts
        if p is None:
            return []
        return [o for o in _find(p).members if o.kind is ObjKind.FUNCTION]

    # ------------------------------------------------------------------
    def solve(self) -> SteensgaardResult:
        for st in self.program.all_stmts():
            self.process(st)
        self.bind_calls()
        return SteensgaardResult(self.program, self.ecr_of)


def steensgaard(program: Program) -> SteensgaardResult:
    """Run Steensgaard's analysis over a normalized program."""
    return _Solver(program).solve()
