"""A standalone field-insensitive Andersen-style inclusion analysis.

This is an independent implementation of the classic inclusion-based
points-to analysis with structures collapsed — semantically the same
configuration as running the framework with the "Collapse Always"
strategy, but built directly on a constraint graph with no strategy
machinery.  Its purpose is differential testing: on every program, the
object-level points-to relation computed here must *equal* the one the
framework derives under Collapse Always.  Any divergence indicates a bug
in the engine, the strategy, or this baseline.

Constraint forms over collapsed objects:

- ``x ⊇ {y}``  (address-of)
- ``x ⊇ y``    (copy / field address, since fields collapse to the object)
- ``x ⊇ *y``   (load)
- ``*x ⊇ y``   (store)

solved with a worklist that materializes complex constraints into copy
edges as points-to sets grow — the same classic algorithm the framework's
engine generalizes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set, Tuple

from ..ir.objects import AbstractObject, ObjKind
from ..ir.program import Program
from ..ir.stmts import AddrOf, Call, Copy, FieldAddr, Load, PtrArith, Store

__all__ = ["AndersenResult", "andersen"]


class AndersenResult:
    """Queryable result: collapsed object-level points-to sets."""

    def __init__(self, program: Program, pts: Dict[AbstractObject, Set[AbstractObject]]):
        self.program = program
        self._pts = pts

    def points_to(self, obj: AbstractObject) -> FrozenSet[AbstractObject]:
        return frozenset(self._pts.get(obj, ()))

    def points_to_names(self, obj: AbstractObject) -> Set[str]:
        return {o.name for o in self.points_to(obj)}

    def edge_count(self) -> int:
        return sum(len(s) for s in self._pts.values())


def andersen(program: Program) -> AndersenResult:
    """Run the field-insensitive inclusion analysis over ``program``."""
    pts: Dict[AbstractObject, Set[AbstractObject]] = {}
    copy_edges: Dict[AbstractObject, List[AbstractObject]] = {}
    edge_set: Set[Tuple[AbstractObject, AbstractObject]] = set()
    # load_subs[y]: x objects with constraint x ⊇ *y.
    load_subs: Dict[AbstractObject, List[AbstractObject]] = {}
    # store_subs[x]: y objects with constraint *x ⊇ y.
    store_subs: Dict[AbstractObject, List[AbstractObject]] = {}
    indirect_calls: Dict[AbstractObject, List[Call]] = {}
    bound: Set[Tuple[int, AbstractObject]] = set()
    work: deque = deque()

    def add(x: AbstractObject, o: AbstractObject) -> None:
        s = pts.setdefault(x, set())
        if o not in s:
            s.add(o)
            work.append((x, o))

    def add_edge(src: AbstractObject, dst: AbstractObject) -> None:
        if src is dst or (src, dst) in edge_set:
            return
        edge_set.add((src, dst))
        copy_edges.setdefault(src, []).append(dst)
        for o in list(pts.get(src, ())):
            add(dst, o)

    def bind(call: Call, fobj: AbstractObject) -> None:
        key = (id(call), fobj)
        if key in bound:
            return
        bound.add(key)
        info = program.function_for_object(fobj)
        if info is None:
            if call.lhs is not None:
                for a in call.args:
                    add_edge(a, call.lhs)
            return
        for arg, param in zip(call.args, info.params):
            add_edge(arg, param)
        if len(call.args) > len(info.params) and info.vararg is not None:
            for arg in call.args[len(info.params):]:
                add_edge(arg, info.vararg)
        if call.lhs is not None and info.retval is not None:
            add_edge(info.retval, call.lhs)

    # Install base constraints.
    for st in program.all_stmts():
        if isinstance(st, AddrOf):
            add(st.lhs, st.target.obj)
        elif isinstance(st, Copy):
            add_edge(st.rhs.obj, st.lhs)
        elif isinstance(st, FieldAddr):
            add_edge(st.ptr, st.lhs)  # fields collapse onto the object
        elif isinstance(st, Load):
            load_subs.setdefault(st.ptr, []).append(st.lhs)
            for o in list(pts.get(st.ptr, ())):
                add_edge(o, st.lhs)
        elif isinstance(st, Store):
            store_subs.setdefault(st.ptr, []).append(st.rhs)
            for o in list(pts.get(st.ptr, ())):
                add_edge(st.rhs, o)
        elif isinstance(st, PtrArith):
            for op in st.operands:
                add_edge(op, st.lhs)
        elif isinstance(st, Call):
            if st.indirect:
                indirect_calls.setdefault(st.callee, []).append(st)
                for o in list(pts.get(st.callee, ())):
                    if o.kind is ObjKind.FUNCTION:
                        bind(st, o)
            else:
                bind(st, st.callee)

    # Worklist: materialize complex constraints as pointees appear.
    while work:
        x, o = work.popleft()
        for dst in copy_edges.get(x, ()):
            add(dst, o)
        for lhs in load_subs.get(x, ()):
            add_edge(o, lhs)
        for rhs in store_subs.get(x, ()):
            add_edge(rhs, o)
        if o.kind is ObjKind.FUNCTION:
            for call in indirect_calls.get(x, ()):
                bind(call, o)

    return AndersenResult(program, pts)
