"""Baseline pointer analyses for comparison and differential testing.

- :func:`~repro.baselines.steensgaard.steensgaard` — unification-based,
  near-linear, field-insensitive ([Ste96b], the paper's §6 comparison);
- :func:`~repro.baselines.andersen.andersen` — a standalone
  field-insensitive inclusion analysis, used as a differential oracle for
  the framework's "Collapse Always" instance.
"""

from .andersen import AndersenResult, andersen
from .steensgaard import SteensgaardResult, steensgaard

__all__ = ["AndersenResult", "SteensgaardResult", "andersen", "steensgaard"]
