"""AnalysisSession: parse once, solve on demand, grow incrementally.

The paper's analysis is a monotone least fixpoint over the rules of
Figure 2 — flow-insensitive, so a program is just a *set* of normalized
statements, and the fixpoint is determined by that set alone.  Two
consequences, both exploited here:

1. **One parse serves every strategy.**  The front end's work (parsing,
   type building, normalization to the five assignment forms) is
   independent of the strategy; the four instances of
   ``normalize``/``lookup``/``resolve`` (§4.2) can all be solved over
   the same :class:`~repro.ir.program.Program`.  A session caches one
   solved :class:`~repro.core.engine.Engine` per (strategy, trace,
   worklist) configuration, so repeated queries — the CLI's
   ``--compare`` mode, a client calling several strategies — pay the
   front end once and each solve once.

2. **Adding statements only requires re-draining from the new deltas.**
   Because every rule is installed persistently and monotonically
   (:mod:`repro.core.rules`), seeding the new statements into an
   already-solved constraint graph and draining reaches exactly the
   least fixpoint of the grown program.  :meth:`add_statements` does
   this for *every* cached engine: points-to sets, deref sizes, and all
   order-independent counters come out identical to a from-scratch
   solve of the grown program (differentially tested across the whole
   benchmark suite, all four instances).

Results hand out live views: the :class:`~repro.core.result.Result` a
solve returned earlier simply reflects the grown sets after an
incremental re-solve.  Use ``solve(..., fresh=True)`` to force a
from-scratch engine (benchmark timing loops do this).

Quickstart::

    from repro.session import AnalysisSession
    from repro import CollapseAlways, CommonInitialSequence

    from repro.ir.refs import FieldRef
    from repro.ir.stmts import AddrOf

    session = AnalysisSession.from_c('''
        int x, y, *p;
        void main(void) { p = &x; }
    ''')
    fine = session.solve(CommonInitialSequence())
    session.solve(CollapseAlways())        # same parse, second engine
    objs = session.program.objects
    p, y = objs.lookup("p"), objs.lookup("y")
    session.add_statements([AddrOf(p, FieldRef(y, ()))], function="main")
    # `fine` now reflects the grown program — no re-parse, no re-solve
    # from scratch; only the new delta was drained.
    assert fine.points_to_names(p) == {"x", "y"}
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .core.backend import PropagationBackend, backend_name
from .core.engine import Engine, Result
from .core.strategy import Strategy
from .core.worklist import Worklist
from .diag import DiagnosticSink
from .ir.program import Program
from .ir.stmts import Stmt

__all__ = ["AnalysisSession"]

#: Engine-cache key: strategy class + layout identity (the granularity of
#: the strategy layer's shared memo tables), trace flag, worklist policy,
#: propagation-backend name.
_CacheKey = Tuple[type, int, bool, object, str]


class AnalysisSession:
    """One parsed program, any number of solved strategies, grown in place."""

    def __init__(
        self,
        program: Program,
        max_facts: int = 5_000_000,
        assume_valid_pointers: bool = True,
        diagnostics: Optional[DiagnosticSink] = None,
        backend: Union[str, PropagationBackend, None] = None,
    ) -> None:
        self.program = program
        self.max_facts = max_facts
        self.assume_valid_pointers = assume_valid_pointers
        #: Default propagation backend for solves (``None`` = environment
        #: / registry default; each ``solve`` may override per call).
        #: Validated *here* so a bad name (or a bad ``REPRO_BACKEND``
        #: value) fails at session construction with the registered list
        #: and availability hints, not deep inside a later solve.
        backend_name(backend)
        self.backend = backend
        #: Front-end diagnostics for this program (empty when the program
        #: was built strictly or by hand).
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticSink()
        self._engines: Dict[_CacheKey, Engine] = {}
        self._results: Dict[_CacheKey, Result] = {}
        #: Times :meth:`solve` returned a cached :class:`Result` instead
        #: of constructing an engine — the service's "solve-cache hits"
        #: counter (``GET /metrics``), but meaningful for any embedder.
        self.solve_cache_hits = 0

    # ------------------------------------------------------------------
    # Construction from source (parse exactly once).
    # ------------------------------------------------------------------
    @classmethod
    def from_c(
        cls, source: str, name: str = "<source>", strict: bool = True, **kwargs
    ) -> "AnalysisSession":
        """Parse and normalize C source text into a fresh session.

        ``strict=False`` enables lenient-mode degradation: unsupported
        constructs become sound conservative approximations and the
        session's :attr:`diagnostics` sink records each one.
        """
        from .frontend import program_from_c

        sink = DiagnosticSink()
        program = program_from_c(source, name, strict=strict, diagnostics=sink)
        return cls(program, diagnostics=sink, **kwargs)

    @classmethod
    def from_file(
        cls, path: Union[str, Path], strict: bool = True, **kwargs
    ) -> "AnalysisSession":
        """Parse and normalize a C file into a fresh session.

        A list or tuple of paths is accepted too and delegates to
        :meth:`from_files` — a multi-file project is a first-class
        input, not an error.
        """
        if isinstance(path, (list, tuple)):
            return cls.from_files(path, strict=strict, **kwargs)
        from .frontend import program_from_file

        sink = DiagnosticSink()
        program = program_from_file(path, strict=strict, diagnostics=sink)
        return cls(program, diagnostics=sink, **kwargs)

    @classmethod
    def from_files(
        cls,
        paths: Iterable[Union[str, Path]],
        strict: bool = True,
        name: Optional[str] = None,
        **kwargs,
    ) -> "AnalysisSession":
        """Parse each file as a translation unit and link them into one
        session (:mod:`repro.link`).  One path behaves exactly like
        :meth:`from_file`; two or more are linked — extern resolution,
        ``static``-scope renaming, duplicate-definition diagnostics —
        and ``session.program.link_info`` records the merge."""
        from .frontend import program_from_files

        sink = DiagnosticSink()
        program = program_from_files(
            list(paths), name, strict=strict, diagnostics=sink
        )
        return cls(program, diagnostics=sink, **kwargs)

    @classmethod
    def from_sources(
        cls,
        sources: Iterable[Tuple[str, str]],
        name: str = "<linked>",
        strict: bool = True,
        **kwargs,
    ) -> "AnalysisSession":
        """Link in-memory ``[(tu_name, source_text), ...]`` translation
        units into one session — :meth:`from_files` without a
        filesystem."""
        from .frontend import program_from_sources

        sink = DiagnosticSink()
        program = program_from_sources(
            list(sources), name, strict=strict, diagnostics=sink
        )
        return cls(program, diagnostics=sink, **kwargs)

    # ------------------------------------------------------------------
    # Solving.
    # ------------------------------------------------------------------
    def _key(
        self, strategy: Strategy, trace: bool, worklist, backend
    ) -> _CacheKey:
        wl = worklist if isinstance(worklist, str) else id(worklist)
        return (type(strategy), id(strategy.layout), trace, wl,
                backend_name(backend))

    def solve(
        self,
        strategy: Strategy,
        trace: bool = False,
        worklist: Union[str, Worklist] = "priority",
        fresh: bool = False,
        backend: Union[str, PropagationBackend, None] = None,
    ) -> Result:
        """Solve ``strategy`` over the session's program; cached.

        A repeated call with an equivalent configuration (same strategy
        class and layout, same ``trace``/``worklist``/``backend``)
        returns the cached :class:`Result` without re-solving.
        ``fresh=True`` forces a new engine (replacing the cache entry) —
        benchmark repeats use it so every timed run drains the full
        worklist.  ``backend=None`` falls back to the session default.
        """
        if backend is None:
            backend = self.backend
        key = self._key(strategy, trace, worklist, backend)
        if not fresh:
            cached = self._results.get(key)
            if cached is not None:
                self.solve_cache_hits += 1
                return cached
        engine = Engine(
            self.program,
            strategy,
            max_facts=self.max_facts,
            assume_valid_pointers=self.assume_valid_pointers,
            trace=trace,
            worklist=worklist,
            backend=backend,
            diagnostics=self.diagnostics,
        )
        result = engine.solve()
        self._engines[key] = engine
        self._results[key] = result
        return result

    def solve_modular(
        self,
        strategy: Strategy,
        workers: int = 0,
        worklist: Union[str, Worklist] = "priority",
        backend: Union[str, PropagationBackend, None] = None,
    ):
        """Bottom-up modular solve (:mod:`repro.core.modular`).

        Computes exactly the same fixpoint as :meth:`solve` — staged
        over the callgraph SCC DAG, optionally pre-solving independent
        SCCs in ``workers`` parallel processes — and additionally
        returns per-function summaries.  Returns a
        :class:`~repro.core.modular.ModularResult`; its ``.result`` is
        a normal :class:`Result`.  Not cached (each call re-solves):
        the modular mode exists for its summaries and its schedule, the
        cached path is :meth:`solve`.
        """
        from .core.modular import solve_modular

        if backend is None:
            backend = self.backend
        return solve_modular(
            self.program,
            strategy,
            workers=workers,
            max_facts=self.max_facts,
            assume_valid_pointers=self.assume_valid_pointers,
            worklist=worklist,
            backend=backend,
            diagnostics=self.diagnostics,
        )

    def cached_results(self) -> List[Result]:
        """The live results of every strategy solved so far."""
        return list(self._results.values())

    # ------------------------------------------------------------------
    # Introspection (the service's session document and byte accounting).
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """A JSON-serializable summary of the session's state.

        This is the body of the service's session document
        (``GET /v1/sessions/{id}``); it never includes points-to data —
        results are reached through queries, which solve on demand.
        """
        solved = [
            {
                "strategy": result.strategy.key,
                "backend": result.stats.backend,
                "facts": result.facts.edge_count(),
                "solve_seconds": result.stats.solve_seconds,
                "incremental_solves": result.stats.incremental_solves,
            }
            for result in self._results.values()
        ]
        doc = {
            "program": self.program.name,
            "functions": sorted(self.program.functions),
            "objects": len(self.program.objects.all_objects()),
            "statements": self.program.stmt_count(),
            "solved": solved,
            "solve_cache_hits": self.solve_cache_hits,
            "diagnostics": {
                "total": self.diagnostics.total,
                "by_kind": self.diagnostics.kinds(),
                "by_severity": self.diagnostics.severities(),
            },
        }
        if self.program.link_info is not None:
            # Multi-TU provenance (tus_linked, externs_resolved, ...).
            doc["link"] = self.program.link_info.as_dict()
        return doc

    def estimated_bytes(self) -> int:
        """A coarse, monotone estimate of this session's memory footprint.

        Used by the service's :class:`~repro.service.pool.SessionPool`
        byte budget.  It is deliberately a *model*, not a measurement
        (``gc``-walking live engines would cost more than it saves):
        fixed per-object/per-statement charges for the program plus
        per-fact/per-ref charges for every cached engine.  The constants
        approximate CPython object overheads; what matters for eviction
        is that the estimate grows monotonically with solves and deltas.
        """
        program = self.program
        total = 4096
        total += 256 * len(program.objects.all_objects())
        total += 128 * program.stmt_count()
        for result in self._results.values():
            total += 64 * result.facts.edge_count()
            num_refs = getattr(result.facts, "num_refs", None)
            if num_refs is not None:
                total += 48 * num_refs()
        return total

    # ------------------------------------------------------------------
    # Incremental growth.
    # ------------------------------------------------------------------
    def add_statements(
        self, stmts: Iterable[Stmt], function: Optional[str] = None
    ) -> List[Stmt]:
        """Grow the program and incrementally re-solve every cached engine.

        The statements are appended to the session's program (global
        scope, or the named function's body) and then seeded into each
        solved engine, which re-drains from the new deltas only —
        reaching the same fixpoint a from-scratch solve of the grown
        program would (see the module docstring).  Engines record the
        re-solve in their session counters (``incremental_solves``,
        ``delta_stmts``, ``reused_graph_refs``).
        """
        added = self.program.add_statements(stmts, function=function)
        for engine in self._engines.values():
            engine.add_statements(added)
        return added
