"""AnalysisSession: parse once, solve on demand, grow incrementally.

The paper's analysis is a monotone least fixpoint over the rules of
Figure 2 — flow-insensitive, so a program is just a *set* of normalized
statements, and the fixpoint is determined by that set alone.  Two
consequences, both exploited here:

1. **One parse serves every strategy.**  The front end's work (parsing,
   type building, normalization to the five assignment forms) is
   independent of the strategy; the four instances of
   ``normalize``/``lookup``/``resolve`` (§4.2) can all be solved over
   the same :class:`~repro.ir.program.Program`.  A session caches one
   solved :class:`~repro.core.engine.Engine` per (strategy, trace,
   worklist) configuration, so repeated queries — the CLI's
   ``--compare`` mode, a client calling several strategies — pay the
   front end once and each solve once.

2. **Adding statements only requires re-draining from the new deltas.**
   Because every rule is installed persistently and monotonically
   (:mod:`repro.core.rules`), seeding the new statements into an
   already-solved constraint graph and draining reaches exactly the
   least fixpoint of the grown program.  :meth:`add_statements` does
   this for *every* cached engine: points-to sets, deref sizes, and all
   order-independent counters come out identical to a from-scratch
   solve of the grown program (differentially tested across the whole
   benchmark suite, all four instances).

Results hand out live views: the :class:`~repro.core.result.Result` a
solve returned earlier simply reflects the grown sets after an
incremental re-solve.  Use ``solve(..., fresh=True)`` to force a
from-scratch engine (benchmark timing loops do this).

Quickstart::

    from repro.session import AnalysisSession
    from repro import CollapseAlways, CommonInitialSequence

    from repro.ir.refs import FieldRef
    from repro.ir.stmts import AddrOf

    session = AnalysisSession.from_c('''
        int x, y, *p;
        void main(void) { p = &x; }
    ''')
    fine = session.solve(CommonInitialSequence())
    session.solve(CollapseAlways())        # same parse, second engine
    objs = session.program.objects
    p, y = objs.lookup("p"), objs.lookup("y")
    session.add_statements([AddrOf(p, FieldRef(y, ()))], function="main")
    # `fine` now reflects the grown program — no re-parse, no re-solve
    # from scratch; only the new delta was drained.
    assert fine.points_to_names(p) == {"x", "y"}
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .core.backend import PropagationBackend, backend_name
from .core.engine import Engine, Result
from .core.strategy import Strategy
from .core.worklist import Worklist
from .diag import DiagnosticSink
from .ir.program import Program
from .ir.stmts import Stmt

__all__ = ["AnalysisSession"]

#: Engine-cache key: strategy class + layout identity (the granularity of
#: the strategy layer's shared memo tables), trace flag, worklist policy,
#: propagation-backend name.
_CacheKey = Tuple[type, int, bool, object, str]


class AnalysisSession:
    """One parsed program, any number of solved strategies, grown in place."""

    def __init__(
        self,
        program: Program,
        max_facts: int = 5_000_000,
        assume_valid_pointers: bool = True,
        diagnostics: Optional[DiagnosticSink] = None,
        backend: Union[str, PropagationBackend, None] = None,
        strict: bool = True,
        store: Union["ResultStore", str, Path, None] = None,
    ) -> None:
        self.program = program
        self.max_facts = max_facts
        self.assume_valid_pointers = assume_valid_pointers
        #: Default propagation backend for solves, **pinned at
        #: construction**: a backend instance is kept as-is, while a name
        #: — or ``None``, meaning the ``REPRO_BACKEND`` environment /
        #: registry default — is resolved to its concrete registry key
        #: here, once.  Eager resolution both fails fast on a bad name
        #: (with the registered list and availability hints, not deep
        #: inside a later solve) and guarantees one session never mixes
        #: backends across solves if the environment variable changes
        #: mid-process.
        if backend is None or isinstance(backend, str):
            self.backend: Union[str, PropagationBackend] = backend_name(backend)
        else:
            self.backend = backend
        #: Front-end mode this session's program was produced under;
        #: part of the result-store key (lenient programs carry havoc
        #: approximations a strict parse of the same text would not).
        self.strict = strict
        #: Front-end diagnostics for this program (empty when the program
        #: was built strictly or by hand).
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticSink()
        #: Optional content-addressed result store (:mod:`repro.store`):
        #: a :class:`ResultStore`, or a directory path to open one at.
        if store is None:
            self.store = None
        else:
            from .store import ResultStore

            if isinstance(store, ResultStore):
                self.store = store
            else:
                self.store = ResultStore(store, diagnostics=self.diagnostics)
        self._engines: Dict[_CacheKey, Engine] = {}
        self._results: Dict[_CacheKey, Result] = {}
        #: Cache keys of results that came from the store or a widened
        #: demand solve: complete fixpoints, but with no live engine to
        #: re-drain — :meth:`add_statements` must drop them.
        self._warm_keys: set = set()
        #: Demand-solve memo: (cache key, sorted query reprs) → DemandResult.
        self._demand_cache: Dict[tuple, object] = {}
        #: Times :meth:`solve` returned a cached :class:`Result` instead
        #: of constructing an engine — the service's "solve-cache hits"
        #: counter (``GET /metrics``), but meaningful for any embedder.
        self.solve_cache_hits = 0
        #: Session-level store traffic (mirrored per-result in
        #: ``result.stats.store_hits`` / ``store_misses``).
        self.store_hits = 0
        self.store_misses = 0

    # ------------------------------------------------------------------
    # Construction from source (parse exactly once).
    # ------------------------------------------------------------------
    @classmethod
    def from_c(
        cls, source: str, name: str = "<source>", strict: bool = True, **kwargs
    ) -> "AnalysisSession":
        """Parse and normalize C source text into a fresh session.

        ``strict=False`` enables lenient-mode degradation: unsupported
        constructs become sound conservative approximations and the
        session's :attr:`diagnostics` sink records each one.
        """
        from .frontend import program_from_c

        sink = DiagnosticSink()
        program = program_from_c(source, name, strict=strict, diagnostics=sink)
        return cls(program, diagnostics=sink, strict=strict, **kwargs)

    @classmethod
    def from_file(
        cls, path: Union[str, Path], strict: bool = True, **kwargs
    ) -> "AnalysisSession":
        """Parse and normalize a C file into a fresh session.

        A list or tuple of paths is accepted too and delegates to
        :meth:`from_files` — a multi-file project is a first-class
        input, not an error.
        """
        if isinstance(path, (list, tuple)):
            return cls.from_files(path, strict=strict, **kwargs)
        from .frontend import program_from_file

        sink = DiagnosticSink()
        program = program_from_file(path, strict=strict, diagnostics=sink)
        return cls(program, diagnostics=sink, strict=strict, **kwargs)

    @classmethod
    def from_files(
        cls,
        paths: Iterable[Union[str, Path]],
        strict: bool = True,
        name: Optional[str] = None,
        **kwargs,
    ) -> "AnalysisSession":
        """Parse each file as a translation unit and link them into one
        session (:mod:`repro.link`).  One path behaves exactly like
        :meth:`from_file`; two or more are linked — extern resolution,
        ``static``-scope renaming, duplicate-definition diagnostics —
        and ``session.program.link_info`` records the merge."""
        from .frontend import program_from_files

        sink = DiagnosticSink()
        program = program_from_files(
            list(paths), name, strict=strict, diagnostics=sink
        )
        return cls(program, diagnostics=sink, strict=strict, **kwargs)

    @classmethod
    def from_sources(
        cls,
        sources: Iterable[Tuple[str, str]],
        name: str = "<linked>",
        strict: bool = True,
        **kwargs,
    ) -> "AnalysisSession":
        """Link in-memory ``[(tu_name, source_text), ...]`` translation
        units into one session — :meth:`from_files` without a
        filesystem."""
        from .frontend import program_from_sources

        sink = DiagnosticSink()
        program = program_from_sources(
            list(sources), name, strict=strict, diagnostics=sink
        )
        return cls(program, diagnostics=sink, strict=strict, **kwargs)

    # ------------------------------------------------------------------
    # Solving.
    # ------------------------------------------------------------------
    def _key(
        self, strategy: Strategy, trace: bool, worklist, backend
    ) -> _CacheKey:
        wl = worklist if isinstance(worklist, str) else id(worklist)
        return (type(strategy), id(strategy.layout), trace, wl,
                backend_name(backend))

    def solve(
        self,
        strategy: Strategy,
        trace: bool = False,
        worklist: Union[str, Worklist] = "priority",
        fresh: bool = False,
        backend: Union[str, PropagationBackend, None] = None,
    ) -> Result:
        """Solve ``strategy`` over the session's program; cached.

        A repeated call with an equivalent configuration (same strategy
        class and layout, same ``trace``/``worklist``/``backend``)
        returns the cached :class:`Result` without re-solving.
        ``fresh=True`` forces a new engine (replacing the cache entry) —
        benchmark repeats use it so every timed run drains the full
        worklist.  ``backend=None`` falls back to the session default.

        With a :attr:`store` attached, a cache miss first consults the
        store (:meth:`warm_start`) — a hit replays the persisted
        fixpoint without constructing an engine — and a fresh solve's
        result is persisted back.  Traced solves bypass the store both
        ways: a warm result cannot carry provenance, and tracing is a
        request for *this* run's derivations.
        """
        if backend is None:
            backend = self.backend
        key = self._key(strategy, trace, worklist, backend)
        if not fresh:
            cached = self._results.get(key)
            if cached is not None:
                self.solve_cache_hits += 1
                return cached
            if not trace:
                warm = self.warm_start(strategy, worklist=worklist,
                                       backend=backend)
                if warm is not None:
                    return warm
        engine = Engine(
            self.program,
            strategy,
            max_facts=self.max_facts,
            assume_valid_pointers=self.assume_valid_pointers,
            trace=trace,
            worklist=worklist,
            backend=backend,
            diagnostics=self.diagnostics,
        )
        result = engine.solve()
        self._engines[key] = engine
        self._results[key] = result
        if self.store is not None and not trace:
            self.store.put(
                self.program, result, strict=self.strict,
                assume_valid_pointers=self.assume_valid_pointers,
                diagnostics=self.diagnostics,
            )
        return result

    def solve_modular(
        self,
        strategy: Strategy,
        workers: int = 0,
        worklist: Union[str, Worklist] = "priority",
        backend: Union[str, PropagationBackend, None] = None,
    ):
        """Bottom-up modular solve (:mod:`repro.core.modular`).

        Computes exactly the same fixpoint as :meth:`solve` — staged
        over the callgraph SCC DAG, optionally pre-solving independent
        SCCs in ``workers`` parallel processes — and additionally
        returns per-function summaries.  Returns a
        :class:`~repro.core.modular.ModularResult`; its ``.result`` is
        a normal :class:`Result`.  Not cached (each call re-solves):
        the modular mode exists for its summaries and its schedule, the
        cached path is :meth:`solve`.
        """
        from .core.modular import solve_modular

        if backend is None:
            backend = self.backend
        mres = solve_modular(
            self.program,
            strategy,
            workers=workers,
            max_facts=self.max_facts,
            assume_valid_pointers=self.assume_valid_pointers,
            worklist=worklist,
            backend=backend,
            diagnostics=self.diagnostics,
        )
        if self.store is not None:
            # Persist the fixpoint together with the per-function
            # summaries, so a later warm start recovers both.
            self.store.put(
                self.program, mres.result, strict=self.strict,
                assume_valid_pointers=self.assume_valid_pointers,
                summaries=list(mres.summaries.values()),
                diagnostics=self.diagnostics,
            )
        return mres

    # ------------------------------------------------------------------
    # Demand-driven querying and the content-addressed store.
    # ------------------------------------------------------------------
    def warm_start(
        self,
        strategy: Strategy,
        worklist: Union[str, Worklist] = "priority",
        backend: Union[str, PropagationBackend, None] = None,
    ) -> Optional[Result]:
        """Try to satisfy ``strategy`` from the attached store.

        On a hit the persisted fixpoint is rebuilt into a live
        :class:`Result` — byte-identical points-to sets, no engine
        constructed — cached like a solved one, and returned.  Returns
        ``None`` on a miss or when no store is attached.  Warm results
        are dropped by :meth:`add_statements` (they have no engine to
        re-drain); the grown program then re-solves and re-persists
        under its new content hash.
        """
        if self.store is None:
            return None
        if backend is None:
            backend = self.backend
        key = self._key(strategy, False, worklist, backend)
        cached = self._results.get(key)
        if cached is not None:
            self.solve_cache_hits += 1
            return cached
        stored = self.store.load(
            self.program, strategy, strict=self.strict,
            assume_valid_pointers=self.assume_valid_pointers,
            diagnostics=self.diagnostics,
        )
        if stored is None:
            self.store_misses += 1
            return None
        self.store_hits += 1
        self._results[key] = stored.result
        self._warm_keys.add(key)
        return stored.result

    def solve_demand(
        self,
        strategy: Strategy,
        queries,
        worklist: Union[str, Worklist] = "priority",
        backend: Union[str, PropagationBackend, None] = None,
    ):
        """Demand-driven solve (:mod:`repro.core.demand`) of ``queries``.

        ``queries`` is an iterable of :class:`AbstractObject`s and/or
        refs (see :func:`repro.core.demand.query_refs`).  Returns a
        :class:`~repro.core.demand.DemandResult` whose answers for the
        queried refs equal the exhaustive fixpoint's.  Memoized per
        (strategy, backend, query set).  A *widened* demand solve
        drained every statement, so its result is the exhaustive
        fixpoint: it is promoted into the result cache and persisted to
        the store like a full solve.
        """
        from .core.demand import query_refs, solve_demand

        if backend is None:
            backend = self.backend
        refs = query_refs(self.program, queries)
        key = self._key(strategy, False, worklist, backend)
        dkey = (key, tuple(sorted(repr(r) for r in refs)))
        cached = self._demand_cache.get(dkey)
        if cached is not None:
            self.solve_cache_hits += 1
            return cached
        dres = solve_demand(
            self.program, strategy, refs,
            max_facts=self.max_facts,
            assume_valid_pointers=self.assume_valid_pointers,
            worklist=worklist, backend=backend,
            diagnostics=self.diagnostics,
        )
        self._demand_cache[dkey] = dres
        if dres.widened:
            if key not in self._results:
                self._results[key] = dres.result
                self._warm_keys.add(key)
            if self.store is not None:
                self.store.put(
                    self.program, dres.result, strict=self.strict,
                    assume_valid_pointers=self.assume_valid_pointers,
                    diagnostics=self.diagnostics,
                )
        return dres

    def _resolve_target(self, text: str):
        """Parse ``name`` or ``name.field.path`` into a FieldRef.

        A bare name that is not a global falls back to the unique
        function-local spelling (``f::x`` matched by suffix) — the CLI's
        ``-q`` convention.
        """
        from .ir.refs import FieldRef

        parts = text.split(".")
        name = parts[0]
        obj = self.program.objects.lookup(name)
        if obj is None:
            for candidate in self.program.objects.all_objects():
                if candidate.name.endswith(f"::{name}"):
                    obj = candidate
                    break
        if obj is None:
            raise KeyError(f"no object named {name!r} in {self.program.name}")
        return FieldRef(obj, tuple(parts[1:]))

    def query(
        self,
        targets,
        strategy: Optional[Strategy] = None,
        demand: bool = True,
        worklist: Union[str, Worklist] = "priority",
        backend: Union[str, PropagationBackend, None] = None,
    ) -> Dict[str, List[str]]:
        """Answer points-to queries the cheapest sound way available.

        ``targets``: an iterable of object names / ``"name.field"``
        paths / :class:`AbstractObject`s / refs.  Returns a mapping of
        each target's label to the sorted reprs of its points-to set.
        ``strategy=None`` uses the session's default
        (common-initial-sequence, constructed once and reused so its
        result cache is stable).

        Resolution order: an already-complete cached result (free) →
        the attached store (warm start, one load) → a demand-driven
        solve restricted to the targets (``demand=True``, the default)
        → the exhaustive fixpoint.  Every path returns answers equal to
        the exhaustive fixpoint's (the demand differential and the
        store round-trip are both gated in the test suite).
        """
        from .ir.objects import AbstractObject

        if strategy is None:
            strategy = self._default_strategy()
        labeled = {}
        for t in targets:
            if isinstance(t, str):
                labeled[t] = self._resolve_target(t)
            elif isinstance(t, AbstractObject):
                labeled[t.name] = t
            else:
                labeled[repr(t)] = t
        if backend is None:
            backend = self.backend
        source = self._results.get(self._key(strategy, False, worklist, backend))
        if source is None:
            source = self.warm_start(strategy, worklist=worklist, backend=backend)
        if source is None:
            if demand:
                source = self.solve_demand(
                    strategy, list(labeled.values()),
                    worklist=worklist, backend=backend,
                )
            else:
                source = self.solve(strategy, worklist=worklist, backend=backend)
        return {
            label: sorted(repr(r) for r in source.points_to(ref))
            for label, ref in labeled.items()
        }

    def _default_strategy(self) -> Strategy:
        strategy = getattr(self, "_default_strategy_obj", None)
        if strategy is None:
            from .core import CommonInitialSequence

            strategy = self._default_strategy_obj = CommonInitialSequence()
        return strategy

    def cached_results(self) -> List[Result]:
        """The live results of every strategy solved so far."""
        return list(self._results.values())

    # ------------------------------------------------------------------
    # Introspection (the service's session document and byte accounting).
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """A JSON-serializable summary of the session's state.

        This is the body of the service's session document
        (``GET /v1/sessions/{id}``); it never includes points-to data —
        results are reached through queries, which solve on demand.
        """
        solved = [
            {
                "strategy": result.strategy.key,
                "backend": result.stats.backend,
                "facts": result.facts.edge_count(),
                "solve_seconds": result.stats.solve_seconds,
                "incremental_solves": result.stats.incremental_solves,
            }
            for result in self._results.values()
        ]
        doc = {
            "program": self.program.name,
            "functions": sorted(self.program.functions),
            "objects": len(self.program.objects.all_objects()),
            "statements": self.program.stmt_count(),
            "solved": solved,
            "solve_cache_hits": self.solve_cache_hits,
            "store": (
                {
                    "root": str(self.store.root),
                    "hits": self.store_hits,
                    "misses": self.store_misses,
                }
                if self.store is not None
                else None
            ),
            "diagnostics": {
                "total": self.diagnostics.total,
                "by_kind": self.diagnostics.kinds(),
                "by_severity": self.diagnostics.severities(),
            },
        }
        if self.program.link_info is not None:
            # Multi-TU provenance (tus_linked, externs_resolved, ...).
            doc["link"] = self.program.link_info.as_dict()
        return doc

    def estimated_bytes(self) -> int:
        """A coarse, monotone estimate of this session's memory footprint.

        Used by the service's :class:`~repro.service.pool.SessionPool`
        byte budget.  It is deliberately a *model*, not a measurement
        (``gc``-walking live engines would cost more than it saves):
        fixed per-object/per-statement charges for the program plus
        per-fact/per-ref charges for every cached engine.  The constants
        approximate CPython object overheads; what matters for eviction
        is that the estimate grows monotonically with solves and deltas.
        """
        program = self.program
        total = 4096
        total += 256 * len(program.objects.all_objects())
        total += 128 * program.stmt_count()
        for result in self._results.values():
            total += 64 * result.facts.edge_count()
            num_refs = getattr(result.facts, "num_refs", None)
            if num_refs is not None:
                total += 48 * num_refs()
        return total

    # ------------------------------------------------------------------
    # Incremental growth.
    # ------------------------------------------------------------------
    def add_statements(
        self, stmts: Iterable[Stmt], function: Optional[str] = None
    ) -> List[Stmt]:
        """Grow the program and incrementally re-solve every cached engine.

        The statements are appended to the session's program (global
        scope, or the named function's body) and then seeded into each
        solved engine, which re-drains from the new deltas only —
        reaching the same fixpoint a from-scratch solve of the grown
        program would (see the module docstring).  Engines record the
        re-solve in their session counters (``incremental_solves``,
        ``delta_stmts``, ``reused_graph_refs``).
        """
        added = self.program.add_statements(stmts, function=function)
        # Warm-started / demand-widened results have no engine to
        # re-drain and describe the *old* program: drop them (and every
        # memoized demand answer) so the next query re-derives against
        # the grown statement set.  The store needs no invalidation —
        # its key is the program's content hash, which just changed.
        for key in self._warm_keys:
            self._results.pop(key, None)
        self._warm_keys.clear()
        self._demand_cache.clear()
        for engine in self._engines.values():
            engine.add_statements(added)
        return added
