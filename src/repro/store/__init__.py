"""Content-addressed on-disk result/summary store.

:class:`ResultStore` persists solved points-to fixpoints (and optional
modular :class:`~repro.core.modular.FunctionSummary` records) under a
key that is a SHA-256 hash of everything that determines the fixpoint —
and *nothing* that does not:

- the normalized program: the object table (names, kinds, and
  structurally expanded types — struct/union member lists are rendered
  explicitly because ``repr(StructType)`` is deliberately field-blind
  for cycle safety), the interprocedural wiring of every defined
  function, and every normalized statement repr;
- the field-sensitivity strategy (registry key);
- the ABI (``strategy.layout.abi.name`` — field offsets differ);
- strict vs. lenient front-end mode (lenient runs may add havoc
  objects and statements — already visible in the program text, but
  the flag also selects degraded-construct semantics);
- Assumption 1 (``assume_valid_pointers`` — pessimistic mode derives
  extra ``<unknown>`` facts).

The propagation **backend** and **worklist policy** are deliberately
excluded from the key: every backend reaches the identical least
fixpoint (the backends CI matrix gates this byte-for-byte), so a result
solved under one backend is the correct answer under all of them.

Robustness contract: loading **never raises**.  Any unreadable,
truncated, version-skewed, schema-broken, or program-mismatched entry
degrades to a miss plus a WARNING diagnostic (kind ``store-corrupt``);
the caller re-solves and overwrites the entry.  ``put`` likewise warns
(kind ``store-write-failed``) instead of raising on I/O errors — the
store is a cache, never a correctness dependency.

Facts are serialized as a table of distinct ref specs — the same
``("F", object-name, field-path)`` / ``("O", object-name, byte-offset)``
shapes the modular mode ships to worker processes — plus index-pair
edges over that table, so an entry written by one process rebuilds on a
*fresh parse* of the same source in another process: object names are
the join key, identity is re-established through
``program.objects.lookup``, and each distinct ref is resolved and
normalized exactly once regardless of how many edges mention it.

Results containing engine-invented objects that live outside the
program's object table (the pessimistic ``<unknown>`` sink) cannot be
rebuilt by name and are declined at ``put`` time — never stored, so
never wrongly replayed.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.facts import FactBase
from ..core.modular import FunctionSummary
from ..core.result import Result
from ..core.stats import EngineStats
from ..core.strategy import Strategy
from ..ctype.types import ArrayType, FunctionType, PointerType, StructType
from ..diag import Diagnostic, DiagnosticSink, Severity
from ..ir.program import Program
from ..ir.refs import FieldRef, OffsetRef, Ref

__all__ = ["ResultStore", "StoredResult", "store_key"]

#: Bump whenever the payload schema or the key text changes shape; a
#: version-skewed entry is a miss, never a parse attempt.
STORE_VERSION = 1


# ----------------------------------------------------------------------
# Canonical type rendering.
#
# ``repr`` on struct/union types prints only ``struct tag`` (field-blind
# by design: reprs must not recurse through self-referential members).
# The store key must distinguish same-tag structs with different member
# lists, so structs are expanded structurally here, with an id-based
# guard that renders back-references as the bare tag.
# ----------------------------------------------------------------------
def _type_text(t, seen: Tuple[int, ...] = ()) -> str:
    if isinstance(t, StructType):  # covers UnionType
        if id(t) in seen:
            return repr(t)
        if t.fields is None:
            return f"{t!r}<incomplete>"
        seen = seen + (id(t),)
        members = ";".join(
            f"{f.name}:{_type_text(f.type, seen)}"
            + (f":{f.bit_width}" if f.bit_width is not None else "")
            for f in t.fields
        )
        return f"{t!r}{{{members}}}"
    if isinstance(t, PointerType):
        return f"{_type_text(t.pointee, seen)}*"
    if isinstance(t, ArrayType):
        return f"{_type_text(t.elem, seen)}[{t.length}]"
    if isinstance(t, FunctionType):
        ps = ", ".join(_type_text(p, seen) for p in t.params)
        if t.varargs:
            ps = f"{ps}, ..." if ps else "..."
        return f"{_type_text(t.ret, seen)}({ps})"
    return repr(t)


def _program_text(
    program: Program,
    strategy: Strategy,
    *,
    strict: bool,
    assume_valid_pointers: bool,
) -> str:
    """The canonical text whose SHA-256 is the store key."""
    lines = [
        f"repro-store {STORE_VERSION}",
        f"strategy {strategy.key}",
        f"abi {strategy.layout.abi.name}",
        f"strict {int(strict)}",
        f"assume_valid_pointers {int(assume_valid_pointers)}",
    ]
    # Hundreds of objects share a handful of type instances; render each
    # once (the expansion is deterministic, so the memo cannot drift).
    type_text: Dict[int, str] = {}
    for obj in sorted(program.objects.all_objects(), key=lambda o: o.name):
        tt = type_text.get(id(obj.type))
        if tt is None:
            tt = type_text[id(obj.type)] = _type_text(obj.type)
        lines.append(f"object {obj.name} {obj.kind.value} {tt}")
    for name in sorted(program.functions):
        info = program.functions[name]
        params = ",".join(p.name for p in info.params)
        retval = info.retval.name if info.retval is not None else "-"
        vararg = info.vararg.name if info.vararg is not None else "-"
        lines.append(f"function {name} params={params} ret={retval} va={vararg}")
    for st in program.global_stmts:
        lines.append(f"global {st!r}")
    for name in sorted(program.functions):
        for st in program.functions[name].stmts:
            lines.append(f"stmt {name} {st!r}")
    return "\n".join(lines) + "\n"


def store_key(
    program: Program,
    strategy: Strategy,
    *,
    strict: bool = True,
    assume_valid_pointers: bool = True,
) -> str:
    """Content hash of (program, strategy, ABI, strict, Assumption 1)."""
    text = _program_text(
        program, strategy, strict=strict,
        assume_valid_pointers=assume_valid_pointers,
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Fact (de)serialization — the modular-mode spec format, JSON-shaped.
# ----------------------------------------------------------------------
def _spec_of(ref: Ref) -> Optional[List]:
    if isinstance(ref, FieldRef):
        return ["F", ref.obj.name, list(ref.path)]
    if isinstance(ref, OffsetRef):
        return ["O", ref.obj.name, ref.offset]
    return None


def _ref_of_spec(spec, program: Program) -> Optional[Ref]:
    kind, name, extra = spec
    obj = program.objects.lookup(name)
    if obj is None:
        return None
    if kind == "F":
        return FieldRef(obj, tuple(extra))
    if kind == "O":
        return OffsetRef(obj, int(extra))
    return None


class StoredResult:
    """A warm-started :class:`~repro.core.result.Result` plus the
    modular summaries that were persisted alongside it (if any)."""

    def __init__(self, key: str, result: Result,
                 summaries: Optional[List[FunctionSummary]]) -> None:
        self.key = key
        self.result = result
        self.summaries = summaries


class ResultStore:
    """On-disk content-addressed store of solved fixpoints.

    One JSON file per key under ``root``; writes are atomic
    (temp file + ``os.replace``), loads are corruption-safe.
    ``hits``/``misses`` count this store object's lookups; the session
    mirrors them into :class:`~repro.core.stats.EngineStats`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        diagnostics: Optional[DiagnosticSink] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.diagnostics = diagnostics
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _warn(self, kind: str, message: str,
              diagnostics: Optional[DiagnosticSink]) -> None:
        # NOT `diagnostics or ...`: an empty DiagnosticSink is falsy.
        sink = diagnostics if diagnostics is not None else self.diagnostics
        if sink is not None:
            sink.emit(Diagnostic(
                kind=kind, message=message,
                severity=Severity.WARNING, phase="analyze",
            ))

    # ------------------------------------------------------------------
    def put(
        self,
        program: Program,
        result: Result,
        *,
        strict: bool = True,
        assume_valid_pointers: bool = True,
        summaries: Optional[List[FunctionSummary]] = None,
        diagnostics: Optional[DiagnosticSink] = None,
    ) -> Optional[str]:
        """Persist ``result``; returns the key, or ``None`` if declined.

        Declines (without warning — it is expected, not an error) when
        the fact set references objects outside the program's object
        table (the pessimistic ``<unknown>`` sink): those cannot be
        rebuilt by name in another process.  Warns (kind
        ``store-write-failed``) and returns ``None`` on I/O failure.
        """
        # Facts are stored as a table of distinct ref specs plus index
        # pairs: each distinct ref is resolved and normalized exactly
        # once on load, so rebuild cost tracks distinct refs, not edges.
        refs: List[List] = []
        index: Dict[Ref, int] = {}

        def _index_of(ref: Ref) -> Optional[int]:
            i = index.get(ref)
            if i is None:
                spec = _spec_of(ref)
                if spec is None:
                    return None
                if program.objects.lookup(spec[1]) is not ref.obj:
                    return None
                i = index[ref] = len(refs)
                refs.append(spec)
            return i

        grouped: Dict[int, List[int]] = {}
        for src, dst in result.facts.all_facts():
            s, d = _index_of(src), _index_of(dst)
            if s is None or d is None:
                return None
            grouped.setdefault(s, []).append(d)
        adjacency = [[s, sorted(ds)] for s, ds in sorted(grouped.items())]
        key = store_key(
            program, result.strategy, strict=strict,
            assume_valid_pointers=assume_valid_pointers,
        )
        payload = {
            "version": STORE_VERSION,
            "key": key,
            "program": program.name,
            "strategy": result.strategy.key,
            "abi": result.strategy.layout.abi.name,
            "strict": bool(strict),
            "assume_valid_pointers": bool(assume_valid_pointers),
            "refs": refs,
            "adjacency": adjacency,
            "stats": result.stats.as_dict(),
            "summaries": [s.as_dict() for s in summaries] if summaries else None,
        }
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except OSError as err:
            self._warn("store-write-failed",
                       f"could not persist result {key[:12]}…: {err}",
                       diagnostics)
            return None
        return key

    # ------------------------------------------------------------------
    def load(
        self,
        program: Program,
        strategy: Strategy,
        *,
        strict: bool = True,
        assume_valid_pointers: bool = True,
        diagnostics: Optional[DiagnosticSink] = None,
    ) -> Optional[StoredResult]:
        """Look up the fixpoint for (program, strategy, …); ``None`` on miss.

        Never raises: corrupted or truncated entries degrade to a miss
        with a WARNING diagnostic (kind ``store-corrupt``).
        """
        key = store_key(
            program, strategy, strict=strict,
            assume_valid_pointers=assume_valid_pointers,
        )
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
            if payload.get("version") != STORE_VERSION:
                raise ValueError(f"version skew: {payload.get('version')!r}")
            for field, want in (
                ("key", key), ("strategy", strategy.key),
                ("abi", strategy.layout.abi.name), ("strict", bool(strict)),
                ("assume_valid_pointers", bool(assume_valid_pointers)),
            ):
                if payload.get(field) != want:
                    raise ValueError(
                        f"{field} mismatch: {payload.get(field)!r} != {want!r}")
            facts = FactBase()
            # Rebuild the distinct-ref table once, then replay per-source
            # adjacency with whole-bitset unions: rebuild cost tracks
            # distinct refs plus one byte op per edge, not one interning
            # round-trip per edge — the difference between a warm start
            # beating the solve and losing to it on dense programs.
            refs: List[Ref] = []
            for spec in payload["refs"]:
                ref = _ref_of_spec(spec, program)
                if ref is None:
                    raise ValueError(f"unresolvable ref spec {spec!r}")
                refs.append(strategy.normalize(ref))
            n = len(refs)
            ids = [facts.intern(r) for r in refs]
            # On a fresh fact base of already-canonical refs the interned
            # IDs are dense table indices, so a destination list becomes
            # a bitset directly; a tampered entry whose refs collide
            # after normalization falls back to per-edge adds.
            dense = ids == list(range(n))
            for entry in payload["adjacency"]:
                src_i, dsts = entry
                if not 0 <= int(src_i) < n:
                    raise ValueError(f"source index out of range: {src_i!r}")
                if dense:
                    bits = bytearray((n + 7) // 8)
                    for d in dsts:
                        if not 0 <= d < n:
                            raise ValueError(
                                f"target index out of range: {d!r}")
                        bits[d >> 3] |= 1 << (d & 7)
                    facts.add_bits(ids[src_i], int.from_bytes(bits, "little"))
                else:
                    for d in dsts:
                        if not 0 <= int(d) < n:
                            raise ValueError(
                                f"target index out of range: {d!r}")
                        facts.add_id(ids[src_i], ids[d])
            stats = EngineStats.from_dict(payload["stats"])
            stats.store_hits = 1
            stats.store_misses = 0
            raw = payload.get("summaries")
            summaries = None
            if raw is not None:
                summaries = [
                    FunctionSummary(
                        name=s["name"], scc=int(s["scc"]), level=int(s["level"]),
                        params={k: list(v) for k, v in s["params"].items()},
                        returns=list(s["returns"]),
                    )
                    for s in raw
                ]
        except Exception as err:  # corruption-safe by contract
            self.misses += 1
            self._warn("store-corrupt",
                       f"store entry {path.name} unreadable "
                       f"({type(err).__name__}: {err}); treating as a miss",
                       diagnostics)
            return None
        self.hits += 1
        result = Result(program=program, strategy=strategy,
                        facts=facts, stats=stats)
        return StoredResult(key, result, summaries)
