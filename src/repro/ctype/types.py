"""Representation of C types.

The pointer-analysis framework is driven almost entirely by types: the
``normalize``, ``lookup``, and ``resolve`` functions of the paper all take
declared types as arguments.  This module defines a small, self-contained
representation of the C type system sufficient for whole-program analysis:

- scalar types (``void``, integer kinds, floating kinds, enums),
- derived types (pointers, arrays, functions),
- aggregate types (structs, unions) with named fields, including bit-fields.

Struct and union types are *nominal with identity semantics*: a
:class:`StructType` is created (possibly incomplete) and its fields are
attached later, which is how C's forward declarations and self-referential
types (linked lists) work.  Equality and hashing are by object identity;
*compatibility* (the ANSI C notion that drives the "Common Initial Sequence"
strategy) is a structural check implemented in :mod:`repro.ctype.compat`.

Type qualifiers (``const``, ``volatile``) are tracked because ANSI C makes
them relevant to type compatibility (a ``const int`` is not compatible with
an ``int``), which in turn affects common-initial-sequence computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

__all__ = [
    "CType",
    "VoidType",
    "IntType",
    "FloatType",
    "EnumType",
    "PointerType",
    "ArrayType",
    "FunctionType",
    "Field",
    "StructType",
    "UnionType",
    "void",
    "char",
    "schar",
    "uchar",
    "short",
    "ushort",
    "int_t",
    "uint",
    "long_t",
    "ulong",
    "longlong",
    "ulonglong",
    "bool_t",
    "float_t",
    "double_t",
    "longdouble",
    "ptr",
    "array_of",
    "func",
    "strip_quals",
    "is_scalar",
    "is_aggregate",
    "is_pointerlike",
]


class CType:
    """Base class for all C types.

    Subclasses are lightweight dataclasses.  All types carry a tuple of
    qualifiers in :attr:`quals` (sorted, e.g. ``("const",)``); most code can
    ignore qualifiers, but compatibility checking must not.
    """

    quals: Tuple[str, ...] = ()

    def with_quals(self, quals: Sequence[str]) -> "CType":
        """Return a copy of this type carrying exactly ``quals``."""
        if tuple(sorted(quals)) == self.quals:
            return self
        clone = self._clone()
        clone.quals = tuple(sorted(quals))
        return clone

    def _clone(self) -> "CType":
        import copy

        return copy.copy(self)

    # Convenience predicates --------------------------------------------
    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType) and not isinstance(self, UnionType)

    @property
    def is_union(self) -> bool:
        return isinstance(self, UnionType)

    @property
    def is_record(self) -> bool:
        """True for structs and unions."""
        return isinstance(self, StructType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)


@dataclass(eq=False)
class VoidType(CType):
    """The C ``void`` type (only meaningful behind a pointer)."""

    quals: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        return "void"


#: Integer kinds in increasing conversion rank.
INT_KINDS = ("_Bool", "char", "short", "int", "long", "long long")


@dataclass(eq=False)
class IntType(CType):
    """An integer type: a *kind* (one of :data:`INT_KINDS`) plus signedness.

    Plain ``char`` is modelled as ``IntType("char", signed=True)``; for the
    purposes of this analysis the signedness of plain char never matters.
    """

    kind: str
    signed: bool = True
    quals: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in INT_KINDS:
            raise ValueError(f"unknown integer kind: {self.kind!r}")

    def __repr__(self) -> str:
        prefix = "" if self.signed else "unsigned "
        return f"{prefix}{self.kind}"


FLOAT_KINDS = ("float", "double", "long double")


@dataclass(eq=False)
class FloatType(CType):
    """A floating-point type (``float``, ``double``, ``long double``)."""

    kind: str
    quals: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FLOAT_KINDS:
            raise ValueError(f"unknown float kind: {self.kind!r}")

    def __repr__(self) -> str:
        return self.kind


@dataclass(eq=False)
class EnumType(CType):
    """An enumerated type.

    ANSI C makes each enum compatible with an implementation-defined integer
    type; following the paper's footnote ("an int is compatible with an
    enum"), enums are treated as compatible with ``int``.
    """

    tag: Optional[str] = None
    quals: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        return f"enum {self.tag or '<anon>'}"


@dataclass(eq=False)
class PointerType(CType):
    """Pointer to :attr:`pointee`."""

    pointee: CType
    quals: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"


@dataclass(eq=False)
class ArrayType(CType):
    """Array of :attr:`elem`.

    ``length`` is ``None`` for incomplete arrays (``int a[]``).  Following
    the paper (§2), the analysis treats every array as a single
    representative element, but the *layout* engine still needs real lengths
    to compute offsets of fields that follow an in-struct array.
    """

    elem: CType
    length: Optional[int] = None
    quals: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.elem!r}[{n}]"


@dataclass(eq=False)
class FunctionType(CType):
    """Function type: return type plus parameter types."""

    ret: CType
    params: Tuple[CType, ...] = ()
    varargs: bool = False
    quals: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        ps = ", ".join(repr(p) for p in self.params)
        if self.varargs:
            ps = f"{ps}, ..." if ps else "..."
        return f"{self.ret!r}({ps})"


@dataclass(frozen=True)
class Field:
    """A named member of a struct or union.

    ``bit_width`` is ``None`` for ordinary members.  Bit-fields participate
    in common-initial-sequence matching only when their widths are equal
    (ISO 9899:1990 §6.3.2.3), so the width is recorded here.
    """

    name: str
    type: CType
    bit_width: Optional[int] = None


@dataclass(eq=False)
class StructType(CType):
    """A struct type.  May be created incomplete and completed later.

    Identity semantics: two independently created ``StructType`` objects are
    different types even with the same tag; *compatibility* is a separate,
    structural notion (see :mod:`repro.ctype.compat`).
    """

    tag: Optional[str] = None
    fields: Optional[Tuple[Field, ...]] = None
    quals: Tuple[str, ...] = ()
    #: True while only ``struct S;`` has been seen.
    _keyword = "struct"

    @property
    def is_complete(self) -> bool:
        return self.fields is not None

    def define(self, fields: Sequence[Field]) -> "StructType":
        """Attach the member list, completing the type.  Returns ``self``."""
        if self.fields is not None:
            raise ValueError(f"{self!r} is already complete")
        names = [f.name for f in fields]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate field names in {self!r}")
        self.fields = tuple(fields)
        return self

    def field_named(self, name: str) -> Field:
        """Return the member called ``name`` (raises ``KeyError`` if absent)."""
        for f in self.members():
            if f.name == name:
                return f
        raise KeyError(f"{self!r} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.members())

    def members(self) -> Tuple[Field, ...]:
        if self.fields is None:
            raise ValueError(f"incomplete type {self!r} has no members")
        return self.fields

    def field_index(self, name: str) -> int:
        for i, f in enumerate(self.members()):
            if f.name == name:
                return i
        raise KeyError(f"{self!r} has no field {name!r}")

    def fields_after(self, name: str) -> Tuple[Field, ...]:
        """The members that come after ``name`` (paper's ``followingFields``)."""
        return self.members()[self.field_index(name) + 1 :]

    def __repr__(self) -> str:
        return f"{self._keyword} {self.tag or '<anon>'}"


@dataclass(eq=False)
class UnionType(StructType):
    """A union type.  Shares all struct machinery; layout differs."""

    _keyword = "union"


# ---------------------------------------------------------------------------
# Singleton-ish convenience constructors.
#
# Scalar types have no identity requirements, so shared instances are safe
# (nothing ever mutates them; ``with_quals`` copies).
# ---------------------------------------------------------------------------

void = VoidType()
char = IntType("char", signed=True)
schar = IntType("char", signed=True)
uchar = IntType("char", signed=False)
short = IntType("short", signed=True)
ushort = IntType("short", signed=False)
int_t = IntType("int", signed=True)
uint = IntType("int", signed=False)
long_t = IntType("long", signed=True)
ulong = IntType("long", signed=False)
longlong = IntType("long long", signed=True)
ulonglong = IntType("long long", signed=False)
bool_t = IntType("_Bool", signed=False)
float_t = FloatType("float")
double_t = FloatType("double")
longdouble = FloatType("long double")


def ptr(pointee: CType) -> PointerType:
    """Shorthand for ``PointerType(pointee)``."""
    return PointerType(pointee)


def array_of(elem: CType, length: Optional[int] = None) -> ArrayType:
    """Shorthand for ``ArrayType(elem, length)``."""
    return ArrayType(elem, length)


def func(ret: CType, *params: CType, varargs: bool = False) -> FunctionType:
    """Shorthand for ``FunctionType(ret, params, varargs)``."""
    return FunctionType(ret, tuple(params), varargs)


def strip_quals(t: CType) -> CType:
    """Return ``t`` without top-level qualifiers."""
    return t.with_quals(()) if t.quals else t


def is_scalar(t: CType) -> bool:
    """True for arithmetic types, enums, and pointers."""
    return isinstance(t, (IntType, FloatType, EnumType, PointerType))


def is_aggregate(t: CType) -> bool:
    """True for structs, unions, and arrays."""
    return isinstance(t, (StructType, ArrayType))


def is_pointerlike(t: CType) -> bool:
    """True for types whose *values* the analysis must track as addresses.

    Under the paper's casting model every object can hold (part of) an
    address, so the analysis tracks all locations; this predicate is only a
    hint used by clients and statistics (e.g. "dereferenced pointer").
    """
    return isinstance(t, (PointerType, FunctionType, ArrayType))


def named_fields(t: CType) -> Iterator[Field]:
    """Iterate members of a record type, or nothing for non-records."""
    if isinstance(t, StructType) and t.is_complete:
        yield from t.members()
