"""C type system: type representation, concrete layout, ANSI compatibility.

Public surface:

- :mod:`repro.ctype.types` — type objects (``IntType``, ``StructType``, ...)
  and convenience constructors (``int_t``, ``ptr``, ``array_of``, ...);
- :mod:`repro.ctype.layout` — :class:`~repro.ctype.layout.Layout` engine and
  the stock :data:`~repro.ctype.layout.ILP32` / :data:`~repro.ctype.layout.LP64`
  ABIs;
- :mod:`repro.ctype.compat` — ``compatible`` and ``common_initial_sequence``.
"""

from .compat import common_initial_sequence, compatible
from .layout import ABI, ILP32, LP64, Layout, LayoutError
from .types import (
    ArrayType,
    CType,
    EnumType,
    Field,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    UnionType,
    VoidType,
    array_of,
    bool_t,
    char,
    double_t,
    float_t,
    func,
    int_t,
    is_aggregate,
    is_pointerlike,
    is_scalar,
    long_t,
    longdouble,
    longlong,
    ptr,
    schar,
    short,
    strip_quals,
    uchar,
    uint,
    ulong,
    ulonglong,
    ushort,
    void,
)

__all__ = [
    "ABI",
    "ILP32",
    "LP64",
    "Layout",
    "LayoutError",
    "ArrayType",
    "CType",
    "EnumType",
    "Field",
    "FloatType",
    "FunctionType",
    "IntType",
    "PointerType",
    "StructType",
    "UnionType",
    "VoidType",
    "array_of",
    "bool_t",
    "char",
    "common_initial_sequence",
    "compatible",
    "double_t",
    "float_t",
    "func",
    "int_t",
    "is_aggregate",
    "is_pointerlike",
    "is_scalar",
    "long_t",
    "longdouble",
    "longlong",
    "ptr",
    "schar",
    "short",
    "strip_quals",
    "uchar",
    "uint",
    "ulong",
    "ulonglong",
    "ushort",
    "void",
]
