"""Concrete memory layout of C types under a configurable ABI.

The "Offsets" instance of the framework (paper §4.2.2) assumes a *specific
layout strategy*: every field has a known byte offset and every object a
known size.  This module implements that layout engine.

The layout is parameterized by an :class:`ABI` giving the size and alignment
of each scalar kind.  Two stock ABIs are provided (:data:`ILP32` and
:data:`LP64`); analyzing the same program under both demonstrates the
paper's portability argument — the "Offsets" algorithm's results are only
safe for the ABI they were computed under, while the three portable
instances are ABI-independent.

Array handling follows the paper's convention that every array is a single
representative element (§2 and footnotes 4–6): :func:`canonical_offset`
folds any byte offset that lands inside an array back into the
representative (first) element, and :func:`offsetof` indexes element 0 when
a field path traverses an array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .types import (
    ArrayType,
    CType,
    EnumType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    UnionType,
    VoidType,
)

__all__ = [
    "ABI",
    "ILP32",
    "LP64",
    "LayoutError",
    "Layout",
]


class LayoutError(Exception):
    """Raised when a size/offset is requested for an incomplete type."""


@dataclass(frozen=True)
class ABI:
    """Sizes and alignments of scalar types, in bytes.

    ``int_sizes``/``int_aligns`` map integer kinds to their size/alignment;
    ``float_sizes``/``float_aligns`` likewise for floating kinds.
    """

    name: str
    pointer_size: int
    pointer_align: int
    int_sizes: Dict[str, int]
    int_aligns: Dict[str, int]
    float_sizes: Dict[str, int]
    float_aligns: Dict[str, int]
    enum_size: int = 4
    enum_align: int = 4
    #: Size used for functions when one is (erroneously) asked for; a
    #: function designator decays to a pointer, so this is rarely reached.
    function_size: int = 1


ILP32 = ABI(
    name="ilp32",
    pointer_size=4,
    pointer_align=4,
    int_sizes={"_Bool": 1, "char": 1, "short": 2, "int": 4, "long": 4, "long long": 8},
    int_aligns={"_Bool": 1, "char": 1, "short": 2, "int": 4, "long": 4, "long long": 4},
    float_sizes={"float": 4, "double": 8, "long double": 12},
    float_aligns={"float": 4, "double": 4, "long double": 4},
)

LP64 = ABI(
    name="lp64",
    pointer_size=8,
    pointer_align=8,
    int_sizes={"_Bool": 1, "char": 1, "short": 2, "int": 4, "long": 8, "long long": 8},
    int_aligns={"_Bool": 1, "char": 1, "short": 2, "int": 4, "long": 8, "long long": 8},
    float_sizes={"float": 4, "double": 8, "long double": 16},
    float_aligns={"float": 4, "double": 8, "long double": 16},
)


def _align_up(n: int, a: int) -> int:
    return (n + a - 1) // a * a


@dataclass
class _RecordLayout:
    """Cached layout of one struct/union: offsets parallel to members.

    ``type`` pins the keyed type object: the cache is keyed on
    ``id(type)``, and a Layout instance may be shared process-wide, so
    the entry must keep the type alive against id reuse.
    """

    size: int
    align: int
    offsets: Tuple[int, ...]
    type: object = None


class Layout:
    """Layout engine: ``sizeof``/``alignof``/``offsetof`` under one ABI.

    Instances cache per-record layouts, so a single :class:`Layout` should
    be shared across an analysis run.
    """

    def __init__(self, abi: ABI = ILP32):
        self.abi = abi
        self._records: Dict[int, _RecordLayout] = {}
        #: Records currently being laid out, to turn a cyclic by-value
        #: type (impossible in well-formed C, but constructible by hand)
        #: into a LayoutError instead of unbounded recursion.
        self._laying_out: set = set()

    # ------------------------------------------------------------------
    # sizeof / alignof
    # ------------------------------------------------------------------
    def sizeof(self, t: CType) -> int:
        """Size of ``t`` in bytes (C ``sizeof``)."""
        abi = self.abi
        if isinstance(t, VoidType):
            # GCC extension: sizeof(void) == 1; convenient for void* windows.
            return 1
        if isinstance(t, IntType):
            return abi.int_sizes[t.kind]
        if isinstance(t, FloatType):
            return abi.float_sizes[t.kind]
        if isinstance(t, EnumType):
            return abi.enum_size
        if isinstance(t, PointerType):
            return abi.pointer_size
        if isinstance(t, ArrayType):
            if t.length is None:
                # Incomplete array: treat as one element (the representative).
                return self.sizeof(t.elem)
            return self.sizeof(t.elem) * max(t.length, 1)
        if isinstance(t, FunctionType):
            return abi.function_size
        if isinstance(t, StructType):
            return self._record_layout(t).size
        raise LayoutError(f"cannot take sizeof {t!r}")

    def alignof(self, t: CType) -> int:
        """Alignment requirement of ``t`` in bytes."""
        abi = self.abi
        if isinstance(t, VoidType):
            return 1
        if isinstance(t, IntType):
            return abi.int_aligns[t.kind]
        if isinstance(t, FloatType):
            return abi.float_aligns[t.kind]
        if isinstance(t, EnumType):
            return abi.enum_align
        if isinstance(t, PointerType):
            return abi.pointer_align
        if isinstance(t, ArrayType):
            return self.alignof(t.elem)
        if isinstance(t, FunctionType):
            return 1
        if isinstance(t, StructType):
            return self._record_layout(t).align
        raise LayoutError(f"cannot take alignof {t!r}")

    def _record_layout(self, t: StructType) -> _RecordLayout:
        cached = self._records.get(id(t))
        if cached is not None:
            return cached
        if not t.is_complete:
            raise LayoutError(f"layout of incomplete type {t!r}")
        if id(t) in self._laying_out:
            raise LayoutError(f"recursive by-value type {t!r} has no layout")
        self._laying_out.add(id(t))
        try:
            return self._record_layout_uncached(t)
        finally:
            self._laying_out.discard(id(t))

    def _record_layout_uncached(self, t: StructType) -> _RecordLayout:
        offsets: List[int] = []
        if isinstance(t, UnionType):
            size = 0
            align = 1
            for f in t.members():
                offsets.append(0)
                size = max(size, self._member_size(f))
                align = max(align, self.alignof(f.type))
            size = _align_up(max(size, 1), align)
        else:
            off = 0
            align = 1
            bit_cursor = 0  # bit position within current storage unit
            for f in t.members():
                if f.bit_width is not None:
                    # Minimal but deterministic bit-field layout: pack into
                    # successive bytes of the declared type's storage unit.
                    unit = self.sizeof(f.type)
                    unit_align = self.alignof(f.type)
                    if bit_cursor == 0 or bit_cursor + f.bit_width > unit * 8:
                        off = _align_up(off, unit_align)
                        offsets.append(off)
                        off += unit
                        bit_cursor = f.bit_width
                    else:
                        offsets.append(offsets[-1] if offsets else 0)
                        bit_cursor += f.bit_width
                    align = max(align, unit_align)
                    continue
                bit_cursor = 0
                a = self.alignof(f.type)
                off = _align_up(off, a)
                offsets.append(off)
                off += self._member_size(f)
                align = max(align, a)
            size = _align_up(max(off, 1), align)
        lay = _RecordLayout(size=size, align=align, offsets=tuple(offsets), type=t)
        self._records[id(t)] = lay
        return lay

    def _member_size(self, f) -> int:
        if f.bit_width is not None:
            return self.sizeof(f.type)
        return self.sizeof(f.type)

    # ------------------------------------------------------------------
    # offsetof and friends
    # ------------------------------------------------------------------
    def field_offset(self, t: StructType, name: str) -> int:
        """Byte offset of member ``name`` in record ``t``."""
        lay = self._record_layout(t)
        return lay.offsets[t.field_index(name)]

    def offsetof(self, t: CType, path: Sequence[str]) -> int:
        """Byte offset of the (possibly nested) field ``path`` in ``t``.

        ``path`` is a sequence of field names, as in the paper's ``s.α``.
        Arrays along the way are entered at their representative element
        (offset 0 into the array).
        """
        off = 0
        cur = t
        for name in path:
            while isinstance(cur, ArrayType):
                cur = cur.elem  # representative element at offset 0
            if not isinstance(cur, StructType):
                raise LayoutError(f"field access .{name} into non-record {cur!r}")
            off += self.field_offset(cur, name)
            cur = cur.field_named(name).type
        return off

    def type_at_path(self, t: CType, path: Sequence[str]) -> CType:
        """The type of the field reached by ``path`` from ``t``."""
        cur = t
        for name in path:
            while isinstance(cur, ArrayType):
                cur = cur.elem
            if not isinstance(cur, StructType):
                raise LayoutError(f"field access .{name} into non-record {cur!r}")
            cur = cur.field_named(name).type
        return cur

    # ------------------------------------------------------------------
    # Offset canonicalization (arrays → representative element)
    # ------------------------------------------------------------------
    def canonical_offset(self, t: CType, off: int) -> int:
        """Fold ``off`` into the array-representative canonical form.

        If byte offset ``off`` within an object of type ``t`` falls inside
        an array (at any nesting depth), it is mapped to the corresponding
        offset within the array's *first* element, recursively.  Offsets
        beyond ``sizeof(t)`` are clamped modulo nothing — they are returned
        canonicalized as far as possible (a safe over-approximation used
        for out-of-bounds casts, paper Complication 1).
        """
        if off < 0:
            return 0
        return self._canon(t, off)

    def _canon(self, t: CType, off: int) -> int:
        if isinstance(t, ArrayType):
            esz = self.sizeof(t.elem)
            if esz <= 0:
                return 0
            inner = off % esz
            return self._canon(t.elem, inner)
        if isinstance(t, UnionType) and t.is_complete:
            # All members live at offset 0; canonicalize within the largest
            # member that covers the offset, if any.  To stay deterministic
            # we canonicalize within the first covering member.
            for f in t.members():
                if f.bit_width is None and off < self.sizeof(f.type):
                    return self._canon(f.type, off)
            return off
        if isinstance(t, StructType) and t.is_complete:
            lay = self._record_layout(t)
            members = t.members()
            # Find the member whose storage covers `off`.
            for f, fo in zip(reversed(members), reversed(lay.offsets)):
                if fo <= off:
                    if f.bit_width is not None:
                        return off
                    inner = off - fo
                    if inner < self.sizeof(f.type):
                        return fo + self._canon(f.type, inner)
                    break
            return off
        return off

    # ------------------------------------------------------------------
    # Enumerating sub-field offsets
    # ------------------------------------------------------------------
    def subfield_offsets(self, t: CType) -> List[int]:
        """All canonical start offsets of sub-objects of ``t``.

        This includes offset 0, the start of every struct member at every
        nesting depth (arrays contribute their representative element), and
        is used for the Assumption-1 treatment of pointer arithmetic: a
        pointer produced by arithmetic on a pointer into an object may point
        to any of these offsets (paper §4.2.1).
        """
        acc: List[int] = []
        seen = set()

        def walk(cur: CType, base: int) -> None:
            if base not in seen:
                seen.add(base)
                acc.append(base)
            if isinstance(cur, ArrayType):
                walk(cur.elem, base)
            elif isinstance(cur, StructType) and cur.is_complete:
                lay = self._record_layout(cur)
                for f, fo in zip(cur.members(), lay.offsets):
                    if f.bit_width is None:
                        walk(f.type, base + fo)
                    elif base + fo not in seen:
                        seen.add(base + fo)
                        acc.append(base + fo)

        walk(t, 0)
        return sorted(acc)

    def offset_to_path(self, t: CType, off: int) -> Optional[Tuple[str, ...]]:
        """Best-effort mapping of a canonical offset back to a field path.

        Returns ``None`` when ``off`` does not name the start of any
        declared field (e.g. padding, or mid-scalar offsets produced by
        byte-granularity resolve).  Used for human-readable reporting only —
        the analysis itself never needs this inverse.
        """
        path: List[str] = []
        cur = t
        cur_off = off
        while True:
            while isinstance(cur, ArrayType):
                cur = cur.elem
            if cur_off == 0 and not isinstance(cur, StructType):
                return tuple(path)
            if not (isinstance(cur, StructType) and cur.is_complete):
                return tuple(path) if cur_off == 0 else None
            lay = self._record_layout(cur)
            if cur_off == 0:
                return tuple(path)
            hit = None
            for f, fo in zip(cur.members(), lay.offsets):
                if f.bit_width is not None:
                    continue
                if fo <= cur_off < fo + self.sizeof(f.type):
                    hit = (f, fo)
            if hit is None:
                return None
            f, fo = hit
            path.append(f.name)
            cur = f.type
            cur_off -= fo
