"""ANSI C type compatibility and common initial sequences.

The "Common Initial Sequence" instance of the framework (paper §4.3.3)
relies on the two layout guarantees ANSI C gives (ISO 9899:1990 §6.3.2.3
and §6.5.2.1):

1. the first member of a struct is at offset 0, and
2. if two structs share a *common initial sequence* — one or more leading
   members with pairwise **compatible types** (and, for bit-fields, equal
   widths) — then the offsets of the corresponding members in that sequence
   are identical under every conforming implementation.

This module implements the *compatible types* relation (the paper's
footnote 1: an ``int`` is compatible with an ``enum``; qualifiers must
match; pointers are compatible only if their pointees are) and the
``commonInitialSeq`` function used by the CIS ``lookup``.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from .types import (
    ArrayType,
    CType,
    EnumType,
    Field,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    UnionType,
    VoidType,
)

__all__ = ["compatible", "common_initial_sequence"]


def compatible(a: CType, b: CType) -> bool:
    """Return True if ``a`` and ``b`` are compatible types (ANSI C §6.1.2.6).

    The relation implemented here follows the paper's usage:

    - identical scalar types are compatible;
    - an ``int`` and an ``enum`` are compatible (paper footnote 1) — we
      treat any enum as compatible with the plain signed ``int``;
    - qualifiers must match exactly (``volatile int`` is not compatible
      with ``int``);
    - pointers are compatible iff their pointees are;
    - arrays are compatible iff their element types are and their lengths
      are equal (or at least one is incomplete);
    - functions are compatible iff return and parameter types are;
    - structs/unions are compatible if they are the same type object, or
      structurally member-for-member compatible with the same tag (the
      cross-translation-unit rule).
    """
    return _compat(a, b, frozenset())


def _compat(a: CType, b: CType, seen: FrozenSet[Tuple[int, int]]) -> bool:
    if a is b:
        return True
    if a.quals != b.quals:
        return False
    if isinstance(a, VoidType):
        return isinstance(b, VoidType)
    if isinstance(a, EnumType) and isinstance(b, EnumType):
        return True
    # int <-> enum compatibility (implementation picks int as the
    # underlying type; see paper footnote 1).
    if isinstance(a, EnumType):
        return isinstance(b, IntType) and b.kind == "int" and b.signed
    if isinstance(b, EnumType):
        return isinstance(a, IntType) and a.kind == "int" and a.signed
    if isinstance(a, IntType):
        return isinstance(b, IntType) and a.kind == b.kind and a.signed == b.signed
    if isinstance(a, FloatType):
        return isinstance(b, FloatType) and a.kind == b.kind
    if isinstance(a, PointerType):
        return isinstance(b, PointerType) and _compat(a.pointee, b.pointee, seen)
    if isinstance(a, ArrayType):
        if not isinstance(b, ArrayType):
            return False
        if not _compat(a.elem, b.elem, seen):
            return False
        return a.length is None or b.length is None or a.length == b.length
    if isinstance(a, FunctionType):
        if not isinstance(b, FunctionType):
            return False
        if not _compat(a.ret, b.ret, seen):
            return False
        if a.varargs != b.varargs or len(a.params) != len(b.params):
            return False
        return all(_compat(pa, pb, seen) for pa, pb in zip(a.params, b.params))
    if isinstance(a, StructType):
        if not isinstance(b, StructType):
            return False
        if isinstance(a, UnionType) != isinstance(b, UnionType):
            return False
        # Distinct type objects: structural comparison with matching tags
        # (the cross-translation-unit rule).  Guard against recursion via
        # the identity-pair set.
        key = (id(a), id(b))
        if key in seen:
            return True
        if a.tag != b.tag:
            return False
        if not (a.is_complete and b.is_complete):
            # An incomplete type is compatible with a same-tag record.
            return True
        if len(a.members()) != len(b.members()):
            return False
        inner = seen | {key}
        for fa, fb in zip(a.members(), b.members()):
            if fa.name != fb.name or fa.bit_width != fb.bit_width:
                return False
            if not _compat(fa.type, fb.type, inner):
                return False
        return True
    return False


def common_initial_sequence(a: StructType, b: StructType) -> List[Tuple[Field, Field]]:
    """The (possibly empty) common initial sequence of two record types.

    Returns the list of pairs ``(field_of_a, field_of_b)`` forming the
    longest prefix of members of ``a`` and ``b`` whose types are pairwise
    compatible (and, for bit-fields, have equal widths).  If either type is
    incomplete the sequence is empty.

    For unions ANSI C gives a similar guarantee when the union contains
    structures sharing a common initial sequence; callers handle unions by
    collapsing (see DESIGN.md), so this function only deals with structs —
    passing a union simply yields the pairwise member walk, which is a safe
    under-approximation of "shares layout".
    """
    if not (a.is_complete and b.is_complete):
        return []
    out: List[Tuple[Field, Field]] = []
    for fa, fb in zip(a.members(), b.members()):
        if fa.bit_width != fb.bit_width:
            break
        if not compatible(fa.type, fb.type):
            break
        out.append((fa, fb))
    return out
