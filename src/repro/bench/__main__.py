"""``python -m repro.bench`` — regenerate every table and figure."""

from .harness import run_all

if __name__ == "__main__":
    run_all()
