"""``python -m repro.bench`` — regenerate every table and figure.

Options::

    python -m repro.bench                       # all four figures, 3 repeats
    python -m repro.bench --repeats 1           # fast smoke run
    python -m repro.bench --jobs 8              # fan programs over 8 workers
    python -m repro.bench --programs bc,yacr2   # subset of the suite
    python -m repro.bench --figures 3,4,6       # deterministic figures only
    python -m repro.bench --write-baseline      # refresh BENCH_engine.json
    python -m repro.bench --check-baseline      # fail on precision drift
    python -m repro.bench --metrics-jsonl m.jsonl  # per-measurement records
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..core.backend import backend_name
from ..suite.registry import SUITE, by_name
from .harness import (
    append_history,
    compare_to_baseline,
    metrics_records,
    run_all,
    write_baseline,
)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures (§5).",
    )
    p.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="timed solves per (program, strategy) for Figure 5 "
        "(minimum is reported; default: 3)",
    )
    p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the suite fan-out "
        "(default: CPU count; 1 = serial)",
    )
    p.add_argument(
        "--programs", default=None, metavar="NAME[,NAME...]",
        help="run only these suite programs (comma-separated)",
    )
    p.add_argument(
        "--figures", default="3,4,5,6", metavar="N[,N...]",
        help="which figures to produce (default: 3,4,5,6)",
    )
    p.add_argument(
        "--write-baseline", nargs="?", const="BENCH_engine.json",
        default=None, metavar="PATH",
        help="also dump the per-program/per-strategy measurements as JSON "
        "(default path: BENCH_engine.json)",
    )
    p.add_argument(
        "--check-baseline", nargs="?", const="BENCH_engine.json",
        default=None, metavar="PATH",
        help="diff the run against a baseline JSON: edges, fact counts and "
        "deref averages must match exactly (timings are reported, not "
        "gated); exits 1 on precision drift (default path: BENCH_engine.json)",
    )
    p.add_argument(
        "--metrics-jsonl", default=None, metavar="PATH",
        help="append one JSON metrics record per (program, strategy) "
        "measurement to PATH (see docs/observability.md)",
    )
    p.add_argument(
        "--split-tu", nargs="?", const=3, default=None, type=int,
        metavar="PARTS",
        help="instead of the figures: split each suite program into PARTS "
        "translation units (default 3), time linked vs. concatenated "
        "analysis, and verify they are byte-identical; exits 1 on any "
        "divergence",
    )
    p.add_argument(
        "--backend", dest="backends", default=None, metavar="NAME[,NAME...]",
        help="propagation backend(s) to time (comma-separated; first is "
        "the primary; every extra backend is asserted precision-identical "
        "and its timings land in solve_seconds_by_backend; default: "
        "$REPRO_BACKEND or 'bigint')",
    )
    return p


def run_split_tu(programs, parts: int) -> int:
    """``--split-tu``: linked vs. concatenated timing + equality gate.

    Splits each suite program into ``parts`` TUs
    (:func:`repro.link.split_translation_units`), analyzes the linked
    program and the concatenated source under the CIS strategy, times
    both pipelines (front end + solve), and asserts facts and gated
    stats are byte-identical.  Returns the number of divergences.
    """
    from ..core import STRATEGY_BY_KEY, Engine
    from ..frontend import program_from_c
    from ..link import SplitError, concat_sources, link_sources, \
        split_translation_units
    from ..suite.registry import SUITE, load_source
    from .harness import _UNGATED_STATS

    def measure(program):
        t0 = time.perf_counter()
        result = Engine(
            program, STRATEGY_BY_KEY["common_initial_sequence"]()
        ).solve()
        solve_s = time.perf_counter() - t0
        facts = sorted(map(repr, result.facts.all_facts()))
        gated = {k: v for k, v in result.stats.as_dict().items()
                 if k not in _UNGATED_STATS}
        return facts, gated, solve_s

    fails = 0
    print(f"{'program':12s} {'TUs':>4s} {'linked':>9s} {'concat':>9s}  check")
    for bp in (programs or SUITE):
        src = load_source(bp)
        try:
            tus = split_translation_units(src, name=bp.filename, parts=parts)
        except SplitError as err:
            print(f"{bp.name:12s}    - {'':>9s} {'':>9s}  skipped ({err})")
            continue
        t0 = time.perf_counter()
        linked = link_sources(tus, name=bp.filename)
        link_fe = time.perf_counter() - t0
        t0 = time.perf_counter()
        concat = program_from_c(concat_sources(tus), bp.filename)
        concat_fe = time.perf_counter() - t0
        lf, lg, ls = measure(linked)
        cf, cg, cs = measure(concat)
        ok = lf == cf and lg == cg
        if not ok:
            fails += 1
        print(f"{bp.name:12s} {len(tus):4d} "
              f"{(link_fe + ls) * 1000:7.1f}ms {(concat_fe + cs) * 1000:7.1f}ms"
              f"  {'identical' if ok else 'DIVERGED'}")
    if fails:
        print(f"# {fails} program(s) diverged", file=sys.stderr)
    return fails


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    programs = None
    if args.programs:
        programs = []
        for name in (n.strip() for n in args.programs.split(",") if n.strip()):
            try:
                programs.append(by_name(name))
            except KeyError:
                known = ", ".join(bp.name for bp in SUITE)
                print(f"error: unknown program {name!r}; known: {known}",
                      file=sys.stderr)
                return 2
    if args.split_tu is not None:
        if args.split_tu < 1:
            print(f"error: --split-tu needs a positive part count, got "
                  f"{args.split_tu}", file=sys.stderr)
            return 2
        return 1 if run_split_tu(programs, args.split_tu) else 0
    figures = [f.strip() for f in args.figures.split(",") if f.strip()]
    bad = [f for f in figures if f not in ("3", "4", "5", "6")]
    if bad or not figures:
        print(f"error: --figures must name figures 3-6, got {args.figures!r}",
              file=sys.stderr)
        return 2
    backends = None
    if args.backends:
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
        if not backends:
            print(f"error: --backend got no names in {args.backends!r}",
                  file=sys.stderr)
            return 2
        for b in backends:
            try:
                backend_name(b)
            except KeyError as err:
                # The registry's message: registered names plus
                # availability hints (numpy/accel fallback notes).
                print(f"error: {err.args[0]}", file=sys.stderr)
                return 2

    t0 = time.perf_counter()
    data = run_all(repeats=args.repeats, jobs=args.jobs, programs=programs,
                   figures=figures, backends=backends)
    wall = time.perf_counter() - t0
    if args.write_baseline:
        write_baseline(args.write_baseline, data, repeats=args.repeats,
                       wall_seconds=wall)
        print(f"# baseline written to {args.write_baseline} "
              f"({len(data)} measurements, {wall:.1f}s wall)", file=sys.stderr)
        hist = append_history(args.write_baseline, data, repeats=args.repeats,
                              wall_seconds=wall)
        print(f"# timing record appended to {hist}", file=sys.stderr)
    if args.metrics_jsonl:
        from ..obs.metrics import write_jsonl

        n = write_jsonl(args.metrics_jsonl, metrics_records(data))
        print(f"# {n} metrics records appended to {args.metrics_jsonl}",
              file=sys.stderr)
    if args.check_baseline:
        ok, report = compare_to_baseline(args.check_baseline, data)
        print(report, file=sys.stderr)
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
