"""Benchmark harness: regenerates the paper's tables and figures."""

from .harness import (
    Figure3Row,
    Figure4Row,
    RatioRow,
    analyze_suite_program,
    figure3,
    figure4,
    figure5,
    figure6,
    format_figure3,
    format_figure4,
    format_ratios,
    run_all,
)

__all__ = [
    "Figure3Row",
    "Figure4Row",
    "RatioRow",
    "analyze_suite_program",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "format_figure3",
    "format_figure4",
    "format_ratios",
    "run_all",
]
