"""Regenerating every table and figure of the paper's evaluation (§5).

One function per exhibit:

- :func:`figure3` — per-program statistics: lines of code, number of
  normalized assignment statements, and the lookup/resolve
  instrumentation (percentage of calls involving structures; of those,
  percentage where the types did not match) for the "Collapse on Cast"
  and "Common Initial Sequence" algorithms;
- :func:`figure4` — average points-to set size of a dereferenced pointer
  for the 12 structure-casting programs under all four algorithms
  (Collapse Always facts expanded per-field);
- :func:`figure5` — analysis times normalized to the "Offsets" algorithm;
- :func:`figure6` — total points-to edges normalized to "Offsets".

Each ``figureN`` returns structured rows; ``format_figureN`` renders the
paper-style text table.  :func:`run_all` regenerates everything (used by
``python -m repro.bench``).

Shared collection pass
----------------------

The four exhibits consume overlapping slices of the same underlying
measurements, so the harness runs one *collection pass*
(:func:`collect_results`): each suite program is parsed once, analyzed
under every strategy it needs (with ``repeats`` timed solves per
casting-program/strategy pair for Figure 5), and every exhibit then
assembles its rows from the shared :class:`SuiteResult` records.  The
per-program jobs are embarrassingly parallel and fan out across worker
processes (``jobs=``); each worker keeps the Figure 5 timing loop fully
inside the process so solve times are never polluted by IPC.  Results
are returned in deterministic (suite) order regardless of ``jobs``.

Timing methodology: Figure 5 keeps the minimum solve time over
``repeats`` runs, which is the standard way to reduce scheduler noise
for ratio reporting; the pytest-benchmark targets in
``benchmarks/bench_figure5.py`` provide statistically richer timings.

:func:`write_baseline` dumps the collection pass as JSON
(``BENCH_engine.json`` at the repo root is the committed baseline) so
the perf trajectory of the engine is tracked across changes.
"""

from __future__ import annotations

import gc
import json
import os
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from ..clients.derefstats import deref_stats
from ..core import ALL_STRATEGIES, analyze
from ..core.backend import backend_name
from ..core.engine import EngineStats, Result
from ..frontend import program_from_c
from ..ir.program import Program
from ..suite.registry import SUITE, BenchmarkProgram, by_name, casting_programs, load_source

__all__ = [
    "Figure3Row",
    "Figure4Row",
    "RatioRow",
    "SuiteResult",
    "analyze_suite_program",
    "collect_results",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "format_figure3",
    "format_figure4",
    "format_ratios",
    "metrics_records",
    "run_all",
    "write_baseline",
    "append_history",
    "history_path",
    "compare_to_baseline",
]

STRATEGY_ORDER = [cls.key for cls in ALL_STRATEGIES]
#: The two portable casting-aware algorithms Figure 3 instruments.
FIGURE3_KEYS = ("collapse_on_cast", "common_initial_sequence")
_HEADERS = {
    "collapse_always": "Collapse Always",
    "collapse_on_cast": "Collapse on Cast",
    "common_initial_sequence": "Common Init Seq",
    "offsets": "Offsets",
}


def loc_of(source: str) -> int:
    """Non-blank source lines (the paper's "lines of source code")."""
    return sum(1 for line in source.splitlines() if line.strip())


def load_program(bp: BenchmarkProgram) -> Program:
    """Parse and normalize one suite program."""
    return program_from_c(load_source(bp), name=bp.name)


def analyze_suite_program(bp: BenchmarkProgram, strategy_key: str,
                          program: Optional[Program] = None) -> Result:
    """Analyze one suite program under one strategy (by key)."""
    from ..core import STRATEGY_BY_KEY

    if program is None:
        program = load_program(bp)
    return analyze(program, STRATEGY_BY_KEY[strategy_key]())


# ---------------------------------------------------------------------------
# The shared collection pass.
# ---------------------------------------------------------------------------


@dataclass
class SuiteResult:
    """One (program, strategy) measurement from the collection pass.

    Picklable (plain strings/numbers/dicts only), so records cross the
    worker-process boundary unchanged.
    """

    program: str
    strategy: str
    casting: bool
    loc: int
    stmts: int
    #: :meth:`EngineStats.as_dict` of the first (result-bearing) run.
    stats: Dict[str, float]
    edges: int
    deref_average: float
    #: Minimum solve time over ``repeats`` runs (Figure 5 methodology),
    #: under the *primary* backend.
    solve_seconds: float
    repeats: int
    #: Primary propagation backend (the one ``stats``/``solve_seconds``
    #: describe).
    backend: str = "bigint"
    #: Per-backend min solve seconds when the pass timed several
    #: backends (``None`` for single-backend passes).
    solve_seconds_by_backend: Optional[Dict[str, float]] = None

    @property
    def engine_stats(self) -> EngineStats:
        return EngineStats.from_dict(self.stats)


#: key of the collection mapping: (program name, strategy key).
ResultMap = Dict[Tuple[str, str], SuiteResult]


def _suite_worker(
    job: Tuple[str, Tuple[str, ...], int, Tuple[str, ...]]
) -> List[dict]:
    """Analyze one program under several strategies (runs in a worker).

    Parses the program once, performs ``repeats`` timed solves per
    strategy and backend (timing stays inside this process), and returns
    plain-dict records.  The analysis result (stats, edges, deref
    average) is taken from the first run under the *primary* (first)
    backend — solves are deterministic, so re-runs only serve the timing
    minimum.  When several backends are timed, every backend's result is
    asserted precision-identical to the primary's (same edges, deref
    averages, and gated counters) before its timing is recorded.

    Timed solves run with the cyclic garbage collector paused (the same
    hygiene ``timeit`` applies): a gen-2 collection landing mid-solve
    adds milliseconds of pure scheduler noise to a measurement this
    size.  The collector is flushed before and re-enabled after each
    strategy's measurement block, so memory stays bounded across the
    suite.
    """
    from ..core import STRATEGY_BY_KEY
    from ..session import AnalysisSession

    name, keys, repeats, backends = job
    bp = by_name(name)
    source = load_source(bp)
    session = AnalysisSession(program_from_c(source, name=bp.name))
    loc = loc_of(source)
    stmts = session.program.stmt_count()
    primary = backends[0]
    out: List[dict] = []
    for key in keys:
        first: Optional[Result] = None
        by_backend: Dict[str, float] = {}
        first_gated: Optional[dict] = None
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.collect()
            gc.disable()
        try:
            for be in backends:
                best: Optional[float] = None
                for _ in range(max(repeats, 1)):
                    # fresh=True: every timed run drains the full worklist
                    # on a new engine (the session only amortizes the
                    # front end and the strategy layer's shared memos).
                    res = session.solve(
                        STRATEGY_BY_KEY[key](), fresh=True, backend=be
                    )
                    if first is None:
                        first = res
                        first_gated = _gated_stats(res.stats.as_dict())
                    elif best is None:
                        # First run under a secondary backend: the
                        # fixpoint must be byte-identical to the
                        # primary's.
                        got = _gated_stats(res.stats.as_dict())
                        if (
                            res.facts.edge_count() != first.facts.edge_count()
                            or deref_stats(res).average != deref_stats(first).average
                            or got != first_gated
                        ):
                            raise AssertionError(
                                f"{name}/{key}: backend {be!r} diverged "
                                f"from {primary!r}: edges "
                                f"{res.facts.edge_count()} vs "
                                f"{first.facts.edge_count()}, gated stats "
                                f"{_dict_diff(got, first_gated)}"
                            )
                    t = res.stats.solve_seconds
                    best = t if best is None or t < best else best
                by_backend[be] = best or 0.0
        finally:
            if gc_was_enabled:
                gc.enable()
                gc.collect()
        assert first is not None
        out.append(
            dict(
                program=name,
                strategy=key,
                casting=bp.casting,
                loc=loc,
                stmts=stmts,
                stats=first.stats.as_dict(),
                edges=first.facts.edge_count(),
                deref_average=deref_stats(first).average,
                solve_seconds=by_backend[primary],
                repeats=max(repeats, 1),
                backend=primary,
                solve_seconds_by_backend=(
                    by_backend if len(backends) > 1 else None
                ),
            )
        )
    return out


def _gated_stats(stats: Dict[str, object]) -> Dict[str, object]:
    """The precision-gated slice of an ``EngineStats.as_dict``."""
    return {k: v for k, v in stats.items() if k not in _UNGATED_STATS}


def _dict_diff(a: Dict[str, object], b: Optional[Dict[str, object]]) -> str:
    b = b or {}
    diffs = [
        f"{k}: {a.get(k)!r} != {b.get(k)!r}"
        for k in sorted(set(a) | set(b))
        if a.get(k) != b.get(k)
    ]
    return "{" + ", ".join(diffs) + "}"


def _default_jobs() -> int:
    return os.cpu_count() or 1


def collect_results(
    repeats: int = 3,
    jobs: Optional[int] = None,
    programs: Optional[Sequence[BenchmarkProgram]] = None,
    figures: Iterable[str] = ("3", "4", "5", "6"),
    backends: Optional[Sequence[str]] = None,
) -> ResultMap:
    """Run the shared collection pass.

    ``jobs=None`` or ``1`` runs serially in-process; ``jobs>1`` fans the
    per-program jobs out over a process pool.  ``figures`` trims the work
    to what the requested exhibits need (e.g. without Figure 5 no timing
    repeats are run; without Figure 3 the no-cast programs are skipped).
    ``backends`` lists the propagation backends to time; the first is the
    primary whose stats populate each record, and every other backend is
    asserted precision-identical before its timing is kept (defaults to
    the environment-selected backend alone).
    """
    figures = {str(f) for f in figures}
    suite = list(programs) if programs is not None else list(SUITE)
    want_casting = bool(figures & {"4", "5", "6"})
    timing_repeats = repeats if "5" in figures else 1
    bes = tuple(backends) if backends else (backend_name(None),)

    jobs_list: List[Tuple[str, Tuple[str, ...], int, Tuple[str, ...]]] = []
    for bp in suite:
        if bp.casting and want_casting:
            keys = tuple(
                dict.fromkeys(
                    (list(FIGURE3_KEYS) if "3" in figures else []) + STRATEGY_ORDER
                )
            )
            jobs_list.append((bp.name, keys, timing_repeats, bes))
        elif "3" in figures:
            jobs_list.append((bp.name, FIGURE3_KEYS, 1, bes))

    if jobs is None or jobs <= 1 or len(jobs_list) <= 1:
        batches = [_suite_worker(j) for j in jobs_list]
    else:
        import multiprocessing as mp

        method = "fork" if "fork" in mp.get_all_start_methods() else None
        ctx = mp.get_context(method)
        with ctx.Pool(min(jobs, len(jobs_list))) as pool:
            batches = pool.map(_suite_worker, jobs_list)

    data: ResultMap = {}
    for batch in batches:
        for rec in batch:
            sr = SuiteResult(**rec)
            data[(sr.program, sr.strategy)] = sr
    return data


def _ensure(data: Optional[ResultMap], figures: Iterable[str],
            repeats: int = 1) -> ResultMap:
    """Use ``data`` if given, else run a minimal serial collection."""
    if data is not None:
        return data
    return collect_results(repeats=repeats, jobs=None, figures=figures)


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


@dataclass
class Figure3Row:
    name: str
    casting: bool
    loc: int
    stmts: int
    #: strategy key -> (% of lookup+resolve calls involving structures,
    #:                  % of those where the types did not match)
    struct_pct: Dict[str, float]
    mismatch_pct: Dict[str, float]


def figure3(data: Optional[ResultMap] = None) -> List[Figure3Row]:
    """Figure 3: program sizes and lookup/resolve instrumentation."""
    data = _ensure(data, figures=("3",))
    rows: List[Figure3Row] = []
    for bp in SUITE:
        struct_pct: Dict[str, float] = {}
        mismatch_pct: Dict[str, float] = {}
        rec = None
        for key in FIGURE3_KEYS:
            rec = data.get((bp.name, key))
            if rec is None:
                continue
            s = rec.stats
            calls = s["lookup_calls"] + s["resolve_calls"]
            struct = s["lookup_struct_calls"] + s["resolve_struct_calls"]
            mismatch = s["lookup_mismatch_calls"] + s["resolve_mismatch_calls"]
            struct_pct[key] = 100.0 * struct / calls if calls else 0.0
            mismatch_pct[key] = 100.0 * mismatch / struct if struct else 0.0
        if rec is None:
            continue
        rows.append(
            Figure3Row(
                name=bp.name,
                casting=bp.casting,
                loc=rec.loc,
                stmts=rec.stmts,
                struct_pct=struct_pct,
                mismatch_pct=mismatch_pct,
            )
        )
    # Paper ordering: the 8 no-casting programs first, then the 12 with
    # casting, each block sorted by size.
    rows.sort(key=lambda r: (r.casting, r.loc))
    return rows


def format_figure3(rows: List[Figure3Row]) -> str:
    out = [
        "Figure 3: test programs and lookup/resolve instrumentation",
        "(struct%: lookup+resolve calls involving structures;",
        " cast%: of those, calls where the types did not match)",
        "",
        f"{'program':12s} {'cast':4s} {'LOC':>5s} {'stmts':>6s} "
        f"{'CoC struct%':>12s} {'CoC cast%':>10s} "
        f"{'CIS struct%':>12s} {'CIS cast%':>10s}",
    ]
    for r in rows:
        out.append(
            f"{r.name:12s} {'yes' if r.casting else 'no':4s} {r.loc:5d} "
            f"{r.stmts:6d} "
            f"{r.struct_pct['collapse_on_cast']:12.1f} "
            f"{r.mismatch_pct['collapse_on_cast']:10.1f} "
            f"{r.struct_pct['common_initial_sequence']:12.1f} "
            f"{r.mismatch_pct['common_initial_sequence']:10.1f}"
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


@dataclass
class Figure4Row:
    name: str
    #: strategy key -> average points-to set size per dereference.
    averages: Dict[str, float]


def _casting_names(data: ResultMap) -> List[str]:
    """Casting programs present in ``data``, in suite order."""
    present = {name for (name, _key) in data}
    return [bp.name for bp in casting_programs() if bp.name in present]


def figure4(data: Optional[ResultMap] = None) -> List[Figure4Row]:
    """Figure 4: average deref points-to set size, 12 casting programs."""
    data = _ensure(data, figures=("4",))
    return [
        Figure4Row(
            name=name,
            averages={
                key: data[(name, key)].deref_average for key in STRATEGY_ORDER
            },
        )
        for name in _casting_names(data)
    ]


def format_figure4(rows: List[Figure4Row]) -> str:
    out = [
        "Figure 4: average points-to set size of a dereferenced pointer",
        "",
        f"{'program':12s} " + " ".join(f"{_HEADERS[k]:>17s}" for k in STRATEGY_ORDER),
    ]
    for r in rows:
        out.append(
            f"{r.name:12s} "
            + " ".join(f"{r.averages[k]:17.2f}" for k in STRATEGY_ORDER)
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Figures 5 and 6 (ratios normalized to Offsets)
# ---------------------------------------------------------------------------


@dataclass
class RatioRow:
    name: str
    #: strategy key -> value (seconds for fig. 5, edge count for fig. 6).
    values: Dict[str, float]

    def normalized(self) -> Dict[str, float]:
        base = self.values.get("offsets") or 1.0
        return {k: v / base for k, v in self.values.items()}


def figure5(repeats: int = 3, data: Optional[ResultMap] = None) -> List[RatioRow]:
    """Figure 5: analysis time per algorithm (normalize to Offsets)."""
    data = _ensure(data, figures=("5",), repeats=repeats)
    return [
        RatioRow(
            name=name,
            values={
                key: data[(name, key)].solve_seconds for key in STRATEGY_ORDER
            },
        )
        for name in _casting_names(data)
    ]


def figure6(data: Optional[ResultMap] = None) -> List[RatioRow]:
    """Figure 6: total points-to edges per algorithm."""
    data = _ensure(data, figures=("6",))
    return [
        RatioRow(
            name=name,
            values={
                key: float(data[(name, key)].edges) for key in STRATEGY_ORDER
            },
        )
        for name in _casting_names(data)
    ]


def format_ratios(rows: List[RatioRow], title: str, unit: str) -> str:
    out = [
        title,
        f"(ratios normalized to Offsets; absolute Offsets {unit} in last column)",
        "",
        f"{'program':12s} "
        + " ".join(f"{_HEADERS[k]:>17s}" for k in STRATEGY_ORDER)
        + f" {('offsets ' + unit):>16s}",
    ]
    for r in rows:
        norm = r.normalized()
        base = r.values["offsets"]
        base_txt = f"{base:16.4f}" if base < 10 else f"{base:16.0f}"
        out.append(
            f"{r.name:12s} "
            + " ".join(f"{norm[k]:17.2f}" for k in STRATEGY_ORDER)
            + f" {base_txt}"
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Baseline writer (perf trajectory tracking).
# ---------------------------------------------------------------------------


def write_baseline(path: str, data: ResultMap, repeats: int,
                   wall_seconds: Optional[float] = None) -> None:
    """Dump a collection pass to JSON (``BENCH_engine.json`` schema v2).

    Per program and strategy: min solve seconds (primary backend, plus a
    per-backend breakdown when the pass timed several), points-to edges,
    and the full :class:`EngineStats` record; plus field-wise totals (via
    :meth:`EngineStats.merged` — no hand-rolled field lists).  Every v1
    key is preserved, so older readers (and ``compare_to_baseline``
    against an old baseline) keep working.
    """
    programs: Dict[str, dict] = {}
    backends_seen: List[str] = []
    for (name, key), rec in sorted(data.items()):
        entry = programs.setdefault(
            name,
            {"casting": rec.casting, "loc": rec.loc, "stmts": rec.stmts,
             "strategies": {}},
        )
        srec = {
            "solve_seconds": round(rec.solve_seconds, 6),
            "edges": rec.edges,
            "deref_average": round(rec.deref_average, 6),
            "stats": rec.stats,
        }
        if rec.solve_seconds_by_backend:
            srec["solve_seconds_by_backend"] = {
                be: round(t, 6)
                for be, t in sorted(rec.solve_seconds_by_backend.items())
            }
            for be in rec.solve_seconds_by_backend:
                if be not in backends_seen:
                    backends_seen.append(be)
        elif rec.backend not in backends_seen:
            backends_seen.append(rec.backend)
        entry["strategies"][key] = srec
    totals = EngineStats.merged(r.engine_stats for r in data.values())
    totals_doc: Dict[str, object] = {
        "measurements": len(data),
        "min_solve_seconds_sum": round(
            sum(r.solve_seconds for r in data.values()), 6
        ),
        "edges_sum": sum(r.edges for r in data.values()),
        "stats": totals.as_dict(),
    }
    by_backend: Dict[str, float] = {}
    for rec in data.values():
        for be, t in (rec.solve_seconds_by_backend
                      or {rec.backend: rec.solve_seconds}).items():
            by_backend[be] = by_backend.get(be, 0.0) + t
    if len(by_backend) > 1:
        totals_doc["min_solve_seconds_sum_by_backend"] = {
            be: round(t, 6) for be, t in sorted(by_backend.items())
        }
    doc = {
        "schema": 2,
        "tool": "python -m repro.bench --write-baseline",
        "repeats": repeats,
        "strategy_order": STRATEGY_ORDER,
        "backends": sorted(backends_seen),
        "programs": programs,
        "totals": totals_doc,
    }
    if wall_seconds is not None:
        doc["wall_seconds"] = round(wall_seconds, 3)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def history_path(baseline_path: str) -> Path:
    """The timing-history sidecar next to a baseline file.

    ``BENCH_engine.json`` maps to ``BENCH_history.jsonl``; any other
    baseline name ``<stem>.json`` maps to ``<stem>_history.jsonl`` in
    the same directory.
    """
    p = Path(baseline_path)
    stem = p.stem
    if stem.endswith("_engine"):
        stem = stem[: -len("_engine")]
    return p.with_name(f"{stem}_history.jsonl")


def append_history(baseline_path: str, data: ResultMap, repeats: int,
                   wall_seconds: Optional[float] = None) -> Path:
    """Append one timing-trajectory record beside the baseline.

    ``BENCH_engine.json`` is the *precision* gate — timings there are
    informational snapshots, overwritten on every ``--write-baseline``.
    The sidecar (``BENCH_history.jsonl``) keeps the trajectory instead:
    one JSON line per baseline write with the suite's min-solve sums
    (overall, per backend, per program), so performance regressions and
    wins stay visible across PRs without ever touching the gate.
    """
    by_backend: Dict[str, float] = {}
    per_program: Dict[str, float] = {}
    for (name, _key), rec in sorted(data.items()):
        per_program[name] = per_program.get(name, 0.0) + rec.solve_seconds
        for be, t in (rec.solve_seconds_by_backend
                      or {rec.backend: rec.solve_seconds}).items():
            by_backend[be] = by_backend.get(be, 0.0) + t
    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "repeats": repeats,
        "measurements": len(data),
        "min_solve_seconds_sum": round(
            sum(r.solve_seconds for r in data.values()), 6
        ),
        "min_solve_seconds_sum_by_backend": {
            be: round(t, 6) for be, t in sorted(by_backend.items())
        },
        "min_solve_seconds_by_program": {
            name: round(t, 6) for name, t in sorted(per_program.items())
        },
    }
    if wall_seconds is not None:
        record["wall_seconds"] = round(wall_seconds, 3)
    path = history_path(baseline_path)
    with open(path, "a") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def metrics_records(data: ResultMap) -> List[dict]:
    """One ``repro.obs``-style metrics record per measurement.

    The collection pass crosses a process boundary, so these records are
    assembled from the picklable :class:`SuiteResult` slice (EngineStats
    incl. per-rule firing counters, edges, deref average, min solve);
    per-instance memo counters and tracer summaries only exist for
    in-process runs — use :func:`repro.obs.metrics` on a single
    :class:`~repro.core.engine.Result` for those.
    """
    out: List[dict] = []
    for (name, key), rec in sorted(data.items()):
        out.append(
            {
                "program": name,
                "strategy": key,
                "casting": rec.casting,
                "loc": rec.loc,
                "stmts": rec.stmts,
                "stats": rec.stats,
                "facts": rec.edges,
                "deref_average": rec.deref_average,
                "min_solve_seconds": rec.solve_seconds,
                "repeats": rec.repeats,
                "backend": rec.backend,
                "min_solve_seconds_by_backend": rec.solve_seconds_by_backend,
            }
        )
    return out


#: Stats fields excluded from the precision gate: timings, the collapse
#: counters, the backend identity/how-counters, the session counters,
#: and the link/modular provenance counters (they describe *how* the
#: fixpoint was reached — propagation order, backend, incremental vs.
#: from scratch, linked vs. single-TU, modular vs. whole-program — not
#: *what* it computed).
_UNGATED_STATS = (
    "solve_seconds",
    "sccs_collapsed",
    "props_saved",
    "backend",
    "dense_rounds",
    "accel_active",
    "frontier_bits_suppressed",
    "incremental_solves",
    "delta_stmts",
    "reused_graph_refs",
    "tus_linked",
    "externs_resolved",
    "summaries_computed",
    "scc_parallel_batches",
    "modular_pool_failures",
    "demanded_facts",
    "demand_widenings",
    "store_hits",
    "store_misses",
)


def compare_to_baseline(path: str, data: ResultMap) -> Tuple[bool, str]:
    """Diff a collection pass against a committed baseline JSON.

    The precision-bearing measurements — points-to edge counts, logical
    fact counts and the rest of the order-independent
    :class:`EngineStats` counters, and per-dereference averages — must
    match the baseline *exactly* for every (program, strategy) pair the
    baseline records; any drift is a failure.  Timings are reported for
    context but never gated (CI machines are too noisy to gate on).

    Returns ``(ok, report)``; ``report`` is a human-readable summary.
    """
    with open(path) as fh:
        base = json.load(fh)

    problems: List[str] = []
    checked = 0
    for name, entry in sorted(base.get("programs", {}).items()):
        for key, brec in sorted(entry.get("strategies", {}).items()):
            rec = data.get((name, key))
            if rec is None:
                problems.append(f"{name}/{key}: measurement missing from run")
                continue
            checked += 1
            if rec.edges != brec["edges"]:
                problems.append(
                    f"{name}/{key}: edges {rec.edges} != baseline {brec['edges']}"
                )
            if round(rec.deref_average, 6) != brec["deref_average"]:
                problems.append(
                    f"{name}/{key}: deref_average {rec.deref_average:.6f} "
                    f"!= baseline {brec['deref_average']:.6f}"
                )
            for field, bval in sorted(brec["stats"].items()):
                if field in _UNGATED_STATS:
                    continue
                got = rec.stats.get(field, 0)
                if got != bval:
                    problems.append(
                        f"{name}/{key}: stats.{field} {got} != baseline {bval}"
                    )

    base_time = base.get("totals", {}).get("min_solve_seconds_sum")
    run_time = sum(
        data[k].solve_seconds
        for k in data
        if k[0] in base.get("programs", {})
        and k[1] in base["programs"][k[0]].get("strategies", {})
    )
    lines = [
        f"baseline check vs {path}: {checked} measurements compared, "
        f"{len(problems)} mismatches"
    ]
    if base_time is not None:
        delta = 100.0 * (run_time - base_time) / base_time if base_time else 0.0
        lines.append(
            f"timing (informational): min-solve sum {run_time:.3f}s "
            f"vs baseline {base_time:.3f}s ({delta:+.1f}%)"
        )
    run_by_backend: Dict[str, float] = {}
    for rec in data.values():
        for be, t in (rec.solve_seconds_by_backend
                      or {rec.backend: rec.solve_seconds}).items():
            run_by_backend[be] = run_by_backend.get(be, 0.0) + t
    if len(run_by_backend) > 1:
        base_by_backend = base.get("totals", {}).get(
            "min_solve_seconds_sum_by_backend", {}
        )
        for be, t in sorted(run_by_backend.items()):
            bt = base_by_backend.get(be)
            vs = f" vs baseline {bt:.3f}s" if bt is not None else ""
            lines.append(
                f"timing (informational): backend {be}: {t:.3f}s{vs}"
            )
    lines.extend(problems)
    return (not problems, "\n".join(lines))


# ---------------------------------------------------------------------------
def run_all(
    out: Optional[TextIO] = None,
    repeats: int = 3,
    jobs: Optional[int] = None,
    programs: Optional[Sequence[BenchmarkProgram]] = None,
    figures: Iterable[str] = ("3", "4", "5", "6"),
    backends: Optional[Sequence[str]] = None,
) -> ResultMap:
    """Regenerate the requested exhibits and print them.

    One shared collection pass feeds every figure; ``jobs`` defaults to
    the machine's CPU count.  Returns the collected data so callers
    (e.g. the baseline writer) can reuse it.
    """
    figures = [str(f) for f in figures]
    if out is None:
        out = sys.stdout
    if jobs is None:
        jobs = _default_jobs()
    data = collect_results(repeats=repeats, jobs=jobs, programs=programs,
                           figures=figures, backends=backends)
    blocks: List[str] = []
    if "3" in figures:
        blocks.append(format_figure3(figure3(data)))
    if "4" in figures:
        blocks.append(format_figure4(figure4(data)))
    if "5" in figures:
        blocks.append(
            format_ratios(figure5(repeats, data),
                          "Figure 5: analysis-time ratios", "seconds")
        )
    if "6" in figures:
        blocks.append(
            format_ratios(figure6(data), "Figure 6: points-to edge ratios",
                          "edges")
        )
    print("\n\n".join(blocks), file=out)
    return data
