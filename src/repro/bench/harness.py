"""Regenerating every table and figure of the paper's evaluation (§5).

One function per exhibit:

- :func:`figure3` — per-program statistics: lines of code, number of
  normalized assignment statements, and the lookup/resolve
  instrumentation (percentage of calls involving structures; of those,
  percentage where the types did not match) for the "Collapse on Cast"
  and "Common Initial Sequence" algorithms;
- :func:`figure4` — average points-to set size of a dereferenced pointer
  for the 12 structure-casting programs under all four algorithms
  (Collapse Always facts expanded per-field);
- :func:`figure5` — analysis times normalized to the "Offsets" algorithm;
- :func:`figure6` — total points-to edges normalized to "Offsets".

Each ``figureN`` returns structured rows; ``format_figureN`` renders the
paper-style text table.  :func:`run_all` regenerates everything (used by
``python -m repro.bench``).

Timing methodology: :func:`figure5` re-runs each analysis ``repeats``
times and keeps the minimum solve time, which is the standard way to
reduce scheduler noise for ratio reporting; the pytest-benchmark targets
in ``benchmarks/bench_figure5.py`` provide statistically richer timings.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO

from ..clients.derefstats import deref_stats
from ..core import ALL_STRATEGIES, analyze
from ..core.engine import Result
from ..frontend import program_from_c
from ..ir.program import Program
from ..suite.registry import SUITE, BenchmarkProgram, casting_programs, load_source

__all__ = [
    "Figure3Row",
    "Figure4Row",
    "RatioRow",
    "analyze_suite_program",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "format_figure3",
    "format_figure4",
    "format_ratios",
    "run_all",
]

STRATEGY_ORDER = [cls.key for cls in ALL_STRATEGIES]
_HEADERS = {
    "collapse_always": "Collapse Always",
    "collapse_on_cast": "Collapse on Cast",
    "common_initial_sequence": "Common Init Seq",
    "offsets": "Offsets",
}


def loc_of(source: str) -> int:
    """Non-blank source lines (the paper's "lines of source code")."""
    return sum(1 for line in source.splitlines() if line.strip())


def load_program(bp: BenchmarkProgram) -> Program:
    """Parse and normalize one suite program."""
    return program_from_c(load_source(bp), name=bp.name)


def analyze_suite_program(bp: BenchmarkProgram, strategy_key: str,
                          program: Optional[Program] = None) -> Result:
    """Analyze one suite program under one strategy (by key)."""
    from ..core import STRATEGY_BY_KEY

    if program is None:
        program = load_program(bp)
    return analyze(program, STRATEGY_BY_KEY[strategy_key]())


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


@dataclass
class Figure3Row:
    name: str
    casting: bool
    loc: int
    stmts: int
    #: strategy key -> (% of lookup+resolve calls involving structures,
    #:                  % of those where the types did not match)
    struct_pct: Dict[str, float]
    mismatch_pct: Dict[str, float]


def figure3() -> List[Figure3Row]:
    """Figure 3: program sizes and lookup/resolve instrumentation."""
    rows: List[Figure3Row] = []
    for bp in SUITE:
        source = load_source(bp)
        program = program_from_c(source, name=bp.name)
        struct_pct: Dict[str, float] = {}
        mismatch_pct: Dict[str, float] = {}
        for key in ("collapse_on_cast", "common_initial_sequence"):
            res = analyze_suite_program(bp, key, program)
            s = res.stats
            calls = s.lookup_calls + s.resolve_calls
            struct = s.lookup_struct_calls + s.resolve_struct_calls
            mismatch = s.lookup_mismatch_calls + s.resolve_mismatch_calls
            struct_pct[key] = 100.0 * struct / calls if calls else 0.0
            mismatch_pct[key] = 100.0 * mismatch / struct if struct else 0.0
        rows.append(
            Figure3Row(
                name=bp.name,
                casting=bp.casting,
                loc=loc_of(source),
                stmts=program.stmt_count(),
                struct_pct=struct_pct,
                mismatch_pct=mismatch_pct,
            )
        )
    # Paper ordering: the 8 no-casting programs first, then the 12 with
    # casting, each block sorted by size.
    rows.sort(key=lambda r: (r.casting, r.loc))
    return rows


def format_figure3(rows: List[Figure3Row]) -> str:
    out = [
        "Figure 3: test programs and lookup/resolve instrumentation",
        "(struct%: lookup+resolve calls involving structures;",
        " cast%: of those, calls where the types did not match)",
        "",
        f"{'program':12s} {'cast':4s} {'LOC':>5s} {'stmts':>6s} "
        f"{'CoC struct%':>12s} {'CoC cast%':>10s} "
        f"{'CIS struct%':>12s} {'CIS cast%':>10s}",
    ]
    for r in rows:
        out.append(
            f"{r.name:12s} {'yes' if r.casting else 'no':4s} {r.loc:5d} "
            f"{r.stmts:6d} "
            f"{r.struct_pct['collapse_on_cast']:12.1f} "
            f"{r.mismatch_pct['collapse_on_cast']:10.1f} "
            f"{r.struct_pct['common_initial_sequence']:12.1f} "
            f"{r.mismatch_pct['common_initial_sequence']:10.1f}"
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


@dataclass
class Figure4Row:
    name: str
    #: strategy key -> average points-to set size per dereference.
    averages: Dict[str, float]


def figure4() -> List[Figure4Row]:
    """Figure 4: average deref points-to set size, 12 casting programs."""
    rows: List[Figure4Row] = []
    for bp in casting_programs():
        program = load_program(bp)
        averages = {
            key: deref_stats(analyze_suite_program(bp, key, program)).average
            for key in STRATEGY_ORDER
        }
        rows.append(Figure4Row(name=bp.name, averages=averages))
    return rows


def format_figure4(rows: List[Figure4Row]) -> str:
    out = [
        "Figure 4: average points-to set size of a dereferenced pointer",
        "",
        f"{'program':12s} " + " ".join(f"{_HEADERS[k]:>17s}" for k in STRATEGY_ORDER),
    ]
    for r in rows:
        out.append(
            f"{r.name:12s} "
            + " ".join(f"{r.averages[k]:17.2f}" for k in STRATEGY_ORDER)
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Figures 5 and 6 (ratios normalized to Offsets)
# ---------------------------------------------------------------------------


@dataclass
class RatioRow:
    name: str
    #: strategy key -> value (seconds for fig. 5, edge count for fig. 6).
    values: Dict[str, float]

    def normalized(self) -> Dict[str, float]:
        base = self.values.get("offsets") or 1.0
        return {k: v / base for k, v in self.values.items()}


def figure5(repeats: int = 3) -> List[RatioRow]:
    """Figure 5: analysis time per algorithm (normalize to Offsets)."""
    rows: List[RatioRow] = []
    for bp in casting_programs():
        program = load_program(bp)
        values: Dict[str, float] = {}
        for key in STRATEGY_ORDER:
            best = None
            for _ in range(max(repeats, 1)):
                res = analyze_suite_program(bp, key, program)
                t = res.stats.solve_seconds
                best = t if best is None or t < best else best
            values[key] = best or 0.0
        rows.append(RatioRow(name=bp.name, values=values))
    return rows


def figure6() -> List[RatioRow]:
    """Figure 6: total points-to edges per algorithm."""
    rows: List[RatioRow] = []
    for bp in casting_programs():
        program = load_program(bp)
        values = {
            key: float(analyze_suite_program(bp, key, program).facts.edge_count())
            for key in STRATEGY_ORDER
        }
        rows.append(RatioRow(name=bp.name, values=values))
    return rows


def format_ratios(rows: List[RatioRow], title: str, unit: str) -> str:
    out = [
        title,
        f"(ratios normalized to Offsets; absolute Offsets {unit} in last column)",
        "",
        f"{'program':12s} "
        + " ".join(f"{_HEADERS[k]:>17s}" for k in STRATEGY_ORDER)
        + f" {('offsets ' + unit):>16s}",
    ]
    for r in rows:
        norm = r.normalized()
        base = r.values["offsets"]
        base_txt = f"{base:16.4f}" if base < 10 else f"{base:16.0f}"
        out.append(
            f"{r.name:12s} "
            + " ".join(f"{norm[k]:17.2f}" for k in STRATEGY_ORDER)
            + f" {base_txt}"
        )
    return "\n".join(out)


# ---------------------------------------------------------------------------
def run_all(out: TextIO = sys.stdout, repeats: int = 3) -> None:
    """Regenerate all four exhibits and print them."""
    print(format_figure3(figure3()), file=out)
    print("", file=out)
    print(format_figure4(figure4()), file=out)
    print("", file=out)
    print(
        format_ratios(figure5(repeats), "Figure 5: analysis-time ratios", "seconds"),
        file=out,
    )
    print("", file=out)
    print(
        format_ratios(figure6(), "Figure 6: points-to edge ratios", "edges"),
        file=out,
    )
