"""Splitting one C file into linkable translation units.

The inverse of :mod:`repro.link.linker`, used to manufacture multi-TU
corpora from the single-file benchmark suite (``tools/split_tu.py``,
``python -m repro.bench --split-tu``) and from fuzz-generated programs
(:mod:`repro.suite.fuzz` ``--multi-tu``).

Strategy: parse the file (macros are expanded by the mini-preprocessor,
so the AST — and therefore every emitted TU — is directive-free), then
emit ``parts`` TUs that each carry a common header and a contiguous
group of the file's function definitions:

- **header** (identical in every TU, original declaration order):
  typedefs, struct/union/enum definitions (inline definitions attached
  to variables are hoisted to bare tag declarations), ``extern``
  declarations for every file-scope variable, and a prototype for every
  function;
- **TU 0** additionally holds every variable *definition* (initializers
  intact);
- **TU k** holds its group of function bodies.

File-scope ``static`` is dropped in the emitted TUs: a static variable
or function referenced from a function that moved to another TU would
not be valid C, and within a single split program names are unique so
externalizing them changes nothing about the analysis.  (Cross-TU
``static`` *collisions* — the case the linker's renaming exists for —
are exercised by hand-written tests instead.)

The concatenation of the emitted TUs (``concat_sources``) is itself a
valid single translation unit — repeated typedefs and tag definitions
are tolerated by the front end — which is exactly what the
linked==concatenated differential compares against.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Tuple

from pycparser import c_ast, c_generator

from ..frontend.parse import parse_c
from .tu import prelude_ext_count

__all__ = ["SplitError", "split_translation_units"]


class SplitError(Exception):
    """The file uses a shape the splitter does not support (e.g. a
    global with an anonymous inline struct type)."""


def _de_static(decl: c_ast.Decl) -> None:
    if decl.storage and "static" in decl.storage:
        decl.storage = [s for s in decl.storage if s != "static"]


def _is_function_decl(decl: c_ast.Decl) -> bool:
    t = decl.type
    while isinstance(t, c_ast.ArrayDecl):
        t = t.type
    return isinstance(t, c_ast.FuncDecl)


def _bare_tag_decl(defn: c_ast.Node) -> c_ast.Decl:
    """A standalone ``struct S { ... };`` declaration node."""
    return c_ast.Decl(
        name=None, quals=[], align=[], storage=[], funcspec=[],
        type=defn, init=None, bitsize=None, coord=defn.coord,
    )


def _hoist_inline_tags(
    decl: c_ast.Decl, emitted: set, header: List[c_ast.Node]
) -> None:
    """Replace inline ``struct S {...}`` definitions inside ``decl`` with
    tag references, hoisting the definition into the header (once)."""
    node = decl.type
    while node is not None:
        if isinstance(node, c_ast.TypeDecl):
            inner = node.type
            if isinstance(inner, (c_ast.Struct, c_ast.Union)) and inner.decls is not None:
                if inner.name is None:
                    raise SplitError(
                        f"global {decl.name!r} has an anonymous inline "
                        f"{type(inner).__name__.lower()} type"
                    )
                if inner.name not in emitted:
                    emitted.add(inner.name)
                    header.append(_bare_tag_decl(inner))
                node.type = type(inner)(name=inner.name, decls=None,
                                        coord=inner.coord)
            elif isinstance(inner, c_ast.Enum) and inner.values is not None:
                if inner.name is None:
                    raise SplitError(
                        f"global {decl.name!r} has an anonymous inline enum type"
                    )
                if inner.name not in emitted:
                    emitted.add(inner.name)
                    header.append(_bare_tag_decl(inner))
                node.type = c_ast.Enum(name=inner.name, values=None,
                                       coord=inner.coord)
            return
        node = getattr(node, "type", None)


def _tag_of(decl: c_ast.Decl) -> Optional[str]:
    """The tag a bare ``struct S {...};`` declaration defines, if any."""
    t = decl.type
    if isinstance(t, (c_ast.Struct, c_ast.Union, c_ast.Enum)):
        return t.name
    return None


def split_translation_units(
    source: str, name: str = "prog.c", parts: int = 3
) -> List[Tuple[str, str]]:
    """Split one self-contained C file into ``parts`` linkable TUs.

    Returns ``[(tu_name, tu_source), ...]``.  The input must parse
    strictly; structural shapes the splitter cannot distribute raise
    :class:`SplitError`.
    """
    ast = parse_c(source, filename=name, strict=True)
    body = copy.deepcopy(ast.ext[prelude_ext_count():])

    header: List[c_ast.Node] = []
    var_defs: List[c_ast.Decl] = []
    funcdefs: List[c_ast.FuncDef] = []
    emitted_tags: set = set()

    for ext in body:
        if isinstance(ext, c_ast.Typedef):
            header.append(ext)
        elif isinstance(ext, c_ast.FuncDef):
            _de_static(ext.decl)
            proto = copy.deepcopy(ext.decl)
            proto.init = None
            if proto.type.args is not None and any(
                isinstance(p, c_ast.ID) for p in proto.type.args.params
            ):
                # K&R identifier list: an unprototyped declaration is
                # the only faithful one.
                proto.type.args = None
            header.append(proto)
            funcdefs.append(ext)
        elif isinstance(ext, c_ast.Decl):
            if ext.name is None:
                tag = _tag_of(ext)
                if tag is not None:
                    emitted_tags.add(tag)
                header.append(ext)
            elif _is_function_decl(ext):
                _de_static(ext)
                header.append(ext)
            else:
                _de_static(ext)
                extern_decl = copy.deepcopy(ext)
                extern_decl.init = None
                if "extern" not in (extern_decl.storage or []):
                    extern_decl.storage = ["extern"] + (extern_decl.storage or [])
                _hoist_inline_tags(extern_decl, emitted_tags, header)
                header.append(extern_decl)
                if ext.init is not None or "extern" not in (ext.storage or []):
                    # A definition (strong or tentative): TU 0 carries it,
                    # with its inline tag def replaced by a reference
                    # (the header already holds the definition).
                    _hoist_inline_tags(ext, emitted_tags, [])
                    var_defs.append(ext)
        else:
            raise SplitError(
                f"unsupported top-level node {type(ext).__name__}"
            )

    parts = max(1, min(parts, len(funcdefs) or 1))
    groups: List[List[c_ast.FuncDef]] = [[] for _ in range(parts)]
    for i, fd in enumerate(funcdefs):
        # Contiguous groups, evenly sized: function i of n goes to
        # TU floor(i * parts / n).
        groups[i * parts // len(funcdefs)].append(fd)

    gen = c_generator.CGenerator()
    stem = name[:-2] if name.endswith(".c") else name
    tus: List[Tuple[str, str]] = []
    for k, group in enumerate(groups):
        exts: List[c_ast.Node] = list(header)
        if k == 0:
            exts.extend(var_defs)
        exts.extend(group)
        text = gen.visit(c_ast.FileAST(ext=exts))
        tus.append((f"{stem}_tu{k}.c", text))
    return tus
