"""Multi-TU linking: many C files, one analyzed :class:`Program`.

The package that takes the reproduction from "one ``.c`` file = one
program" to whole projects:

- :mod:`repro.link.tu` — per-file parsing into
  :class:`~repro.link.tu.TranslationUnit` (own AST + file-scope symbol
  table);
- :mod:`repro.link.linker` — cross-TU symbol resolution (extern ↔
  definition binding, tentative-definition folding, ``static``-scope
  renaming, duplicate/conflicting-definition diagnostics) and the merge
  into one normalized program, byte-identical to analyzing the
  concatenated sources;
- :mod:`repro.link.split` — the inverse: splitting a single file into
  linkable TUs, used to manufacture multi-TU corpora from the benchmark
  suite and the fuzz generator.

See docs/internals.md ("Linking and modular solving") for the design
argument and :mod:`repro.core.modular` for the bottom-up solve mode
built on top.
"""

from .linker import (
    LinkError,
    LinkInfo,
    concat_sources,
    link_files,
    link_sources,
    link_translation_units,
)
from .split import SplitError, split_translation_units
from .tu import TranslationUnit, TUSymbol, parse_translation_unit

__all__ = [
    "LinkError",
    "LinkInfo",
    "SplitError",
    "TranslationUnit",
    "TUSymbol",
    "concat_sources",
    "link_files",
    "link_sources",
    "link_translation_units",
    "parse_translation_unit",
    "split_translation_units",
]
