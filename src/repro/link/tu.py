"""Per-translation-unit parsing and symbol tables.

A :class:`TranslationUnit` is one parsed C file plus the file-scope
symbol table the linker (:mod:`repro.link.linker`) resolves across
units: which names this TU *defines* (function bodies, initialized
globals), which it *tentatively defines* (``int x;`` — C's tentative
definitions, folded at link time), which it merely *declares*
(``extern``/prototypes), and which have internal linkage (``static``).

Parsing a TU reuses the single-file front end verbatim — the same
mini-preprocessor, libc prelude, and lenient-mode degradation — so a TU
alone behaves exactly like today's one-file programs.  The linker then
merges the *declaration streams* of many TUs into one
:class:`~repro.ir.program.Program` through a single shared
:class:`~repro.frontend.normalizer.Normalizer` pass, which is what makes
linked analysis byte-identical to analyzing the concatenated source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from pycparser import c_ast, c_generator

from ..diag import DiagnosticSink, SourceLoc
from ..frontend.parse import parse_c

__all__ = [
    "TranslationUnit",
    "TUSymbol",
    "parse_translation_unit",
    "prelude_ext_count",
]

_PRELUDE_EXT_COUNT: Optional[int] = None


def prelude_ext_count() -> int:
    """Number of top-level declarations the libc prelude contributes.

    Every :func:`~repro.frontend.parse.parse_c` AST begins with exactly
    these nodes; the linker slices them off all but the first TU so the
    merged declaration stream matches a single concatenated parse.
    """
    global _PRELUDE_EXT_COUNT
    if _PRELUDE_EXT_COUNT is None:
        _PRELUDE_EXT_COUNT = len(parse_c("", filename="<prelude>").ext)
    return _PRELUDE_EXT_COUNT


@dataclass
class TUSymbol:
    """Link-relevant facts about one file-scope name in one TU."""

    name: str
    #: ``"function"`` or ``"object"``.
    kind: str
    #: Has a strong definition here (function body / initialized global).
    defined: bool = False
    #: Has a C tentative definition here (``int x;`` at file scope).
    tentative: bool = False
    #: Internal linkage (``static``) — invisible to other TUs.
    static: bool = False
    #: Declared ``extern`` (or prototype-only for functions).
    extern: bool = False
    #: Coordinates of the strong definition (or first declaration).
    loc: SourceLoc = field(default_factory=SourceLoc)
    #: Storage-stripped rendering of the declared type, for
    #: conflicting-declaration diagnostics (textual: the linker warns on
    #: *any* cross-TU spelling difference, it does not type-check C).
    type_text: str = ""
    #: Set by the linker when a ``static``-scope collision forced a
    #: TU-local rename (C internal linkage emulated by renaming).
    renamed_to: Optional[str] = None


@dataclass
class TranslationUnit:
    """One parsed C file: AST (prelude included), source, symbol table."""

    name: str
    source: str
    ast: c_ast.FileAST
    symbols: Dict[str, TUSymbol] = field(default_factory=dict)

    def body_exts(self) -> List[c_ast.Node]:
        """Top-level declarations excluding the shared libc prelude."""
        n = prelude_ext_count()
        if len(self.ast.ext) < n:
            # Lenient parse failure: the AST is empty (or truncated);
            # there is no body to contribute.
            return []
        return list(self.ast.ext[n:])

    def defined_names(self) -> List[str]:
        return sorted(
            s.name for s in self.symbols.values() if s.defined or s.tentative
        )


_GEN = c_generator.CGenerator()


def _strip_param_names(node: c_ast.Node) -> None:
    """Null out parameter names inside function declarators: the names
    are not part of the type (``int f(int *)`` == ``int f(int *x)``)."""
    for _, child in node.children():
        if isinstance(child, c_ast.FuncDecl) and child.args is not None:
            for param in child.args.params:
                if isinstance(param, c_ast.Decl):
                    param.name = None
                t = getattr(param, "type", None)
                while t is not None:
                    if isinstance(t, c_ast.TypeDecl):
                        t.declname = None
                        break
                    t = getattr(t, "type", None)
        _strip_param_names(child)


def _type_text(decl: c_ast.Decl) -> str:
    """Storage-free, parameter-name-free one-line rendering of a
    declaration's type."""
    import copy

    stripped = copy.deepcopy(decl)
    stripped.storage, stripped.init = [], None
    _strip_param_names(stripped)
    try:
        text = _GEN.visit(stripped)
    except Exception:
        return "<unprintable>"
    return " ".join(text.split())


def _loc_of(node: c_ast.Node, filename: str) -> SourceLoc:
    coord = getattr(node, "coord", None)
    if coord is None:
        return SourceLoc(file=filename)
    return SourceLoc(file=coord.file or filename, line=coord.line,
                     column=coord.column or 0)


def _is_function_decl(decl: c_ast.Decl) -> bool:
    t = decl.type
    while isinstance(t, (c_ast.ArrayDecl,)):
        t = t.type
    return isinstance(t, c_ast.FuncDecl)


def scan_symbols(tu: TranslationUnit) -> None:
    """Populate ``tu.symbols`` from the TU's top-level declarations."""
    for ext in tu.body_exts():
        if isinstance(ext, c_ast.FuncDef):
            decl = ext.decl
            name = decl.name
            if name is None:
                continue
            sym = tu.symbols.setdefault(
                name, TUSymbol(name=name, kind="function")
            )
            sym.defined = True
            sym.static = sym.static or "static" in (decl.storage or [])
            sym.loc = _loc_of(ext, tu.name)
            sym.type_text = _type_text(decl)
        elif isinstance(ext, c_ast.Decl):
            name = ext.name
            if name is None:
                continue  # bare struct/union/enum definition
            storage = ext.storage or []
            if _is_function_decl(ext):
                sym = tu.symbols.setdefault(
                    name, TUSymbol(name=name, kind="function")
                )
                sym.extern = sym.extern or not sym.defined
                sym.static = sym.static or "static" in storage
            else:
                sym = tu.symbols.setdefault(
                    name, TUSymbol(name=name, kind="object")
                )
                if ext.init is not None:
                    sym.defined = True
                elif "extern" in storage:
                    sym.extern = True
                else:
                    sym.tentative = True
                sym.static = sym.static or "static" in storage
            if not sym.loc.known or (sym.defined and ext.init is not None):
                sym.loc = _loc_of(ext, tu.name)
            if not sym.type_text:
                sym.type_text = _type_text(ext)


def parse_translation_unit(
    source: str,
    name: str = "<tu>",
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> TranslationUnit:
    """Parse one C file into a :class:`TranslationUnit` with symbols.

    Strict mode raises the usual structured front-end errors; lenient
    mode records a FATAL diagnostic for unparsable input and yields an
    empty TU (the linker then links whatever parsed — degradation, not
    a crash).
    """
    sink = diagnostics if diagnostics is not None else DiagnosticSink()
    ast = parse_c(source, filename=name, strict=strict, diagnostics=sink)
    tu = TranslationUnit(name=name, source=source, ast=ast)
    scan_symbols(tu)
    return tu
