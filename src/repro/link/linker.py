"""Linking translation units into one whole-program :class:`Program`.

The linker works at the *declaration-stream* level.  Each TU is parsed
separately (its own :class:`~repro.link.tu.TranslationUnit` with a
symbol table); the linker resolves symbols across units, emits
structured diagnostics through :mod:`repro.diag`, applies C's
``static``-scope rule by renaming colliding internal-linkage names, and
then runs **one** shared :class:`~repro.frontend.normalizer.Normalizer`
over the merged top-level declaration stream (TU order, libc prelude
once).

That last step is the correctness anchor: the merged stream is
node-for-node the stream a single parse of the concatenated sources
produces, and object numbering (temporaries, heap sites, string
literals) is assigned during normalization — so linked analysis is
*byte-identical* to analyzing the concatenation, which the differential
tests assert over every split suite program.

Cross-TU resolution semantics (C11 §6.9.2 linkage model, the subset the
analysis needs):

- **extern ↔ definition**: an ``extern`` declaration (or function
  prototype) binds to the unique external definition in any TU; counted
  in ``LinkInfo.externs_resolved``.
- **tentative definitions**: multiple file-scope ``int x;`` across TUs
  fold into one object (``LinkInfo.tentative_folded``).
- **duplicate strong definitions**: two function bodies, or two
  initialized globals, with the same external name — an ERROR
  diagnostic; strict mode raises :class:`LinkError` (the CLI renders it
  as a one-line diagnostic), lenient mode keeps the first definition and
  degrades.
- **static scope**: an internal-linkage name colliding with any name in
  another TU is renamed to ``name__tuN`` throughout its TU, emulating
  per-TU symbol tables (``LinkInfo.static_renames``).
- **mismatched extern types**: declarations of one external name whose
  storage-stripped spellings differ draw a WARNING (real linkers have no
  type information either; the analysis proceeds with the first
  declaration's type, exactly as the concatenated source would).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from pycparser import c_ast

from ..diag import DiagnosticSink, FrontendError, Severity
from ..frontend.normalizer import Normalizer
from ..ir.program import Program
from .tu import TranslationUnit, parse_translation_unit, prelude_ext_count

__all__ = [
    "LinkError",
    "LinkInfo",
    "concat_sources",
    "link_files",
    "link_sources",
    "link_translation_units",
]


class LinkError(FrontendError):
    """A conflict the linker cannot resolve (strict mode only)."""

    phase = "link"
    default_kind = "link-error"


@dataclass
class LinkInfo:
    """What the linker did — attached as ``program.link_info`` and
    surfaced through :class:`~repro.core.stats.EngineStats`."""

    tus_linked: int = 0
    #: extern declarations / prototypes bound to a definition in a
    #: *different* TU.
    externs_resolved: int = 0
    #: Internal-linkage names renamed to emulate per-TU symbol tables.
    static_renames: int = 0
    #: C tentative definitions folded into another TU's definition.
    tentative_folded: int = 0
    tu_names: List[str] = field(default_factory=list)
    #: name → {tu_name: rename} for every static-scope rename applied.
    renames: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "tus_linked": self.tus_linked,
            "externs_resolved": self.externs_resolved,
            "static_renames": self.static_renames,
            "tentative_folded": self.tentative_folded,
            "tu_names": list(self.tu_names),
        }


def concat_sources(sources: Sequence[Tuple[str, str]]) -> str:
    """The single-file equivalent of linking ``[(name, source), ...]``.

    TUs are joined with standard ``# 1 "name"`` line markers (what a
    real preprocessor emits), so the concatenated parse keeps per-file
    coordinates — making it coordinate-for-coordinate identical to the
    linker's merged declaration stream.  This is the reference side of
    the linked==concatenated differential.
    """
    parts = []
    for name, source in sources:
        parts.append(f'# 1 "{name}"')
        parts.append(source if source.endswith("\n") else source + "\n")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# static-scope renaming
# ----------------------------------------------------------------------
class _StaticRenamer(c_ast.NodeVisitor):
    """Rename file-scope identifiers throughout one TU, scope-aware.

    Walks compound statements sequentially so a local declaration
    shadows the file-scope name only from its declaration onwards, and
    skips ``StructRef`` field names (they are ``ID`` nodes but live in a
    different namespace).
    """

    def __init__(self, renames: Dict[str, str]) -> None:
        self.renames = renames
        self._scopes: List[Set[str]] = []

    def _shadowed(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    def visit_ID(self, node: c_ast.ID) -> None:
        new = self.renames.get(node.name)
        if new is not None and not self._shadowed(node.name):
            node.name = new

    def visit_StructRef(self, node: c_ast.StructRef) -> None:
        self.visit(node.name)  # never rename the .field ID

    def visit_FuncDef(self, node: c_ast.FuncDef) -> None:
        params: Set[str] = set()
        fdecl = node.decl.type
        if isinstance(fdecl, c_ast.FuncDecl) and fdecl.args is not None:
            for p in fdecl.args.params:
                pname = getattr(p, "name", None)
                if pname:
                    params.add(pname)
        self._scopes.append(params)
        self.visit(node.body)
        self._scopes.pop()

    def visit_Compound(self, node: c_ast.Compound) -> None:
        self._scopes.append(set())
        for item in node.block_items or []:
            if isinstance(item, c_ast.Decl) and item.name:
                # The initializer is lowered before the name starts
                # shadowing in the C sense that matters here (references
                # to the outer static inside its own shadower's init).
                if item.init is not None:
                    self.visit(item.init)
                self.visit(item.type)
                self._scopes[-1].add(item.name)
            else:
                self.visit(item)
        self._scopes.pop()


def _rename_declarator(decl: c_ast.Decl, new: str) -> None:
    """Rename the defining occurrence: ``Decl.name`` and the inner
    ``TypeDecl.declname`` (both carry the identifier)."""
    decl.name = new
    t = decl.type
    while t is not None and not isinstance(t, c_ast.TypeDecl):
        t = getattr(t, "type", None)
    if isinstance(t, c_ast.TypeDecl):
        t.declname = new


def _apply_renames(tu: TranslationUnit, renames: Dict[str, str]) -> None:
    if not renames:
        return
    renamer = _StaticRenamer(renames)
    for ext in tu.body_exts():
        if isinstance(ext, c_ast.FuncDef):
            if ext.decl.name in renames:
                _rename_declarator(ext.decl, renames[ext.decl.name])
            renamer.visit(ext)
        elif isinstance(ext, c_ast.Decl):
            if ext.name in renames:
                _rename_declarator(ext, renames[ext.name])
            if ext.init is not None:
                renamer.visit(ext.init)
    for name, new in renames.items():
        sym = tu.symbols.get(name)
        if sym is not None:
            sym.renamed_to = new


# ----------------------------------------------------------------------
# cross-TU symbol resolution
# ----------------------------------------------------------------------
def _resolve_symbols(
    tus: Sequence[TranslationUnit],
    sink: DiagnosticSink,
    strict: bool,
    info: LinkInfo,
) -> None:
    """Diagnose conflicts, count resolutions, apply static renames."""
    # name → [(tu_index, symbol)] over *all* linkage classes.
    by_name: Dict[str, List[Tuple[int, object]]] = {}
    for i, tu in enumerate(tus):
        for sym in tu.symbols.values():
            by_name.setdefault(sym.name, []).append((i, sym))

    # static-scope collisions first: a TU-internal name colliding with
    # any mention in another TU is renamed out of the way, *before* the
    # external-linkage checks below (a renamed static can no longer
    # clash with an external definition).
    for name, entries in by_name.items():
        if len(entries) < 2:
            continue
        for i, sym in entries:
            if sym.static:
                new = f"{name}__tu{i}"
                _apply_renames(tus[i], {name: new})
                info.static_renames += 1
                info.renames.setdefault(name, {})[tus[i].name] = new
                sink.report(
                    "static-scope-rename",
                    f"static {sym.kind} {name!r} in {tus[i].name} collides "
                    f"with {name!r} in another TU; renamed to {new!r} "
                    f"(internal linkage preserved)",
                    loc=sym.loc, severity=Severity.NOTE, phase="link",
                )

    for name, entries in by_name.items():
        external = [(i, s) for i, s in entries if not s.static]
        if not external:
            continue
        strong = [(i, s) for i, s in external if s.defined]
        tentative = [(i, s) for i, s in external if s.tentative and not s.defined]
        declared = [(i, s) for i, s in external
                    if not s.defined and not s.tentative]

        # Duplicate strong definitions across TUs.
        if len(strong) > 1:
            first_i, first = strong[0]
            for dup_i, dup in strong[1:]:
                message = (
                    f"duplicate definition of {dup.kind} {name!r} in "
                    f"{tus[dup_i].name} (first defined in {tus[first_i].name})"
                )
                if strict:
                    raise LinkError(
                        message, kind="duplicate-definition", loc=dup.loc
                    )
                sink.report(
                    "duplicate-definition",
                    f"{message}; keeping the first definition",
                    loc=dup.loc, severity=Severity.ERROR, phase="link",
                )

        # Mismatched declarations (textual — the linker does not
        # type-check C, it flags cross-TU spelling disagreements).
        spellings = {s.type_text for _, s in external if s.type_text}
        if len(spellings) > 1:
            i0, s0 = external[0]
            sink.report(
                "conflicting-declaration",
                f"{name!r} is declared with conflicting types across TUs: "
                + " vs ".join(sorted(spellings)),
                loc=s0.loc, severity=Severity.WARNING, phase="link",
            )

        # Resolution counters: extern declarations / prototypes bound to
        # a definition living in a *different* TU.
        def_tus = {i for i, _ in strong} | {i for i, _ in tentative}
        if def_tus:
            info.externs_resolved += sum(
                1 for i, _ in declared if any(j != i for j in def_tus)
            )
        if tentative:
            # Each tentative definition beyond the surviving one folds.
            survivors = 1 if not strong else 0
            info.tentative_folded += max(0, len(tentative) - survivors)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def link_translation_units(
    tus: Sequence[TranslationUnit],
    name: str = "<linked>",
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Merge parsed TUs into one normalized :class:`Program`.

    Symbol resolution happens first (diagnostics, static renames); the
    merged declaration stream — first TU's prelude, then every TU's
    body in order — is then normalized in a single pass, so object
    numbering matches a parse of the concatenated sources exactly.
    """
    sink = diagnostics if diagnostics is not None else DiagnosticSink()
    if not tus:
        raise LinkError("nothing to link: no translation units",
                        kind="empty-link")
    info = LinkInfo(tus_linked=len(tus), tu_names=[tu.name for tu in tus])
    _resolve_symbols(tus, sink, strict, info)

    n_prelude = prelude_ext_count()
    merged: List[c_ast.Node] = []
    if len(tus[0].ast.ext) >= n_prelude:
        merged.extend(tus[0].ast.ext[:n_prelude])
    for tu in tus:
        merged.extend(tu.body_exts())

    program = Normalizer(strict=strict, diagnostics=sink, filename=name).run(
        c_ast.FileAST(ext=merged), name=name
    )
    program.link_info = info
    return program


def link_sources(
    sources: Sequence[Tuple[str, str]],
    name: str = "<linked>",
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Parse and link ``[(tu_name, source_text), ...]``."""
    sink = diagnostics if diagnostics is not None else DiagnosticSink()
    tus = [
        parse_translation_unit(src, tu_name, strict=strict, diagnostics=sink)
        for tu_name, src in sources
    ]
    return link_translation_units(tus, name, strict=strict, diagnostics=sink)


def link_files(
    paths: Sequence[Union[str, Path]],
    name: Optional[str] = None,
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Parse and link C files from disk."""
    ps = [Path(p) for p in paths]
    if name is None:
        name = "+".join(p.name for p in ps) if ps else "<linked>"
    return link_sources(
        [(p.name, p.read_text()) for p in ps],
        name, strict=strict, diagnostics=diagnostics,
    )
