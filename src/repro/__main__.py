"""Command-line interface: ``python -m repro [options] file.c``.

Analyze a C file under one (or all) of the framework's instances and
print points-to sets, dereference statistics, or specific queries.

Examples::

    python -m repro prog.c                          # CIS, full dump
    python -m repro a.c b.c main.c                  # link TUs, then analyze
    python -m repro prog.c -s offsets --abi lp64    # one strategy/ABI
    python -m repro prog.c -q p -q 's.field'        # specific queries
    python -m repro prog.c --compare                # all four, summary
    python -m repro prog.c --derefs                 # Figure-4 style sites
    python -m repro prog.c --modular --jobs 4       # bottom-up SCC solve
    python -m repro link a.c b.c                    # link report only
    python -m repro explain prog.c offsets "p -> x" # derivation tree
    python -m repro serve --port 8080               # analysis service
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .clients.derefstats import deref_stats
from .core import ALL_STRATEGIES, STRATEGY_BY_KEY
from .core.backend import BACKENDS
from .ctype.layout import ILP32, LP64, Layout
from .diag import FrontendError, Severity
from .ir.objects import ObjKind
from .ir.refs import FieldRef
from .session import AnalysisSession


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro",
        description="Field-sensitive pointer analysis for C with casting "
        "(Yong/Horwitz/Reps PLDI'99 framework).",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="subcommands: explain (derivation trees, "
        "docs/observability.md) · serve (HTTP analysis service, "
        "docs/service.md) · link (link report for several TUs)\n"
        "docs: framework.md · internals.md · frontend.md · robustness.md "
        "· suite.md · extending.md (all under docs/)",
    )
    p.add_argument(
        "files", nargs="+", metavar="file",
        help="C source file(s) (self-contained, include-free); several "
        "files are linked as separate translation units before analysis",
    )
    p.add_argument(
        "-s", "--strategy",
        choices=sorted(STRATEGY_BY_KEY),
        default="common_initial_sequence",
        help="framework instance to run (default: common_initial_sequence)",
    )
    p.add_argument(
        "--abi", choices=["ilp32", "lp64"], default="ilp32",
        help="concrete layout for the offsets strategies (default: ilp32)",
    )
    p.add_argument(
        "-q", "--query", action="append", default=[],
        metavar="NAME[.FIELD...]",
        help="print the points-to set of a variable or field "
        "(repeatable); e.g. -q p -q s.next",
    )
    p.add_argument(
        "--compare", action="store_true",
        help="run all four instances and print a comparison summary",
    )
    p.add_argument(
        "--derefs", action="store_true",
        help="print per-dereference points-to set sizes (Figure 4 metric)",
    )
    p.add_argument(
        "--no-assumption-1", action="store_true",
        help="pessimistic mode: pointer arithmetic yields Unknown and "
        "dereferences of possibly-corrupted pointers are flagged",
    )
    p.add_argument(
        "--temps", action="store_true",
        help="include compiler temporaries in the full dump",
    )
    p.add_argument(
        "--backend", choices=sorted(BACKENDS), default=None,
        help="propagation backend (default: $REPRO_BACKEND or 'bigint'); "
        "all backends compute the identical fixpoint — see "
        "docs/internals.md",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="profile the analysis run with cProfile and print the top 20 "
        "functions by cumulative time",
    )
    p.add_argument(
        "--lenient", action="store_true",
        help="never abort on unsupported C: degrade each unmodelled "
        "construct to a sound conservative approximation and report it "
        "as a diagnostic on stderr (see docs/robustness.md)",
    )
    p.add_argument(
        "--modular", action="store_true",
        help="solve bottom-up over the callgraph SCC DAG, computing "
        "per-function summaries (same fixpoint as the whole-program "
        "solve; see docs/internals.md)",
    )
    p.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="with --modular: pre-solve independent SCCs in N parallel "
        "worker processes (default: serial)",
    )
    p.add_argument(
        "--demand", action="store_true",
        help="with -q: demand-driven solve restricted to the queried "
        "pointers (same answers as the exhaustive fixpoint; widens "
        "soundly when a query escapes the demanded fragment — see "
        "docs/queries.md)",
    )
    p.add_argument(
        "--store", metavar="DIR", default=None,
        help="content-addressed result store directory: solved fixpoints "
        "persist and identical (program, strategy, ABI, mode) runs "
        "warm-start from disk (see docs/queries.md)",
    )
    return p


def _layout(args) -> Layout:
    return Layout(LP64 if args.abi == "lp64" else ILP32)


def _resolve_query(program, text: str):
    """Parse ``name`` or ``name.field.path`` into a FieldRef."""
    parts = text.split(".")
    name = parts[0]
    obj = program.objects.lookup(name)
    if obj is None:
        # Try function-local names: fn::x
        for candidate in program.objects.all_objects():
            if candidate.name.endswith(f"::{name}"):
                obj = candidate
                break
    if obj is None:
        raise SystemExit(f"error: no object named {name!r}")
    return FieldRef(obj, tuple(parts[1:]))


def _open_session(args) -> AnalysisSession:
    """Parse the input file(s) once, honoring strict/lenient mode.

    Front-end failures (parse, typebuild, normalize, link) never escape
    as tracebacks: strict mode converts the structured error into a
    one-line ``path:line:col: severity: message`` diagnostic and a
    nonzero exit; lenient mode degrades and continues, unless even
    parsing failed (a FATAL diagnostic), which also exits nonzero.
    Several files are linked as separate translation units
    (:mod:`repro.link`); a conflicting definition across TUs is a
    one-line ``link-error`` diagnostic in strict mode, a degradation
    (first definition wins) in lenient mode.
    """
    try:
        session = AnalysisSession.from_files(
            args.files,
            strict=not args.lenient,
            assume_valid_pointers=not args.no_assumption_1,
            backend=args.backend,
            store=args.store,
        )
    except FrontendError as err:
        raise SystemExit(f"{err.diagnostic.one_line()}") from None
    except OSError as err:
        raise SystemExit(
            f"error: cannot read {err.filename or args.files[0]}: "
            f"{err.strerror}"
        ) from None
    except KeyError as err:
        # An unregistered backend (only reachable via $REPRO_BACKEND —
        # --backend is constrained by argparse choices): surface the
        # registry's message instead of a traceback.
        raise SystemExit(f"error: {err.args[0]}") from None
    sink = session.diagnostics
    if sink.has_fatal:
        for d in sink:
            if d.severity is Severity.FATAL:
                raise SystemExit(d.one_line())
    if len(sink):
        print(
            f"# {len(sink)} construct(s) degraded in lenient mode "
            f"({', '.join(sorted(sink.kinds()))}); results are conservative",
            file=sys.stderr,
        )
        for d in sink:
            print(f"# {d.one_line()}", file=sys.stderr)
    return session


def run_compare(session: AnalysisSession, args) -> None:
    # One session: the file is parsed and normalized once, each instance
    # gets its own solve over the shared Program.
    print(f"{'algorithm':25s} {'time':>9s} {'facts':>8s} {'avg |pts|':>10s}")
    for cls in ALL_STRATEGIES:
        result = session.solve(cls(_layout(args)))
        ds = deref_stats(result)
        print(
            f"{cls().name:25s} {result.stats.solve_seconds * 1000:7.1f}ms "
            f"{result.facts.edge_count():8d} {ds.average:10.2f}"
        )


def run_link(argv: List[str]) -> int:
    """``python -m repro link a.c b.c [--lenient]`` — link report only.

    Parses each file as a translation unit, links them, and prints the
    resolution summary (TUs, externs bound, statics renamed, tentative
    definitions folded) plus any diagnostics — no solve.
    """
    p = argparse.ArgumentParser(
        prog="python -m repro link",
        description="Link C translation units and report symbol resolution.",
    )
    p.add_argument("files", nargs="+", metavar="file", help="C source files")
    p.add_argument(
        "--lenient", action="store_true",
        help="degrade duplicate definitions (first wins) instead of failing",
    )
    args = p.parse_args(argv)
    from .diag import DiagnosticSink
    from .link import link_files

    sink = DiagnosticSink()
    try:
        program = link_files(args.files, strict=not args.lenient,
                             diagnostics=sink)
    except FrontendError as err:
        raise SystemExit(err.diagnostic.one_line()) from None
    except OSError as err:
        raise SystemExit(
            f"error: cannot read {err.filename}: {err.strerror}"
        ) from None
    for d in sink:
        print(f"# {d.one_line()}", file=sys.stderr)
    info = program.link_info
    print(f"# {program.summary()}")
    if info is not None:
        print(f"# externs resolved: {info.externs_resolved}   "
              f"statics renamed: {info.static_renames}   "
              f"tentative definitions folded: {info.tentative_folded}")
        for old, by_tu in sorted(info.renames.items()):
            for tu_name, new in sorted(by_tu.items()):
                print(f"#   static rename: {tu_name}: {old} -> {new}")
    return 0


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Subcommand dispatch; bare `python -m repro file.c` keeps working.
    if argv and argv[0] == "explain":
        from .obs.explain import main as explain_main

        return explain_main(argv[1:])
    if argv and argv[0] == "serve":
        from .service.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "link":
        return run_link(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.demand and not args.query:
        parser.error("--demand requires at least one -q/--query target")
    if args.demand and args.modular:
        parser.error("--demand and --modular are mutually exclusive")

    session = _open_session(args)
    if args.compare:
        run_compare(session, args)
        return 0

    program = session.program
    strategy = STRATEGY_BY_KEY[args.strategy](_layout(args))

    def _solve():
        if args.modular:
            return session.solve_modular(strategy, workers=args.jobs).result
        if args.demand:
            refs = [_resolve_query(program, q) for q in args.query]
            return session.solve_demand(strategy, refs).result
        return session.solve(strategy)

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = _solve()
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)
        es = result.stats
        print(
            f"# backend: {es.backend}   dense_rounds: {es.dense_rounds}   "
            f"frontier_bits_suppressed: {es.frontier_bits_suppressed}   "
            f"props_saved: {es.props_saved}   "
            f"tus_linked: {es.tus_linked}   "
            f"externs_resolved: {es.externs_resolved}   "
            f"summaries_computed: {es.summaries_computed}   "
            f"scc_parallel_batches: {es.scc_parallel_batches}   "
            f"modular_pool_failures: {es.modular_pool_failures}   "
            f"demanded_facts: {es.demanded_facts}   "
            f"demand_widenings: {es.demand_widenings}   "
            f"store_hits: {es.store_hits}   "
            f"store_misses: {es.store_misses}",
            file=sys.stderr,
        )
        if session.store is not None:
            print(
                f"# store: {session.store_hits} hit(s), "
                f"{session.store_misses} miss(es) at {session.store.root}",
                file=sys.stderr,
            )
    else:
        result = _solve()
    print(f"# {program.summary()}")
    print(f"# strategy: {strategy.name}   facts: {result.facts.edge_count()}   "
          f"time: {result.stats.solve_seconds * 1000:.1f}ms")
    if args.modular:
        es = result.stats
        print(f"# modular: {es.summaries_computed} function summaries, "
              f"{es.scc_parallel_batches} parallel batches")

    if args.no_assumption_1:
        flagged = result.corrupted_deref_sites()
        if flagged:
            print(f"# {len(flagged)} dereference(s) of possibly-corrupted "
                  f"pointers:")
            for st in flagged:
                print(f"#   line {st.line}: {st!r}")

    if args.query:
        for q in args.query:
            ref = _resolve_query(program, q)
            targets = sorted(map(repr, result.points_to(ref)))
            print(f"{q} -> {targets}")
        return 0

    if args.derefs:
        ds = deref_stats(result)
        for site in ds.sites:
            print(f"line {site.line}: *{site.pointer_name} -> "
                  f"{site.set_size} target(s)")
        print(f"# {ds.count} sites, average {ds.average:.2f}, "
              f"max {ds.maximum}, empty {ds.empty_sites}")
        return 0

    # Full dump: every named object with a non-empty points-to set.
    for src in sorted(result.facts.sources(), key=repr):
        if not args.temps and src.obj.kind in (ObjKind.TEMP, ObjKind.RETVAL):
            continue
        targets = sorted(map(repr, result.facts.points_to(src)))
        print(f"{src!r} -> {{{', '.join(targets)}}}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
