"""repro — Pointer analysis for C programs with structures and casting.

A complete reimplementation of the tunable pointer-analysis framework of
Yong, Horwitz & Reps, *Pointer Analysis for Programs with Structures and
Casting* (PLDI 1999), together with the substrates it needs: a C type
system with a configurable layout engine, a pycparser-based front end that
normalizes C into the paper's five assignment forms, an inclusion-based
inference engine, baselines, analysis clients, and a benchmark suite that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import analyze_c, CommonInitialSequence

    result = analyze_c('''
        struct S { int *s1; int *s2; } s;
        int x, y, *p;
        void main(void) { s.s1 = &x; s.s2 = &y; p = s.s1; }
    ''', CommonInitialSequence())
    p = result.program.objects.lookup("main::p") or result.program.objects.lookup("p")
    print(result.points_to_names(p))   # {'x'}

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

from .core import (
    ALL_STRATEGIES,
    STRATEGY_BY_KEY,
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Engine,
    Offsets,
    Result,
    Strategy,
    analyze,
)
from .ctype import ILP32, LP64, Layout
from .frontend import analyze_c, analyze_file, parse_c, program_from_c
from .session import AnalysisSession

__version__ = "1.1.0"

__all__ = [
    "ALL_STRATEGIES",
    "AnalysisSession",
    "CollapseAlways",
    "CollapseOnCast",
    "CommonInitialSequence",
    "Engine",
    "ILP32",
    "LP64",
    "Layout",
    "Offsets",
    "Result",
    "STRATEGY_BY_KEY",
    "Strategy",
    "analyze",
    "analyze_c",
    "analyze_file",
    "parse_c",
    "program_from_c",
    "__version__",
]
