"""Analysis-as-a-service: the pooled HTTP session server.

The ROADMAP's "heavy traffic" story: wrap
:class:`~repro.session.AnalysisSession` in a long-lived, stdlib-only
HTTP/JSON server so clients create sessions (one parsed translation
unit each), grow them incrementally, and run alias / points-to /
MOD-REF / call-graph queries against cached solved engines.  Layering:

- :mod:`repro.service.app` — endpoint handlers over the pool
  (HTTP-free, unit-testable);
- :mod:`repro.service.pool` — multi-tenant LRU + byte-budget session
  pool with per-session locks;
- :mod:`repro.service.codec` — the JSON wire format for incremental
  statement deltas and query targets;
- :mod:`repro.service.errors` — the structured error model (every
  hostile input is a 4xx JSON diagnostic, never a 500);
- :mod:`repro.service.http` — the ``ThreadingHTTPServer`` adapter and
  the :func:`start_server` background helper;
- :mod:`repro.service.client` — a stdlib client used by tests,
  examples, docs, and the CI smoke job;
- :mod:`repro.service.cli` — ``python -m repro serve``.

Quickstart (the executable version lives in ``docs/service.md``)::

    from repro.service import ServiceConfig, start_server
    from repro.service.client import ServiceClient

    with start_server(ServiceConfig(port=0)) as handle:
        client = ServiceClient(handle.url)
        doc = client.create_session("int x, *p; void main(void){ p = &x; }")
        sid = doc["session"]["id"]
        assert client.points_to(sid, "p")["names"] == ["x"]
"""

from .app import QUERY_KINDS, ServiceApp, ServiceConfig
from .client import ServiceClient, ServiceClientError
from .errors import ServiceError
from .http import ServerHandle, ServiceServer, make_server, start_server
from .pool import PooledSession, SessionPool

__all__ = [
    "QUERY_KINDS",
    "PooledSession",
    "ServerHandle",
    "ServiceApp",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "SessionPool",
    "make_server",
    "start_server",
]
