"""HTTP plumbing: a threading stdlib server over :class:`ServiceApp`.

Stack: ``http.server.ThreadingHTTPServer`` (``socketserver.ThreadingMixIn``
over ``HTTPServer``) with daemon handler threads — one thread per
in-flight request, which is exactly the concurrency grain the pool's
per-session locks are designed for: requests against *distinct* sessions
run in parallel, requests against *one* session serialize on its lock.

This module owns only the wire concerns:

- request bodies are size-capped (413 past ``max_request_bytes``) and
  must be valid JSON objects (400 otherwise);
- sockets carry a read timeout (``request_timeout``) so a stalled client
  cannot pin a handler thread forever;
- every response — success or failure — is one JSON document with
  ``Content-Type: application/json``; the app's
  :meth:`~repro.service.app.ServiceApp.handle` guarantees the payload
  exists for every outcome.

:func:`start_server` runs the server on a background thread and returns
a handle with the bound URL — the form tests, docs, and examples use
(`port=0` binds an ephemeral port).  ``serve_forever`` is the foreground
form behind ``python -m repro serve``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qsl, urlsplit

from .app import ServiceApp, ServiceConfig
from .errors import ServiceError, error_payload

__all__ = ["ServiceServer", "ServerHandle", "make_server", "start_server"]


class _Handler(BaseHTTPRequestHandler):
    """Per-request adapter; all logic lives in the :class:`ServiceApp`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # Quiet by default: one line per request is the access log's job,
    # and the tests/CI smoke boot dozens of servers.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _read_body(self) -> Optional[dict]:
        length = self.headers.get("Content-Length")
        if length is None:
            return None
        try:
            length = int(length)
        except ValueError:
            raise ServiceError(400, "bad-request",
                               "malformed Content-Length header") from None
        app: ServiceApp = self.server.app
        if length > app.config.max_request_bytes:
            raise ServiceError(
                413, "request-too-large",
                f"request body of {length} bytes exceeds the server limit "
                f"of {app.config.max_request_bytes} bytes",
            )
        raw = self.rfile.read(length)
        if not raw:
            return None
        try:
            body = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(400, "bad-request",
                               "request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise ServiceError(400, "bad-request",
                               "request body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        try:
            parts = urlsplit(self.path)
            query = dict(parse_qsl(parts.query))
            body = self._read_body()
        except ServiceError as err:
            self._respond(err.status, err.payload())
            return
        except Exception:  # noqa: BLE001 - socket errors mid-read
            self._respond(400, error_payload(
                400, "bad-request", "could not read the request body"))
            return
        status, payload = self.server.app.handle(
            method, parts.path, query, body
        )
        self._respond(status, payload)

    def _respond(self, status: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True, default=str).encode()
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass                    # client went away; nothing to salvage

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`ServiceApp`."""

    daemon_threads = True

    def __init__(self, app: ServiceApp, verbose: bool = False) -> None:
        self.app = app
        self.verbose = verbose
        super().__init__((app.config.host, app.config.port), _Handler)
        # Per-connection read timeout: a stalled or byte-dripping client
        # trips a socket timeout instead of pinning a handler thread.
        self.timeout = app.config.request_timeout

    def finish_request(self, request, client_address):
        request.settimeout(self.app.config.request_timeout)
        super().finish_request(request, client_address)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(config: Optional[ServiceConfig] = None,
                verbose: bool = False) -> ServiceServer:
    """Bind a server (without serving).  ``port=0`` picks a free port."""
    return ServiceServer(ServiceApp(config), verbose=verbose)


class ServerHandle:
    """A running background server: ``url``, ``app``, and ``close()``."""

    def __init__(self, server: ServiceServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread
        self.url = server.url
        self.app = server.app

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_server(config: Optional[ServiceConfig] = None,
                 verbose: bool = False) -> ServerHandle:
    """Serve on a background daemon thread; returns a closable handle.

    The default config binds ``127.0.0.1`` — combined with ``port=0``
    (an OS-assigned ephemeral port) this is the embedding tests, docs
    snippets, and examples use::

        from repro.service import ServiceConfig, start_server
        with start_server(ServiceConfig(port=0)) as handle:
            ...  # handle.url is http://127.0.0.1:<ephemeral>
    """
    server = make_server(config, verbose=verbose)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-service", daemon=True)
    thread.start()
    return ServerHandle(server, thread)
