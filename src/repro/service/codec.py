"""JSON codec for incremental deltas and query targets.

The delta endpoint (``POST /v1/sessions/{id}/statements``) grows a
*normalized* program, so its wire format is the paper's assignment forms
directly — not C text.  Each statement is one JSON object selected by
``form``, with operands named by object name (``p``, ``main::q``) and
field paths as JSON arrays:

====  ===========  =====================================================
form  paper        JSON shape
====  ===========  =====================================================
1     s = &t.β     ``{"form": "addrof", "lhs": "s", "target": "t",
                   "path": ["f", ...]}``
2     s = &(*p).α  ``{"form": "fieldaddr", "lhs": "s", "ptr": "p",
                   "path": ["f", ...]}`` (path non-empty)
3     s = t.β      ``{"form": "copy", "lhs": "s", "rhs": "t",
                   "path": ["f", ...]}``
4     s = *q       ``{"form": "load", "lhs": "s", "ptr": "q"}``
5     *p = t       ``{"form": "store", "ptr": "p", "rhs": "t"}``
—     s = q ⊕ r    ``{"form": "ptrarith", "lhs": "s",
                   "operands": ["q", "r", ...]}``
====  ===========  =====================================================

``path`` is optional and defaults to ``[]`` (except ``fieldaddr``, whose
``α`` must be non-empty — an empty selector would be a ``copy``).

Object names resolve exactly like the CLI's ``-q`` queries: an exact
match first, then — when the delta names a containing ``function`` —
``function::name``, then any unique ``*::name`` suffix match.  Unknown
names and malformed statements raise :class:`ServiceError` (422), so a
bad delta reports *which* statement failed and why; nothing is applied
from a delta that fails to decode (decode-then-apply, all-or-nothing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.objects import AbstractObject
from ..ir.program import Program
from ..ir.refs import FieldRef
from ..ir.stmts import AddrOf, Copy, FieldAddr, Load, PtrArith, Stmt, Store
from .errors import ServiceError

__all__ = ["resolve_object", "resolve_ref", "statements_from_json"]

STATEMENT_FORMS = ("addrof", "fieldaddr", "copy", "load", "store", "ptrarith")


def resolve_object(
    program: Program, name: str, function: Optional[str] = None
) -> AbstractObject:
    """Find an abstract object by wire name; 422 when it does not exist."""
    if not isinstance(name, str) or not name:
        raise ServiceError(422, "unknown-object",
                           f"object name must be a non-empty string, got {name!r}")
    obj = program.objects.lookup(name)
    if obj is None and function:
        obj = program.objects.lookup(f"{function}::{name}")
    if obj is None:
        suffix = f"::{name}"
        matches = [o for o in program.objects.all_objects()
                   if o.name.endswith(suffix)]
        if len(matches) == 1:
            obj = matches[0]
        elif len(matches) > 1:
            raise ServiceError(
                422, "unknown-object",
                f"ambiguous object name {name!r}: "
                f"{sorted(o.name for o in matches)}",
            )
    if obj is None:
        raise ServiceError(422, "unknown-object",
                           f"no object named {name!r} in this session")
    return obj


def resolve_ref(
    program: Program, text: str, function: Optional[str] = None
) -> FieldRef:
    """Parse ``name`` or ``name.field.path`` into a :class:`FieldRef`."""
    if not isinstance(text, str) or not text:
        raise ServiceError(422, "unknown-object",
                           f"query target must be a non-empty string, got {text!r}")
    parts = text.split(".")
    obj = resolve_object(program, parts[0], function)
    return FieldRef(obj, tuple(parts[1:]))


def _field_path(spec: Dict[str, object], where: str) -> Tuple[str, ...]:
    path = spec.get("path", [])
    if not isinstance(path, (list, tuple)) or not all(
        isinstance(p, str) and p for p in path
    ):
        raise ServiceError(422, "bad-statement",
                           f"{where}: 'path' must be a list of field names")
    return tuple(path)


def _statement_from_json(
    program: Program, spec: Dict[str, object], function: Optional[str],
    where: str,
) -> Stmt:
    if not isinstance(spec, dict):
        raise ServiceError(422, "bad-statement",
                           f"{where}: each statement must be a JSON object")
    form = spec.get("form")
    if form not in STATEMENT_FORMS:
        raise ServiceError(
            422, "bad-statement",
            f"{where}: unknown form {form!r}; "
            f"expected one of {', '.join(STATEMENT_FORMS)}",
        )

    def need(field: str) -> AbstractObject:
        if field not in spec:
            raise ServiceError(422, "bad-statement",
                               f"{where}: form {form!r} requires {field!r}")
        return resolve_object(program, spec[field], function)

    if form == "addrof":
        return AddrOf(need("lhs"), FieldRef(need("target"),
                                            _field_path(spec, where)),
                      fn=function)
    if form == "fieldaddr":
        path = _field_path(spec, where)
        if not path:
            raise ServiceError(422, "bad-statement",
                               f"{where}: fieldaddr requires a non-empty 'path' "
                               "(an empty selector is a 'copy')")
        return FieldAddr(need("lhs"), need("ptr"), path, fn=function)
    if form == "copy":
        return Copy(need("lhs"), FieldRef(need("rhs"),
                                          _field_path(spec, where)),
                    fn=function)
    if form == "load":
        return Load(need("lhs"), need("ptr"), fn=function)
    if form == "store":
        return Store(need("ptr"), need("rhs"), fn=function)
    # ptrarith
    operands = spec.get("operands")
    if not isinstance(operands, (list, tuple)) or not operands:
        raise ServiceError(422, "bad-statement",
                           f"{where}: ptrarith requires a non-empty 'operands' list")
    return PtrArith(need("lhs"),
                    tuple(resolve_object(program, o, function) for o in operands),
                    fn=function)


def statements_from_json(
    program: Program, specs: Sequence[object], function: Optional[str] = None
) -> List[Stmt]:
    """Decode a whole delta; raises before any statement is applied."""
    if not isinstance(specs, (list, tuple)):
        raise ServiceError(422, "bad-statement",
                           "'statements' must be a JSON array")
    return [
        _statement_from_json(program, spec, function, f"statements[{i}]")
        for i, spec in enumerate(specs)
    ]
