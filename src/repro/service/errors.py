"""The service error model: every failure is a structured JSON response.

The server's contract mirrors the never-crash guarantee of the lenient
front end (PR 5, ``docs/robustness.md``): a hostile translation unit —
or a malformed request — must produce a *structured* error document and
a 4xx status, never a traceback or an opaque 500.  The shape is one
envelope for every failure mode::

    {"error": {"kind": "...", "message": "...", "status": 4xx,
               "diagnostics": [{...}, ...]}}

``kind`` is a stable kebab-case slug (like :class:`repro.diag.Diagnostic`
kinds), ``diagnostics`` carries the front end's structured records when
the failure came out of the analysis pipeline, and is empty for pure
protocol errors (bad JSON, unknown session, oversized body).

Status-code mapping (the full table lives in ``docs/service.md``):

====  ====================  =========================================
code  kind (typical)        produced by
====  ====================  =========================================
400   ``bad-request``       malformed JSON, missing/ill-typed fields,
                            unknown enum values (strategy/abi/backend)
404   ``unknown-session``   missing or already-evicted session id
404   ``unknown-endpoint``  unrouted path
405   ``method-not-allowed``wrong HTTP verb on a known path
413   ``request-too-large`` body over the server's byte limit
422   ``analysis-failed``   strict-mode front-end rejection, or a
                            lenient parse with a FATAL diagnostic
422   ``unknown-object``    delta/query naming an object that does not
                            exist in the session's program
422   ``bad-statement``     delta statement that fails the JSON codec
500   ``internal-error``    a genuine server bug (message only — no
                            traceback ever crosses the wire)
====  ====================  =========================================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..diag import Diagnostic, DiagnosticSink, FrontendError

__all__ = [
    "ServiceError",
    "diagnostic_json",
    "diagnostics_json",
    "error_payload",
    "from_frontend_error",
    "from_fatal_sink",
]


def diagnostic_json(d: Diagnostic) -> Dict[str, object]:
    """One :class:`~repro.diag.Diagnostic` as a JSON-ready dict."""
    return {
        "kind": d.kind,
        "message": d.message,
        "severity": d.severity.name,
        "phase": d.phase,
        "file": d.loc.file,
        "line": d.loc.line,
        "column": d.loc.column,
    }


def diagnostics_json(diags: Iterable[Diagnostic]) -> List[Dict[str, object]]:
    return [diagnostic_json(d) for d in diags]


class ServiceError(Exception):
    """A structured request failure; renders as the error envelope."""

    def __init__(
        self,
        status: int,
        kind: str,
        message: str,
        diagnostics: Iterable[Diagnostic] = (),
    ) -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message
        self.diagnostics = list(diagnostics)

    def payload(self) -> Dict[str, object]:
        return error_payload(self.status, self.kind, self.message,
                             self.diagnostics)


def error_payload(
    status: int,
    kind: str,
    message: str,
    diagnostics: Iterable[Diagnostic] = (),
) -> Dict[str, object]:
    """The error envelope every non-2xx response carries."""
    return {
        "error": {
            "status": status,
            "kind": kind,
            "message": message,
            "diagnostics": diagnostics_json(diagnostics),
        }
    }


def from_frontend_error(err: FrontendError) -> ServiceError:
    """Map a strict-mode front-end rejection to a 422 with its record."""
    return ServiceError(
        422, "analysis-failed", err.diagnostic.one_line(),
        diagnostics=[err.diagnostic],
    )


def from_fatal_sink(sink: DiagnosticSink) -> Optional[ServiceError]:
    """A 422 when even lenient mode produced a FATAL record (empty program).

    Mirrors the CLI: a lenient parse that could analyze *nothing* is a
    client error, not a session.  Returns ``None`` when the sink has no
    FATAL record (degraded-but-analyzed sessions are created normally,
    with the diagnostics reported in the session document).
    """
    if not sink.has_fatal:
        return None
    worst = sink.worst()
    return ServiceError(
        422, "analysis-failed",
        worst.one_line() if worst is not None else "nothing could be analyzed",
        diagnostics=list(sink),
    )
