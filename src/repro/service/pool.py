"""Multi-tenant session pool: LRU + byte budget + per-session locks.

The server's unit of work is a *cached session* (ROADMAP: most clients
ask a handful of queries against an already-solved program), so the pool
is the heart of the service.  It bounds two resources independently:

- **slots** (``capacity``) — how many live sessions exist at once; and
- **bytes** (``byte_budget``) — the sum of every session's estimated
  footprint (:meth:`repro.session.AnalysisSession.estimated_bytes`),
  re-measured after each solve/delta because solved engines dominate a
  session's weight.

Either limit overflowing evicts least-recently-used sessions (never the
entry that triggered the enforcement) until both hold again, or only the
triggering entry remains — one giant session may legitimately exceed the
byte budget on its own; evicting it for being alone would make the
server useless for that workload.

Concurrency model: the pool's own dict is guarded by one short-lived
mutex; each entry carries an :class:`threading.RLock` that request
handlers hold for the *duration of the work* on that session.  Queries
against one session therefore serialize (an ``AnalysisSession`` mutates
its caches while solving) while distinct sessions proceed in parallel
across the threading server's handler threads.  An evicted entry is only
unlinked from the pool — a handler still holding its lock finishes its
in-flight request safely; later requests get a structured 404.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import OrderedDict
from typing import Dict, List, Optional

from ..session import AnalysisSession
from .errors import ServiceError

__all__ = ["PooledSession", "SessionPool"]


class PooledSession:
    """One tenant: a session plus its lock, config echo, and accounting."""

    def __init__(
        self,
        session: AnalysisSession,
        name: str,
        strategy_key: str,
        abi: str,
        strict: bool,
        backend: Optional[str],
    ) -> None:
        self.id = uuid.uuid4().hex[:16]
        self.session = session
        self.name = name
        self.strategy_key = strategy_key
        self.abi = abi
        self.strict = strict
        self.backend = backend
        self.lock = threading.RLock()
        self.created_at = time.time()
        self.bytes_estimate = session.estimated_bytes()
        #: Strategy instances are cached per entry so repeated queries
        #: share one ``Strategy`` (and one ``Layout``) — the session's
        #: solve cache keys on layout identity, so this is what turns a
        #: repeat query into a solve-cache hit instead of a new engine.
        self.strategies: Dict[str, object] = {}
        self.queries = 0
        self.deltas = 0

    def describe(self) -> Dict[str, object]:
        """The session document the API returns (sans points-to data)."""
        doc = self.session.describe()
        doc.update(
            id=self.id,
            name=self.name,
            strategy=self.strategy_key,
            abi=self.abi,
            strict=self.strict,
            backend=self.backend,
            bytes_estimate=self.bytes_estimate,
            queries=self.queries,
            deltas=self.deltas,
        )
        return doc


class SessionPool:
    """LRU-evicting, byte-budgeted, lock-per-entry session registry."""

    def __init__(self, capacity: int = 8,
                 byte_budget: int = 256 * 1024 * 1024) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.byte_budget = byte_budget
        self._entries: "OrderedDict[str, PooledSession]" = OrderedDict()
        self._lock = threading.Lock()
        self._use_counter = itertools.count()
        # Counters surfaced by /metrics (monotonic over the server's life).
        self.sessions_created = 0
        self.evictions = 0
        self.checkouts = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def sessions_live(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_live(self) -> int:
        with self._lock:
            return sum(e.bytes_estimate for e in self._entries.values())

    # ------------------------------------------------------------------
    def add(self, entry: PooledSession) -> List[PooledSession]:
        """Register a new session; returns the entries evicted to fit it."""
        with self._lock:
            self._entries[entry.id] = entry
            self.sessions_created += 1
            return self._enforce_locked(keep=entry.id)

    def checkout(self, session_id: str) -> PooledSession:
        """Fetch an entry and mark it most-recently-used; 404 if absent.

        The caller must hold ``entry.lock`` while working on the session.
        """
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                self.misses += 1
                raise ServiceError(
                    404, "unknown-session",
                    f"no session {session_id!r} (expired, evicted, or never "
                    "created)",
                )
            self._entries.move_to_end(session_id)
            self.checkouts += 1
            return entry

    def remove(self, session_id: str) -> PooledSession:
        """Explicit DELETE; 404 if absent.  Not counted as an eviction."""
        with self._lock:
            entry = self._entries.pop(session_id, None)
        if entry is None:
            raise ServiceError(404, "unknown-session",
                               f"no session {session_id!r}")
        return entry

    # ------------------------------------------------------------------
    def remeasure(self, entry: PooledSession) -> List[PooledSession]:
        """Refresh one entry's byte estimate and re-enforce the budget.

        Called after any operation that can grow a session (a solve, an
        incremental delta).  Returns newly evicted entries.
        """
        entry.bytes_estimate = entry.session.estimated_bytes()
        with self._lock:
            if entry.id not in self._entries:
                return []          # already evicted by a concurrent create
            return self._enforce_locked(keep=entry.id)

    def _enforce_locked(self, keep: Optional[str] = None) -> List[PooledSession]:
        evicted: List[PooledSession] = []
        while True:
            over_slots = len(self._entries) > self.capacity
            over_bytes = (
                sum(e.bytes_estimate for e in self._entries.values())
                > self.byte_budget
            )
            if not (over_slots or over_bytes):
                break
            victim_id = next(
                (sid for sid in self._entries if sid != keep), None
            )
            if victim_id is None:
                break              # only the protected entry remains
            evicted.append(self._entries.pop(victim_id))
            self.evictions += 1
        return evicted

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "sessions_live": len(self._entries),
                "sessions_created": self.sessions_created,
                "evictions": self.evictions,
                "checkouts": self.checkouts,
                "misses": self.misses,
                "bytes_live": sum(
                    e.bytes_estimate for e in self._entries.values()
                ),
                "pool_capacity": self.capacity,
                "byte_budget": self.byte_budget,
            }

    def entries(self) -> List[PooledSession]:
        """A snapshot of live entries, LRU-first (for /metrics)."""
        with self._lock:
            return list(self._entries.values())
