"""The service application: endpoint handlers over a session pool.

This module is deliberately HTTP-free: :class:`ServiceApp` maps
``(method, path, query-params, decoded JSON body)`` to
``(status, JSON payload)``, and :mod:`repro.service.http` is a thin
socket adapter over it.  That split keeps every endpoint unit-testable
without binding a port, and keeps the never-500 contract auditable in
one place (:meth:`ServiceApp.handle` is the single choke point where
:class:`~repro.service.errors.ServiceError` and unexpected exceptions
become structured JSON).

Endpoints (full request/response schemas in ``docs/service.md``):

======  ==============================  ================================
method  path                            meaning
======  ==============================  ================================
GET     /healthz                        liveness + pool occupancy
GET     /metrics                        server counters + per-session
                                        ``repro.obs.metrics`` records
POST    /v1/sessions                    parse a translation unit into a
                                        pooled session
GET     /v1/sessions                    list live sessions
GET     /v1/sessions/{id}               one session document
DELETE  /v1/sessions/{id}               drop a session explicitly
POST    /v1/sessions/{id}/statements    incremental delta (JSON codec),
                                        delta-only re-solve
GET     /v1/sessions/{id}/query         alias / points-to / modref /
                                        callgraph / derefs
GET     /v1/sessions/{id}/diagnostics   the session's structured
                                        front-end diagnostics
======  ==============================  ================================
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..clients.alias import may_alias, may_point_to_same
from ..clients.callgraph import build_call_graph
from ..clients.derefstats import deref_stats
from ..clients.modref import mod_ref
from ..core import STRATEGY_BY_KEY
from ..core.backend import backend_name
from ..core.stats import AnalysisBudgetExceeded
from ..ctype.layout import ILP32, LP64, Layout
from ..diag import FrontendError
from ..obs.metrics import session_metrics
from ..session import AnalysisSession
from .codec import resolve_ref, statements_from_json
from .errors import (
    ServiceError,
    diagnostics_json,
    error_payload,
    from_fatal_sink,
    from_frontend_error,
)
from .pool import PooledSession, SessionPool

__all__ = ["ServiceConfig", "ServiceApp", "QUERY_KINDS"]

QUERY_KINDS = ("points_to", "alias", "modref", "callgraph", "derefs")

_ABIS = ("ilp32", "lp64")


@dataclass
class ServiceConfig:
    """Everything ``python -m repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8080
    pool_size: int = 8
    byte_budget: int = 256 * 1024 * 1024
    max_request_bytes: int = 1024 * 1024
    request_timeout: float = 30.0
    #: Default front-end mode for sessions whose create request does not
    #: say; requests may override per session (``"strict": false``).
    default_strict: bool = True
    default_strategy: str = "common_initial_sequence"
    default_abi: str = "ilp32"
    #: Propagation backend for every solve (``None`` = $REPRO_BACKEND or
    #: the registry default).  Validated at construction — same
    #: fail-fast contract as the analyze CLI and ``AnalysisSession``.
    backend: Optional[str] = None
    #: Per-engine fact budget: bounds the work one hostile session can
    #: demand of a solve (maps to a 422, not a hung worker).
    max_facts: int = 5_000_000
    #: Directory of a content-addressed result store (:mod:`repro.store`)
    #: shared by every session, or ``None`` for no persistence.  With a
    #: store, a solve of a program the server (or a previous server
    #: process) has seen before warm-starts from disk instead of
    #: re-running the fixpoint.
    store: Optional[str] = None

    def __post_init__(self) -> None:
        backend_name(self.backend)     # raises KeyError on a bad name
        if self.default_strategy not in STRATEGY_BY_KEY:
            raise KeyError(
                f"unknown strategy {self.default_strategy!r}; registered: "
                f"{', '.join(sorted(STRATEGY_BY_KEY))}"
            )
        if self.default_abi not in _ABIS:
            raise KeyError(f"unknown abi {self.default_abi!r}; "
                           f"expected one of {', '.join(_ABIS)}")


def _layout_for(abi: str) -> Layout:
    return Layout(LP64 if abi == "lp64" else ILP32)


@dataclass
class _ServerCounters:
    """Request-plane counters (the pool owns the session-plane ones)."""

    requests: Dict[str, int] = field(default_factory=dict)
    responses_by_status: Dict[str, int] = field(default_factory=dict)
    solves: int = 0
    solve_cache_hits: int = 0
    internal_errors: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": dict(self.requests),
            "responses_by_status": dict(self.responses_by_status),
            "solves": self.solves,
            "solve_cache_hits": self.solve_cache_hits,
            "internal_errors": self.internal_errors,
        }


class ServiceApp:
    """Route table + handlers; one instance per server process."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.pool = SessionPool(self.config.pool_size,
                                self.config.byte_budget)
        self.counters = _ServerCounters()
        self._counter_lock = threading.Lock()
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    _ROUTES = [
        ("GET", re.compile(r"^/healthz$"), "healthz"),
        ("GET", re.compile(r"^/metrics$"), "metrics"),
        ("POST", re.compile(r"^/v1/sessions$"), "create_session"),
        ("GET", re.compile(r"^/v1/sessions$"), "list_sessions"),
        ("GET", re.compile(r"^/v1/sessions/(?P<sid>[0-9a-f]+)$"),
         "get_session"),
        ("DELETE", re.compile(r"^/v1/sessions/(?P<sid>[0-9a-f]+)$"),
         "delete_session"),
        ("POST", re.compile(r"^/v1/sessions/(?P<sid>[0-9a-f]+)/statements$"),
         "add_statements"),
        ("GET", re.compile(r"^/v1/sessions/(?P<sid>[0-9a-f]+)/query$"),
         "query"),
        ("GET", re.compile(r"^/v1/sessions/(?P<sid>[0-9a-f]+)/diagnostics$"),
         "diagnostics"),
    ]

    def handle(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        body: Optional[dict] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """One request in, ``(status, payload)`` out — never an exception.

        The never-500-on-hostile-input contract lives here: every
        :class:`ServiceError` (including the front-end mappings) renders
        as its 4xx envelope; anything else is a server bug and renders
        as a 500 envelope with the exception *type* only — no traceback,
        no internals, ever crosses the wire.
        """
        query = query or {}
        label = "unmatched"
        counted = False
        try:
            handler, params, label = self._route(method, path)
            self._count_request(label)
            counted = True
            status, payload = handler(params, query, body)
        except ServiceError as err:
            if not counted:          # routing failures count as unmatched
                self._count_request(label)
            status, payload = err.status, err.payload()
        except Exception as exc:  # noqa: BLE001 - the contract is "no leak"
            if not counted:
                self._count_request(label)
            with self._counter_lock:
                self.counters.internal_errors += 1
            status = 500
            payload = error_payload(
                500, "internal-error",
                f"unhandled {type(exc).__name__} while serving {label}",
            )
        with self._counter_lock:
            bucket = f"{status // 100}xx"
            self.counters.responses_by_status[bucket] = (
                self.counters.responses_by_status.get(bucket, 0) + 1
            )
        return status, payload

    def _route(self, method: str, path: str):
        methods_for_path = []
        for verb, pattern, name in self._ROUTES:
            m = pattern.match(path)
            if not m:
                continue
            if verb == method:
                label = f"{verb} {pattern.pattern.replace('(?P<sid>[0-9a-f]+)', '{id}')}"
                label = label.replace("^", "").replace("$", "")
                return getattr(self, "_" + name), m.groupdict(), label
            methods_for_path.append(verb)
        if methods_for_path:
            raise ServiceError(
                405, "method-not-allowed",
                f"{method} not allowed on {path}; "
                f"allowed: {', '.join(sorted(set(methods_for_path)))}",
            )
        raise ServiceError(404, "unknown-endpoint", f"no endpoint {path!r}")

    def _count_request(self, label: str) -> None:
        with self._counter_lock:
            self.counters.requests[label] = (
                self.counters.requests.get(label, 0) + 1
            )

    # ------------------------------------------------------------------
    # Request-body helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def _body(body: Optional[dict]) -> dict:
        if body is None:
            raise ServiceError(400, "bad-request",
                               "this endpoint requires a JSON object body")
        if not isinstance(body, dict):
            raise ServiceError(400, "bad-request",
                               "request body must be a JSON object")
        return body

    @staticmethod
    def _str_field(body: dict, name: str, default=None, required=False):
        value = body.get(name, default)
        if required and value is None:
            raise ServiceError(400, "bad-request",
                               f"missing required field {name!r}")
        if value is not None and not isinstance(value, str):
            raise ServiceError(400, "bad-request",
                               f"field {name!r} must be a string")
        return value

    @staticmethod
    def _tu_sources(files) -> list:
        """Validate the ``files`` field of session creation: a non-empty
        list of ``{"name": ..., "source": ...}`` objects, returned as
        the ``[(name, source), ...]`` pairs the linker consumes."""
        if not isinstance(files, list) or not files:
            raise ServiceError(400, "bad-request",
                               "field 'files' must be a non-empty list of "
                               "{name, source} objects")
        pairs = []
        for i, item in enumerate(files):
            if (not isinstance(item, dict)
                    or not isinstance(item.get("source"), str)):
                raise ServiceError(400, "bad-request",
                                   f"files[{i}] must be an object with a "
                                   f"string 'source'")
            tu_name = item.get("name", f"tu{i}.c")
            if not isinstance(tu_name, str):
                raise ServiceError(400, "bad-request",
                                   f"files[{i}].name must be a string")
            pairs.append((tu_name, item["source"]))
        return pairs

    @staticmethod
    def _bool_field(body: dict, name: str, default: bool) -> bool:
        value = body.get(name, default)
        if not isinstance(value, bool):
            raise ServiceError(400, "bad-request",
                               f"field {name!r} must be a boolean")
        return value

    def _validated_strategy(self, key: Optional[str]) -> str:
        key = key or self.config.default_strategy
        if key not in STRATEGY_BY_KEY:
            raise ServiceError(
                400, "bad-request",
                f"unknown strategy {key!r}; registered: "
                f"{', '.join(sorted(STRATEGY_BY_KEY))}",
            )
        return key

    def _validated_backend(self, name: Optional[str]) -> Optional[str]:
        if name is None:
            return self.config.backend
        try:
            return backend_name(name)
        except KeyError as err:
            raise ServiceError(400, "bad-request", err.args[0]) from None

    # ------------------------------------------------------------------
    # Solving (the one place engines are created per request).
    # ------------------------------------------------------------------
    def _solve(self, entry: PooledSession, strategy_key: str):
        """Solve (or fetch the cached result of) one strategy for ``entry``.

        Caller holds ``entry.lock``.  Strategy instances are cached on
        the pool entry so repeated queries share one layout — which is
        what makes the session's solve cache hit (counted as the
        server's ``solve_cache_hits``).
        """
        strategy = entry.strategies.get(strategy_key)
        if strategy is None:
            strategy = STRATEGY_BY_KEY[strategy_key](_layout_for(entry.abi))
            entry.strategies[strategy_key] = strategy
        before = entry.session.solve_cache_hits
        try:
            result = entry.session.solve(strategy, backend=entry.backend)
        except AnalysisBudgetExceeded as err:
            raise ServiceError(
                422, "analysis-budget-exceeded",
                f"solve exceeded the server's fact budget: {err}",
            ) from None
        with self._counter_lock:
            if entry.session.solve_cache_hits > before:
                self.counters.solve_cache_hits += 1
            else:
                self.counters.solves += 1
        return result

    # ------------------------------------------------------------------
    # Handlers.
    # ------------------------------------------------------------------
    def _healthz(self, params, query, body):
        return 200, {
            "status": "ok",
            "sessions_live": self.pool.sessions_live,
            "uptime_seconds": time.monotonic() - self._started,
        }

    def _metrics(self, params, query, body):
        sessions = []
        for entry in self.pool.entries():
            with entry.lock:
                rec = session_metrics(entry.session)
                rec.update(
                    id=entry.id,
                    name=entry.name,
                    bytes_estimate=entry.bytes_estimate,
                    queries=entry.queries,
                    deltas=entry.deltas,
                )
                sessions.append(rec)
        with self._counter_lock:
            server = self.counters.as_dict()
        server.update(self.pool.counters())
        server["uptime_seconds"] = time.monotonic() - self._started
        return 200, {"server": server, "sessions": sessions}

    def _create_session(self, params, query, body):
        body = self._body(body)
        files = body.get("files")
        if files is not None and "source" in body:
            raise ServiceError(400, "bad-request",
                               "'source' and 'files' are mutually exclusive")
        if files is None:
            source = self._str_field(body, "source", required=True)
        else:
            source = None
        name = self._str_field(body, "name") or "<service>"
        strict = self._bool_field(body, "strict", self.config.default_strict)
        strategy_key = self._validated_strategy(
            self._str_field(body, "strategy"))
        abi = self._str_field(body, "abi") or self.config.default_abi
        if abi not in _ABIS:
            raise ServiceError(400, "bad-request",
                               f"unknown abi {abi!r}; expected one of "
                               f"{', '.join(_ABIS)}")
        backend = self._validated_backend(self._str_field(body, "backend"))

        try:
            if files is not None:
                session = AnalysisSession.from_sources(
                    self._tu_sources(files), name=name, strict=strict,
                    max_facts=self.config.max_facts, backend=backend,
                    store=self.config.store,
                )
            else:
                session = AnalysisSession.from_c(
                    source, name=name, strict=strict,
                    max_facts=self.config.max_facts, backend=backend,
                    store=self.config.store,
                )
        except FrontendError as err:
            raise from_frontend_error(err) from None
        fatal = from_fatal_sink(session.diagnostics)
        if fatal is not None:
            raise fatal

        entry = PooledSession(session, name, strategy_key, abi, strict,
                              backend)
        evicted = self.pool.add(entry)
        doc = entry.describe()
        return 201, {"session": doc, "evicted": [e.id for e in evicted]}

    def _list_sessions(self, params, query, body):
        docs = []
        for entry in self.pool.entries():
            with entry.lock:
                docs.append(entry.describe())
        return 200, {"sessions": docs}

    def _get_session(self, params, query, body):
        entry = self.pool.checkout(params["sid"])
        with entry.lock:
            return 200, {"session": entry.describe()}

    def _delete_session(self, params, query, body):
        entry = self.pool.remove(params["sid"])
        return 200, {"deleted": entry.id}

    def _add_statements(self, params, query, body):
        entry = self.pool.checkout(params["sid"])
        body = self._body(body)
        function = self._str_field(body, "function")
        if "statements" not in body:
            raise ServiceError(400, "bad-request",
                               "missing required field 'statements'")
        with entry.lock:
            program = entry.session.program
            if function is not None and function not in program.functions:
                raise ServiceError(
                    422, "unknown-object",
                    f"no function {function!r} in this session; defined: "
                    f"{sorted(program.functions)}",
                )
            stmts = statements_from_json(program, body["statements"], function)
            added = entry.session.add_statements(stmts, function=function)
            entry.deltas += 1
            resolved = len(entry.session.cached_results())
        self.pool.remeasure(entry)
        return 200, {
            "session": entry.id,
            "added": len(added),
            "function": function,
            "engines_resolved": resolved,
        }

    def _diagnostics(self, params, query, body):
        entry = self.pool.checkout(params["sid"])
        with entry.lock:
            sink = entry.session.diagnostics
            return 200, {
                "session": entry.id,
                "total": sink.total,
                "by_kind": sink.kinds(),
                "by_severity": sink.severities(),
                "records": diagnostics_json(sink),
            }

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def _query(self, params, query, body):
        kind = query.get("kind", "points_to")
        if kind not in QUERY_KINDS:
            raise ServiceError(
                400, "bad-request",
                f"unknown query kind {kind!r}; "
                f"expected one of {', '.join(QUERY_KINDS)}",
            )
        entry = self.pool.checkout(params["sid"])
        demand_info = None
        try:
            with entry.lock:
                strategy_key = self._validated_strategy(query.get("strategy")
                                                        or entry.strategy_key)
                use_demand = (query.get("demand", "").lower()
                              in ("1", "true", "yes"))
                if use_demand and kind in ("points_to", "alias"):
                    result, demand_info = self._solve_demand(
                        entry, strategy_key, kind, query)
                else:
                    result = self._solve(entry, strategy_key)
                entry.queries += 1
                payload = getattr(self, "_query_" + kind)(entry, result, query)
        finally:
            # A query may trigger the FIRST solve of a new strategy: the
            # session's real footprint grows whether or not the handler
            # then succeeds, so the byte-budget re-measurement must run
            # even when a 4xx (unknown target, unknown function) is on
            # its way out — otherwise the growth goes undetected until
            # some unrelated later mutation.
            self.pool.remeasure(entry)
        payload.update(session=entry.id, kind=kind, strategy=strategy_key)
        if demand_info is not None:
            payload["demand"] = demand_info
        return 200, payload

    def _solve_demand(self, entry, strategy_key, kind, query):
        """Demand-restricted solve for the target-specific query kinds.

        Resolves the query's target refs, then asks the session for a
        demand-driven answer — which may be served from the session's
        result cache or store, or may widen to the exhaustive engine;
        every path returns answers equal to the exhaustive fixpoint's.
        Whole-program kinds (modref, callgraph, derefs) never take this
        path: they inspect every pointer, so demand buys nothing.
        """
        strategy = entry.strategies.get(strategy_key)
        if strategy is None:
            strategy = STRATEGY_BY_KEY[strategy_key](_layout_for(entry.abi))
            entry.strategies[strategy_key] = strategy
        program = entry.session.program
        fn = query.get("function")
        if kind == "alias":
            refs = [
                resolve_ref(program, self._required_param(query, "a"), fn),
                resolve_ref(program, self._required_param(query, "b"), fn),
            ]
        else:
            refs = [resolve_ref(
                program, self._required_param(query, "target"), fn)]
        before = entry.session.solve_cache_hits
        try:
            dres = entry.session.solve_demand(
                strategy, refs, backend=entry.backend)
        except AnalysisBudgetExceeded as err:
            raise ServiceError(
                422, "analysis-budget-exceeded",
                f"solve exceeded the server's fact budget: {err}",
            ) from None
        with self._counter_lock:
            if entry.session.solve_cache_hits > before:
                self.counters.solve_cache_hits += 1
            else:
                self.counters.solves += 1
        info = {
            "widened": dres.widened,
            "installed": dres.installed,
            "demanded_objects": len(dres.demanded),
            "demanded_facts": dres.stats.demanded_facts,
        }
        return dres.result, info

    @staticmethod
    def _required_param(query: Dict[str, str], name: str) -> str:
        value = query.get(name)
        if not value:
            raise ServiceError(400, "bad-request",
                               f"query kind requires the {name!r} parameter")
        return value

    def _query_points_to(self, entry, result, query):
        target = self._required_param(query, "target")
        ref = resolve_ref(result.program, target,
                          query.get("function"))
        pts = result.points_to(ref)
        return {
            "target": target,
            "points_to": sorted(map(repr, pts)),
            "names": sorted({r.obj.name for r in pts}),
        }

    def _query_alias(self, entry, result, query):
        a = self._required_param(query, "a")
        b = self._required_param(query, "b")
        fn = query.get("function")
        ra = resolve_ref(result.program, a, fn)
        rb = resolve_ref(result.program, b, fn)
        return {
            "a": a,
            "b": b,
            "may_alias": may_alias(result, ra, rb),
            "may_point_to_same": may_point_to_same(result, ra, rb),
        }

    def _query_modref(self, entry, result, query):
        mr = mod_ref(result)
        fn = query.get("function")
        names = [fn] if fn else sorted(mr.mod)
        if fn and fn not in mr.mod:
            raise ServiceError(422, "unknown-object",
                               f"no function {fn!r} in this session")
        return {
            "functions": {
                name: {
                    "mod": sorted(mr.mod_of(name)),
                    "ref": sorted(mr.ref_of(name)),
                }
                for name in names
            }
        }

    def _query_callgraph(self, entry, result, query):
        cg = build_call_graph(result)
        return {
            "edges": {fn: sorted(callees)
                      for fn, callees in sorted(cg.edges.items())},
            "edge_count": cg.edge_count(),
            "indirect_sites": [
                {"caller": caller, "line": line, "targets": sorted(targets)}
                for (caller, line), targets in sorted(
                    cg.indirect_sites.items(),
                    key=lambda kv: (kv[0][0], kv[0][1] or 0),
                )
            ],
        }

    def _query_derefs(self, entry, result, query):
        ds = deref_stats(result)
        return {
            "sites": [
                {"line": site.line, "pointer": site.pointer_name,
                 "targets": site.set_size}
                for site in ds.sites
            ],
            "count": ds.count,
            "average": ds.average,
            "max": ds.maximum,
            "empty_sites": ds.empty_sites,
        }
