"""``python -m repro serve`` — run the analysis service in the foreground.

Examples::

    python -m repro serve                          # 127.0.0.1:8080
    python -m repro serve --port 0                 # ephemeral port (printed)
    python -m repro serve --pool-size 4 --lenient  # small pool, lenient default
    REPRO_BACKEND=diffprop python -m repro serve   # backend via environment

The server announces its bound URL on stdout (one ``serving on ...``
line — the CI smoke job and scripts parse it, which is what makes
``--port 0`` usable), then serves until SIGINT/SIGTERM, exiting 0 on a
clean shutdown.  Backend names — ``--backend`` or ``$REPRO_BACKEND`` —
are validated before the socket binds, with the same fail-fast
registered-list error as the analyze CLI.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from ..core import STRATEGY_BY_KEY
from ..core.backend import BACKENDS
from .app import ServiceConfig
from .http import make_server

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Long-lived pointer-analysis service: pooled sessions "
        "over HTTP/JSON (create, grow incrementally, query).",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="API reference: docs/service.md · error model: "
        "docs/robustness.md · counters: docs/observability.md",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="interface to bind (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="port to bind; 0 picks a free ephemeral port "
                   "(default: 8080)")
    p.add_argument("--pool-size", type=int, default=8, metavar="N",
                   help="live-session slots before LRU eviction (default: 8)")
    p.add_argument("--max-bytes", type=int, default=256 * 1024 * 1024,
                   metavar="BYTES",
                   help="total estimated session footprint before LRU "
                   "eviction (default: 256 MiB)")
    p.add_argument("--max-request-bytes", type=int, default=1024 * 1024,
                   metavar="BYTES",
                   help="largest accepted request body (default: 1 MiB)")
    p.add_argument("--timeout", type=float, default=30.0, metavar="SECONDS",
                   help="per-connection socket read timeout (default: 30)")
    p.add_argument("--lenient", action="store_true",
                   help="default new sessions to the never-crash lenient "
                   "front end (requests may still say \"strict\": true)")
    p.add_argument("--strategy", choices=sorted(STRATEGY_BY_KEY),
                   default="common_initial_sequence",
                   help="default strategy for sessions and queries that "
                   "don't specify one (default: common_initial_sequence)")
    p.add_argument("--backend", choices=sorted(BACKENDS), default=None,
                   help="propagation backend for every solve (default: "
                   "$REPRO_BACKEND or 'bigint'); validated before binding")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="directory of a content-addressed result store "
                   "shared by all sessions; previously solved programs "
                   "warm-start from disk across server restarts "
                   "(default: no persistence)")
    p.add_argument("--max-facts", type=int, default=5_000_000,
                   help="per-engine fact budget; a solve past it returns a "
                   "422, bounding hostile-session work (default: 5000000)")
    p.add_argument("--verbose", action="store_true",
                   help="log one line per request to stderr")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            pool_size=args.pool_size,
            byte_budget=args.max_bytes,
            max_request_bytes=args.max_request_bytes,
            request_timeout=args.timeout,
            default_strict=not args.lenient,
            default_strategy=args.strategy,
            backend=args.backend,
            max_facts=args.max_facts,
            store=args.store,
        )
        server = make_server(config, verbose=args.verbose)
    except (KeyError, ValueError, OverflowError) as err:
        # Fail fast with the registry's message (covers a bad
        # $REPRO_BACKEND exactly like the analyze CLI) or the socket
        # layer's complaint (e.g. an out-of-range --port), not a
        # traceback.
        print(f"error: {err.args[0]}", file=sys.stderr)
        return 2
    except OSError as err:
        print(f"error: cannot bind {args.host}:{args.port}: {err}",
              file=sys.stderr)
        return 2

    print(f"serving on {server.url}", flush=True)

    # SIGTERM (the supervisor's stop signal) shuts down as cleanly as
    # Ctrl-C: both unwind through server_close and exit 0.
    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    print("shutdown: clean", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
