"""A small stdlib client for the analysis service.

:class:`ServiceClient` wraps ``urllib.request`` around the JSON API so
tests, examples, docs, and the CI smoke job all exercise the same
round-trip path a real client would.  Non-2xx responses raise
:class:`ServiceClientError`, which carries the parsed error envelope —
so callers can assert on ``err.kind`` and the structured diagnostics
exactly as they would on the wire::

    client = ServiceClient(url)
    try:
        client.create_session("int x = ;")        # hostile input
    except ServiceClientError as err:
        assert err.status == 422
        assert err.kind == "analysis-failed"
        assert err.diagnostics[0]["kind"] == "parse-error"

Every method maps 1:1 onto an endpoint; ``docs/service.md`` is the wire
reference.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional
from urllib.error import HTTPError
from urllib.request import Request, urlopen

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A non-2xx response; carries the parsed error envelope."""

    def __init__(self, status: int, payload: dict) -> None:
        err = payload.get("error", {}) if isinstance(payload, dict) else {}
        self.status = status
        self.kind = err.get("kind", "unknown")
        self.diagnostics: List[dict] = err.get("diagnostics", [])
        self.payload = payload
        super().__init__(f"HTTP {status} [{self.kind}]: "
                         f"{err.get('message', payload)}")


class ServiceClient:
    """One server, many sessions; all methods are plain JSON round-trips."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        req = Request(self.base_url + path, data=data, headers=headers,
                      method=method)
        try:
            with urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except HTTPError as err:
            try:
                payload = json.loads(err.read())
            except ValueError:
                payload = {"error": {"kind": "unparseable-response",
                                     "message": str(err)}}
            raise ServiceClientError(err.code, payload) from None

    # ------------------------------------------------------------------
    # Server-level endpoints.
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------
    # Session lifecycle.
    # ------------------------------------------------------------------
    def create_session(
        self,
        source: str,
        name: Optional[str] = None,
        strict: Optional[bool] = None,
        strategy: Optional[str] = None,
        abi: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> dict:
        """``POST /v1/sessions``; returns the session document."""
        body: Dict[str, object] = {"source": source}
        for key, value in (("name", name), ("strict", strict),
                           ("strategy", strategy), ("abi", abi),
                           ("backend", backend)):
            if value is not None:
                body[key] = value
        return self._request("POST", "/v1/sessions", body)

    def list_sessions(self) -> dict:
        return self._request("GET", "/v1/sessions")

    def get_session(self, session_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}")

    def delete_session(self, session_id: str) -> dict:
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    def add_statements(self, session_id: str, statements: List[dict],
                       function: Optional[str] = None) -> dict:
        """``POST /v1/sessions/{id}/statements`` (the JSON delta codec)."""
        body: Dict[str, object] = {"statements": statements}
        if function is not None:
            body["function"] = function
        return self._request("POST", f"/v1/sessions/{session_id}/statements",
                             body)

    def diagnostics(self, session_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}/diagnostics")

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def query(self, session_id: str, kind: str = "points_to",
              **params: str) -> dict:
        """``GET /v1/sessions/{id}/query?kind=...&...``."""
        from urllib.parse import urlencode

        qs = urlencode({"kind": kind, **{k: v for k, v in params.items()
                                         if v is not None}})
        return self._request("GET", f"/v1/sessions/{session_id}/query?{qs}")

    def points_to(self, session_id: str, target: str,
                  strategy: Optional[str] = None) -> dict:
        return self.query(session_id, "points_to", target=target,
                          strategy=strategy)

    def may_alias(self, session_id: str, a: str, b: str,
                  strategy: Optional[str] = None) -> dict:
        return self.query(session_id, "alias", a=a, b=b, strategy=strategy)

    def mod_ref(self, session_id: str, function: Optional[str] = None,
                strategy: Optional[str] = None) -> dict:
        return self.query(session_id, "modref", function=function,
                          strategy=strategy)

    def call_graph(self, session_id: str,
                   strategy: Optional[str] = None) -> dict:
        return self.query(session_id, "callgraph", strategy=strategy)

    def deref_stats(self, session_id: str,
                    strategy: Optional[str] = None) -> dict:
        return self.query(session_id, "derefs", strategy=strategy)
