"""Testing support: the concrete-execution soundness oracle."""

from .interpreter import (
    Machine,
    PtrVal,
    UnsupportedStatement,
    check_soundness,
    concrete_facts,
    run_straightline,
)

__all__ = [
    "Machine",
    "PtrVal",
    "UnsupportedStatement",
    "check_soundness",
    "concrete_facts",
    "run_straightline",
]
