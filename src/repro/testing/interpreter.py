"""Concrete straight-line interpreter — the soundness oracle.

Property-based tests need ground truth: for a generated program, which
addresses actually end up stored where?  This module executes the
normalized IR of a *straight-line* program (no calls, no pointer
arithmetic — the generator emits exactly that subset) over a byte-level
memory model:

- every abstract object is a run of byte cells under the ILP32 layout;
- a pointer value is ``(object, offset)``, stored as 4 tagged byte cells,
  so block copies that split or splice pointers (the paper's
  Complications 2 and 3) behave exactly as on a real machine;
- dereferencing an uninitialized/invalid pointer makes the statement a
  no-op (one legal concrete outcome of undefined behaviour).

After execution, :func:`concrete_facts` reports every complete pointer
found in memory as ``(src_obj, src_off, dst_obj, dst_off)``.  Since the
execution is one possible run of the program, **every** such concrete
fact must be covered by any sound analysis result — the check implemented
in :func:`check_soundness`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.engine import Result
from ..ctype.layout import ILP32, Layout, LayoutError
from ..ir.objects import AbstractObject
from ..ir.program import Program
from ..ir.refs import FieldRef, OffsetRef
from ..ir.stmts import (
    AddrOf,
    Call,
    Copy,
    FieldAddr,
    Load,
    PtrArith,
    Stmt,
    Store,
    declared_pointee,
)

__all__ = [
    "UnsupportedStatement",
    "Machine",
    "run_straightline",
    "concrete_facts",
    "check_soundness",
]

PTR_SIZE = 4  # ILP32


class UnsupportedStatement(Exception):
    """Raised for IR the oracle cannot execute exactly (calls, arithmetic).

    Carries the statement itself, its index in the executed statement
    sequence, and the source line it was lowered from, so fuzz failures
    point straight at the offending input statement.
    """

    def __init__(self, st, index: Optional[int] = None) -> None:
        self.stmt = st
        self.index = index
        self.line = getattr(st, "line", None)
        where = f"stmt #{index}" if index is not None else "stmt"
        at = f" (line {self.line})" if self.line is not None else ""
        super().__init__(f"{where}{at}: {st!r}")


@dataclass(frozen=True)
class PtrVal:
    """A concrete address: offset within an abstract object."""

    obj: AbstractObject
    off: int


# One byte cell: None, or (pointer value, which of its bytes this is).
Cell = Optional[Tuple[PtrVal, int]]


class Machine:
    """Byte-addressable memory over a program's abstract objects."""

    def __init__(self, program: Program, layout: Optional[Layout] = None):
        self.program = program
        self.layout = layout or Layout(ILP32)
        self._mem: Dict[AbstractObject, List[Cell]] = {}

    # ------------------------------------------------------------------
    def cells(self, obj: AbstractObject) -> List[Cell]:
        m = self._mem.get(obj)
        if m is None:
            try:
                size = max(self.layout.sizeof(obj.type), PTR_SIZE)
            except LayoutError:
                size = PTR_SIZE
            m = [None] * size
            self._mem[obj] = m
        return m

    def write_ptr(self, obj: AbstractObject, off: int, val: PtrVal) -> None:
        m = self.cells(obj)
        for i in range(PTR_SIZE):
            if 0 <= off + i < len(m):
                m[off + i] = (val, i)

    def read_ptr(self, obj: AbstractObject, off: int) -> Optional[PtrVal]:
        m = self.cells(obj)
        if off < 0 or off + PTR_SIZE > len(m):
            return None
        first = m[off]
        if first is None or first[1] != 0:
            return None
        val = first[0]
        for i in range(1, PTR_SIZE):
            cell = m[off + i]
            if cell is None or cell[0] is not val or cell[1] != i:
                return None
        return val

    def copy_bytes(
        self,
        dst: AbstractObject,
        dst_off: int,
        src: AbstractObject,
        src_off: int,
        n: int,
    ) -> None:
        dm = self.cells(dst)
        sm = self.cells(src)
        for i in range(n):
            si = src_off + i
            di = dst_off + i
            if 0 <= di < len(dm):
                dm[di] = sm[si] if 0 <= si < len(sm) else None

    # ------------------------------------------------------------------
    def _offsetof(self, obj: AbstractObject, path) -> int:
        try:
            return self.layout.offsetof(obj.type, path)
        except (LayoutError, KeyError):
            return 0

    def _sizeof(self, t) -> int:
        try:
            return max(self.layout.sizeof(t), 1)
        except LayoutError:
            return 1

    def exec_stmt(self, st: Stmt, index: Optional[int] = None) -> None:
        if isinstance(st, AddrOf):
            val = PtrVal(st.target.obj, self._offsetof(st.target.obj, st.target.path))
            self.write_ptr(st.lhs, 0, val)
        elif isinstance(st, FieldAddr):
            pv = self.read_ptr(st.ptr, 0)
            if pv is None:
                return  # UB: dereference of an indeterminate pointer
            tau_p = declared_pointee(st.ptr)
            try:
                delta = self.layout.offsetof(tau_p, st.path)
            except (LayoutError, KeyError):
                return
            off = pv.off + delta
            # An address beyond the pointed-to object's storage is the
            # result of undefined behaviour (a cast to a larger type);
            # under the paper's Assumption 1 such values are never valid
            # pointers, so the oracle treats them as indeterminate.
            if off >= len(self.cells(pv.obj)):
                return
            self.write_ptr(st.lhs, 0, PtrVal(pv.obj, off))
        elif isinstance(st, Copy):
            n = self._sizeof(st.lhs.type)
            off = self._offsetof(st.rhs.obj, st.rhs.path)
            self.copy_bytes(st.lhs, 0, st.rhs.obj, off, n)
        elif isinstance(st, Load):
            pv = self.read_ptr(st.ptr, 0)
            if pv is None:
                return
            n = self._sizeof(st.lhs.type)
            self.copy_bytes(st.lhs, 0, pv.obj, pv.off, n)
        elif isinstance(st, Store):
            pv = self.read_ptr(st.ptr, 0)
            if pv is None:
                return
            n = self._sizeof(declared_pointee(st.ptr))
            self.copy_bytes(pv.obj, pv.off, st.rhs, 0, n)
        elif isinstance(st, (PtrArith, Call)):
            raise UnsupportedStatement(st, index)
        else:  # pragma: no cover - defensive
            raise UnsupportedStatement(st, index)


def run_straightline(program: Program, entry: str = "main") -> Machine:
    """Execute global initializers then ``entry``'s body, in order."""
    m = Machine(program)
    index = 0
    for st in program.global_stmts:
        m.exec_stmt(st, index)
        index += 1
    info = program.functions.get(entry)
    if info is not None:
        for st in info.stmts:
            m.exec_stmt(st, index)
            index += 1
    return m


def concrete_facts(
    machine: Machine,
) -> List[Tuple[AbstractObject, int, AbstractObject, int]]:
    """Every complete pointer stored anywhere in memory."""
    out = []
    for obj, cells in machine._mem.items():
        for off in range(len(cells) - PTR_SIZE + 1):
            pv = machine.read_ptr(obj, off)
            if pv is not None:
                out.append((obj, off, pv.obj, pv.off))
    return out


def check_soundness(result: Result, machine: Machine) -> List[str]:
    """Check that the analysis covers every concrete fact.

    For each complete pointer found at ``(src, off)`` targeting
    ``(dst, doff)``, the analysis' points-to set of the source location
    must contain a reference into ``dst`` (and, for the offset-based
    strategy, a reference at the canonical target offset).  Returns a
    list of human-readable violations (empty = sound).
    """
    violations: List[str] = []
    strategy = result.strategy
    layout = machine.layout
    for src, off, dst, doff in concrete_facts(machine):
        path = layout.offset_to_path(src.type, off)
        if path is None:
            # Spliced mid-scalar pointer bytes: no declared location names
            # this offset, so no field-level fact is expected.
            continue
        norm = strategy.normalize(FieldRef(src, path))
        pts = result.facts.points_to(norm)
        hit_objs = {r.obj for r in pts}
        if dst not in hit_objs:
            violations.append(
                f"{src.name}+{off} concretely points to {dst.name}+{doff}, "
                f"but analysis({strategy.key}) has {sorted(map(repr, pts))}"
            )
            continue
        if isinstance(norm, OffsetRef):
            want = layout.canonical_offset(dst.type, doff)
            offsets = {r.offset for r in pts if isinstance(r, OffsetRef) and r.obj is dst}
            if want not in offsets:
                violations.append(
                    f"{src.name}+{off} points to {dst.name}+{doff} "
                    f"(canonical {want}), analysis offsets: {sorted(offsets)}"
                )
    return violations
