"""Structured diagnostics: the error model shared by every pipeline stage.

The paper's framework is defined over a normalized core language, but the
point of the system is surviving *real* C.  Real inputs contain constructs
the front end cannot (or chooses not to) model precisely; this module
defines how every stage reports them:

- :class:`Diagnostic` — one structured record: a stable ``kind`` slug, a
  human-readable message, a :class:`Severity`, a :class:`SourceLoc` (file,
  line, column), and the pipeline ``phase`` that produced it.
- :class:`FrontendError` — the common base of every structured pipeline
  exception (:class:`~repro.frontend.parse.ParseError`,
  :class:`~repro.frontend.parse.PreprocessorError`,
  :class:`~repro.frontend.typebuilder.TypeBuildError`,
  :class:`~repro.frontend.normalizer.NormalizeError`).  Each instance
  carries a :class:`Diagnostic`, so strict-mode failures are machine
  readable: ``err.kind``, ``err.loc.line`` etc. are always present.
- :class:`DiagnosticSink` — the collector used by lenient mode
  (``strict=False``): instead of raising, a stage *emits* the diagnostic
  and substitutes a sound conservative approximation, so the rest of the
  translation unit is still analyzed.  See ``docs/robustness.md`` for the
  per-construct soundness argument.

Severity semantics:

====  =========  ====================================================
name  analysis?  meaning
====  =========  ====================================================
NOTE     yes     informational; no precision impact
WARNING  yes     a construct was approximated; result stays sound
ERROR    yes     a construct could not be modeled; the statement was
                 havoc-approximated or skipped (may-analysis lenient)
FATAL    no      nothing could be analyzed (e.g. the file failed to
                 parse); the resulting program is empty
====  =========  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Severity",
    "SourceLoc",
    "Diagnostic",
    "DiagnosticSink",
    "FrontendError",
    "loc_of_node",
]


class Severity(enum.IntEnum):
    """How badly a construct degraded the analysis (ordering is meaningful)."""

    NOTE = 0
    WARNING = 1
    ERROR = 2
    FATAL = 3


@dataclass(frozen=True)
class SourceLoc:
    """A source coordinate: ``file:line:column``, any part unknown."""

    file: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def __str__(self) -> str:
        parts = [self.file or "<unknown>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.column is not None:
                parts.append(str(self.column))
        return ":".join(parts)

    @property
    def known(self) -> bool:
        return self.file is not None or self.line is not None


def loc_of_node(node, filename: Optional[str] = None) -> SourceLoc:
    """The :class:`SourceLoc` of a pycparser AST node (best effort).

    pycparser coordinates already honour ``# <line> "<file>"`` markers, so
    ``coord.file`` normally names the user's file; ``filename`` is only a
    fallback for synthesized nodes without coordinates.
    """
    coord = getattr(node, "coord", None)
    if coord is None:
        return SourceLoc(file=filename)
    return SourceLoc(
        file=str(coord.file) if getattr(coord, "file", None) else filename,
        line=getattr(coord, "line", None),
        column=getattr(coord, "column", None),
    )


@dataclass(frozen=True)
class Diagnostic:
    """One structured record of a construct the pipeline could not model."""

    #: Stable kebab-case slug (``unsupported-expression``, ``parse-error``,
    #: ...): what tests and metrics key on.  docs/robustness.md lists them.
    kind: str
    message: str
    severity: Severity = Severity.ERROR
    loc: SourceLoc = field(default_factory=SourceLoc)
    #: Pipeline stage: preprocess | parse | typebuild | normalize | analyze.
    phase: str = "frontend"

    def __str__(self) -> str:
        return f"{self.loc}: {self.severity.name.lower()}: {self.message} [{self.kind}]"

    def one_line(self) -> str:
        """The CLI's single-line rendering (no kind suffix)."""
        return f"{self.loc}: {self.severity.name.lower()}: {self.message}"


class FrontendError(Exception):
    """Base of every structured pipeline error; always carries a Diagnostic.

    Subclasses set ``phase`` and ``default_kind``; constructing one with
    just a message keeps working everywhere (``NormalizeError("...")``),
    producing a record with an unknown location.
    """

    phase = "frontend"
    default_kind = "frontend-error"

    def __init__(
        self,
        message: str,
        *,
        kind: Optional[str] = None,
        loc: Optional[SourceLoc] = None,
        severity: Severity = Severity.ERROR,
    ) -> None:
        loc = loc or SourceLoc()
        self.diagnostic = Diagnostic(
            kind=kind or self.default_kind,
            message=message,
            severity=severity,
            loc=loc,
            phase=self.phase,
        )
        super().__init__(f"{loc}: {message}" if loc.known else message)

    @property
    def kind(self) -> str:
        return self.diagnostic.kind

    @property
    def loc(self) -> SourceLoc:
        return self.diagnostic.loc

    @property
    def severity(self) -> Severity:
        return self.diagnostic.severity


class DiagnosticSink:
    """Collects :class:`Diagnostic` records during one pipeline run.

    One sink is shared by every stage of a lenient run (and is still
    attached in strict runs, where it stays empty because stages raise
    instead).  The sink never raises and never drops records below
    ``limit``; past the limit it counts silently so a pathological input
    cannot exhaust memory with millions of records.
    """

    def __init__(self, limit: int = 10_000) -> None:
        self.records: List[Diagnostic] = []
        self.limit = limit
        #: Total emitted, including records dropped past ``limit``.
        self.total = 0

    # ------------------------------------------------------------------
    def emit(self, diag: Diagnostic) -> Diagnostic:
        self.total += 1
        if len(self.records) < self.limit:
            self.records.append(diag)
        return diag

    def report(
        self,
        kind: str,
        message: str,
        *,
        loc: Optional[SourceLoc] = None,
        severity: Severity = Severity.ERROR,
        phase: str = "frontend",
    ) -> Diagnostic:
        return self.emit(Diagnostic(kind, message, severity, loc or SourceLoc(), phase))

    def absorb(self, err: FrontendError) -> Diagnostic:
        """Record a structured error that lenient mode chose not to raise."""
        return self.emit(err.diagnostic)

    # ------------------------------------------------------------------
    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self.records:
            out[d.kind] = out.get(d.kind, 0) + 1
        return out

    def severities(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self.records:
            out[d.severity.name] = out.get(d.severity.name, 0) + 1
        return out

    @property
    def has_fatal(self) -> bool:
        return any(d.severity is Severity.FATAL for d in self.records)

    def worst(self) -> Optional[Diagnostic]:
        """The most severe record (first among equals), or ``None``."""
        return max(self.records, key=lambda d: d.severity, default=None)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.records)

    def __repr__(self) -> str:
        return f"<DiagnosticSink {len(self.records)} records {self.kinds()!r}>"
