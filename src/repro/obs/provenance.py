"""Derivation provenance: *why* does ``pointsTo(x̂, ŷ)`` hold?

When :class:`~repro.core.engine.Engine` is constructed with
``trace=True`` it carries a :class:`Tracer`.  Every derived fact then
records, at the moment it is first added, a compact **provenance node**:

- the Figure-2 rule that fired (``1``–``5``; rule ``0`` covers the
  derivations the paper handles in prose — Assumption-1 pointer
  arithmetic, library summaries, interprocedural parameter/return
  binding);
- the normalized statement the rule was installed for;
- the *premise facts* (the ``pointsTo(p̂, …)`` antecedents of rules
  2/4/5, and — for facts that flowed along a copy edge or window — the
  source-side fact that flowed);
- the strategy call the rule made (``lookup`` inputs → outputs for rule
  2, ``resolve`` inputs → outputs for rules 3/4/5), with its Figure-3
  :class:`~repro.core.strategy.CallInfo` flags.

Storage is two append-only arenas of parallel lists keyed by the fact
base's interned IDs, so tracing allocates no per-fact objects beyond
one small tuple:

- the **context arena** (:attr:`Tracer.ctx_rules` …): one entry per
  *rule application* (a statement setup or a subscription callback
  firing).  Many facts share one context — e.g. every fact produced by
  one ``resolve``'s copy edges points at the single context that
  installed them.
- the **node arena** (:attr:`Tracer.node_facts` …): one entry per
  *derived fact*, recording its context and its premise fact keys.  A
  fact key is the ``(source ID, target ID)`` pair from
  :meth:`~repro.core.facts.FactBase.intern`.  Only the *first*
  derivation of a fact is kept (:attr:`Tracer.fact_node`), which makes
  the derivation graph acyclic: premises are always recorded before
  their conclusions, so walking premises strictly decreases node
  indices and yields a minimal derivation tree.

The untraced engine never touches any of this — ``Engine.tracer`` is
``None`` and the hot paths only pay an ``is None`` test on the *new
fact* branch (see ``benchmarks/bench_trace_overhead.py`` and
``tests/test_trace_overhead.py`` for the guard that the untraced path
keeps its speed).  In traced mode the engine also disables online
cycle collapsing — a pure optimization with an identical least
fixpoint, re-verified by
:func:`repro.core.reference.traced_equals_untraced` — so that one
``(source, target)`` ID pair always names one logical fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.refs import FieldRef, Ref
from ..ir.stmts import Stmt

__all__ = [
    "FactKey",
    "CallRecord",
    "RULE_LABELS",
    "Tracer",
    "replays",
]

#: A fact ``pointsTo(src, dst)`` as its interned ``(src ID, dst ID)`` pair.
FactKey = Tuple[int, int]

#: Human-readable labels for the ``rule`` field of a context.
RULE_LABELS: Dict[int, str] = {
    0: "outside Figure 2",
    1: "rule 1 (s = &t.b)",
    2: "rule 2 (s = &((*p).a))",
    3: "rule 3 (s = t.b)",
    4: "rule 4 (s = *q)",
    5: "rule 5 (*p = t)",
}


@dataclass(frozen=True, slots=True)
class CallRecord:
    """One instrumented strategy call: inputs → outputs (Figure-3 flags).

    ``kind`` is ``"lookup"`` or ``"resolve"``.  For a lookup, ``args``
    is ``(alpha, target_ref)`` and ``out`` the list of produced refs;
    for a resolve, ``args`` is ``(dst_ref, src_ref)`` and ``out`` the
    pair list or :class:`~repro.core.strategy.Window`.
    """

    kind: str
    tau: object
    args: tuple
    out: object
    involved_struct: bool
    mismatch: bool


class Tracer:
    """Append-only provenance store for one traced engine run."""

    __slots__ = (
        "ctx_rules",
        "ctx_labels",
        "ctx_stmts",
        "ctx_premises",
        "ctx_calls",
        "node_facts",
        "node_ctxs",
        "node_premises",
        "fact_node",
        "normalizations",
    )

    #: Context 0 is the shared fallback for unattributed derivations
    #: (library-summary plumbing fires from inside summary closures).
    UNATTRIBUTED = 0

    def __init__(self) -> None:
        # Context arena (one entry per rule application).
        self.ctx_rules: List[int] = [0]
        self.ctx_labels: List[str] = ["unattributed"]
        self.ctx_stmts: List[Optional[Stmt]] = [None]
        self.ctx_premises: List[Tuple[FactKey, ...]] = [()]
        self.ctx_calls: List[Optional[CallRecord]] = [None]
        # Node arena (one entry per first-derived fact).
        self.node_facts: List[FactKey] = []
        self.node_ctxs: List[int] = []
        self.node_premises: List[Tuple[FactKey, ...]] = []
        #: fact key -> node index of its first (kept) derivation.
        self.fact_node: Dict[FactKey, int] = {}
        #: raw reference -> normalized reference, as seen by the engine.
        self.normalizations: Dict[FieldRef, Ref] = {}

    # ------------------------------------------------------------------
    # Recording (engine-facing; every call is O(1) or O(new facts)).
    # ------------------------------------------------------------------
    def new_ctx(
        self,
        rule: int,
        stmt: Optional[Stmt] = None,
        premises: Tuple[FactKey, ...] = (),
        label: Optional[str] = None,
    ) -> int:
        """Open a context for one rule application; returns its ID."""
        cid = len(self.ctx_rules)
        self.ctx_rules.append(rule)
        self.ctx_labels.append(label or RULE_LABELS[rule])
        self.ctx_stmts.append(stmt)
        self.ctx_premises.append(premises)
        self.ctx_calls.append(None)
        return cid

    def set_call(
        self,
        ctx: int,
        kind: str,
        tau: object,
        args: tuple,
        out: object,
        involved_struct: bool,
        mismatch: bool,
    ) -> None:
        """Attach the strategy call a context made to the context."""
        self.ctx_calls[ctx] = CallRecord(kind, tau, args, out,
                                         involved_struct, mismatch)

    def note_normalize(self, raw: FieldRef, normed: Ref) -> None:
        """Record one ``normalize`` input → output mapping."""
        self.normalizations.setdefault(raw, normed)

    def record_fact(self, sid: int, did: int, ctx: int) -> None:
        """Record the first derivation of ``pointsTo(sid, did)``."""
        key = (sid, did)
        if key in self.fact_node:
            return
        self.fact_node[key] = len(self.node_facts)
        self.node_facts.append(key)
        self.node_ctxs.append(ctx)
        self.node_premises.append(self.ctx_premises[ctx])

    def record_flow(self, dst_id: int, new_bits: int, ctx: int,
                    src_id: int) -> None:
        """Record facts that flowed ``src → dst`` along an edge/window.

        ``new_bits`` is the delta bitset of targets newly added at
        ``dst_id``; each corresponds to the premise fact
        ``pointsTo(src_id, bit)`` plus whatever premised the edge
        itself (a pointer fact, for rules 4 and 5).
        """
        fact_node = self.fact_node
        base = self.ctx_premises[ctx]
        while new_bits:
            low = new_bits & -new_bits
            new_bits ^= low
            did = low.bit_length() - 1
            key = (dst_id, did)
            if key in fact_node:
                continue
            fact_node[key] = len(self.node_facts)
            self.node_facts.append(key)
            self.node_ctxs.append(ctx)
            self.node_premises.append(((src_id, did),) + base)

    # ------------------------------------------------------------------
    # Queries (explain CLI, tests).
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.node_facts)

    def node_of(self, key: FactKey) -> Optional[int]:
        return self.fact_node.get(key)

    def rule_counts(self) -> Dict[int, int]:
        """Derived-fact counts per Figure-2 rule (0 = outside Figure 2)."""
        counts: Dict[int, int] = {}
        rules = self.ctx_rules
        for cid in self.node_ctxs:
            r = rules[cid]
            counts[r] = counts.get(r, 0) + 1
        return counts

    def summary(self) -> Dict[str, object]:
        """Compact arena statistics for :func:`repro.obs.metrics`."""
        return {
            "nodes": len(self.node_facts),
            "contexts": len(self.ctx_rules) - 1,
            "normalizations": len(self.normalizations),
            "facts_by_rule": {
                RULE_LABELS[r].split(" (")[0]: n
                for r, n in sorted(self.rule_counts().items())
            },
        }


# ---------------------------------------------------------------------------
# Replay: re-run the recorded rule application and check the fact falls out.
# ---------------------------------------------------------------------------
def replays(tracer: Tracer, facts, strategy, key: FactKey) -> bool:
    """Does ``key``'s recorded derivation re-derive the same fact?

    Re-executes the node's rule application from its recorded inputs —
    the strategy call for rules 2–5, the premise facts for flows — and
    checks that the recorded fact is among the rule's conclusions.
    Used by the property tests: every traced fact's provenance must
    replay to the fact itself.
    """
    from ..core.strategy import Window

    node = tracer.fact_node.get(key)
    if node is None:
        return False
    sid, did = key
    src_ref = facts.ref_of(sid)
    dst_ref = facts.ref_of(did)
    ctx = tracer.node_ctxs[node]
    rule = tracer.ctx_rules[ctx]
    premises = tracer.node_premises[node]
    call = tracer.ctx_calls[ctx]
    stmt = tracer.ctx_stmts[ctx]

    # Every premise must itself have been derived (and before this node).
    for p in premises:
        pn = tracer.fact_node.get(p)
        if pn is None or pn >= node:
            return False

    if rule == 1:
        # Seed fact: re-normalize the statement's operands.
        if stmt is None:
            return False
        lhs = strategy.normalize(FieldRef(stmt.lhs, ()))
        tgt = strategy.normalize(stmt.target)
        return lhs == src_ref and tgt == dst_ref

    if rule == 2:
        # lookup(τ_p, α, t̂) produced dst_ref; src_ref is the lhs.
        if call is None or call.kind != "lookup":
            return False
        alpha, target = call.args
        out, _info = strategy.cached_lookup(call.tau, alpha, target)
        return dst_ref in out

    if call is not None and call.kind == "resolve":
        # Rules 3/4/5 (and call binding): the fact flowed along an edge
        # or window produced by this resolve.  Re-run it and check the
        # (dst, src) pair — or the byte window — covers the flow, and
        # that the flowed target matches the premise fact's target.
        flow = premises[0] if premises else None
        if flow is None or flow[1] != did:
            return False
        flow_src = facts.ref_of(flow[0])
        out, _info = strategy.cached_resolve(*call.args, call.tau)
        if isinstance(out, Window):
            if flow_src.obj is not out.src.obj or src_ref.obj is not out.dst.obj:
                return False
            i = flow_src.offset - out.src.offset
            if not 0 <= i < out.size:
                return False
            canon = strategy.canon_offset_ref(
                type(out.dst)(out.dst.obj, out.dst.offset + i)
            )
            return canon == src_ref
        return any(d == src_ref and s == flow_src for d, s in out)

    if tracer.ctx_labels[ctx].startswith("assumption-1"):
        # Arithmetic smear: dst must be an arith ref of the premise's
        # pointee (or the Unknown pseudo-object in pessimistic mode).
        if not premises:
            return False
        pointee = facts.ref_of(premises[0][1])
        if dst_ref.obj.name == "<unknown>":
            return True
        return dst_ref in strategy.arith_refs(pointee)

    # Rule 0 without a resolve record: copy-edge plumbing from library
    # summaries or vararg binding.  The flow premise must name the same
    # target.
    if premises:
        return premises[0][1] == did
    # Direct rule-0 seeds (summary-installed facts): only the context
    # label vouches for them.
    return True
