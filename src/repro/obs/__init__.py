"""Observability: derivation provenance, explain trees, and metrics.

This package is the *read side* of the engine's opt-in tracing layer
(``Engine(program, strategy, trace=True)``):

- :mod:`repro.obs.provenance` — the :class:`Tracer` arena the engine
  records into, plus :func:`replays` (re-derive a recorded fact from its
  recorded inputs — the property the tests gate on);
- :mod:`repro.obs.explain` — minimal derivation trees and the
  ``python -m repro explain`` CLI (``--dot`` for Graphviz export);
- :mod:`repro.obs.metrics` — :func:`metrics` (one flat dict per run:
  EngineStats incl. per-rule firing counters, strategy memo hit rates,
  fact-base sizes, tracer summary) and a JSON-lines emitter used by
  ``python -m repro.bench --metrics-jsonl``.

Nothing here is imported by the untraced hot path; ``repro.obs`` is
pulled in lazily when tracing, explaining, or metrics are requested.
See ``docs/observability.md`` for the full model.
"""

from .explain import DerivationNode, build_tree, render_tree, to_dot
from .metrics import JsonlEmitter, metrics, write_jsonl
from .provenance import RULE_LABELS, CallRecord, FactKey, Tracer, replays

__all__ = [
    "CallRecord",
    "DerivationNode",
    "FactKey",
    "JsonlEmitter",
    "RULE_LABELS",
    "Tracer",
    "build_tree",
    "metrics",
    "render_tree",
    "replays",
    "to_dot",
    "write_jsonl",
]
