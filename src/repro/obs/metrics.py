"""Flat metrics for one analysis run, and a JSON-lines emitter.

:func:`metrics` turns a :class:`~repro.core.engine.Result` into one
JSON-serializable dict: the full :class:`~repro.core.engine.EngineStats`
record (including the per-rule firing counters), the derived Figure-3
percentages, fact-base size measures, the strategy's memo hit/miss
counters, and — for traced runs — the tracer's arena summary.  See
``docs/observability.md`` for the field reference.

:class:`JsonlEmitter` appends such records to a ``.jsonl`` file, one
object per line — the format the bench harness's ``--metrics-jsonl``
flag uses, chosen so runs can be concatenated and streamed with
standard tools (``jq``, ``pandas.read_json(lines=True)``).
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, Union

from ..core.engine import Result

__all__ = ["metrics", "session_metrics", "JsonlEmitter", "write_jsonl"]


def metrics(result: Result) -> Dict[str, object]:
    """One flat, JSON-serializable metrics record for ``result``."""
    stats = result.stats
    facts = result.facts
    rec: Dict[str, object] = {
        "program": getattr(result.program, "name", None),
        "strategy": result.strategy.key,
        "backend": stats.backend,
        "stats": stats.as_dict(),
        "derived": {
            "lookup_struct_pct": stats.lookup_struct_pct,
            "lookup_mismatch_pct": stats.lookup_mismatch_pct,
            "resolve_struct_pct": stats.resolve_struct_pct,
            "resolve_mismatch_pct": stats.resolve_mismatch_pct,
        },
        "facts": facts.edge_count(),
        "memo": result.strategy.memo_counters(),
    }
    num_refs = getattr(facts, "num_refs", None)
    if num_refs is not None:
        rec["refs"] = num_refs()
    diags = getattr(result.program, "diagnostics", None)
    if diags:
        by_kind: Dict[str, int] = {}
        by_severity: Dict[str, int] = {}
        for d in diags:
            by_kind[d.kind] = by_kind.get(d.kind, 0) + 1
            by_severity[d.severity.name] = by_severity.get(d.severity.name, 0) + 1
        rec["diagnostics"] = {
            "total": len(diags),
            "by_kind": by_kind,
            "by_severity": by_severity,
        }
    tracer = result.tracer
    if tracer is not None:
        rec["trace"] = tracer.summary()
    return rec


def session_metrics(session) -> Dict[str, object]:
    """One record for a whole :class:`~repro.session.AnalysisSession`.

    The service's ``GET /metrics`` building block: the session document
    (:meth:`~repro.session.AnalysisSession.describe`) plus one
    :func:`metrics` record per cached result, so a scrape sees every
    solved strategy of every live session without forcing new solves.
    """
    rec = session.describe()
    rec["results"] = [metrics(r) for r in session.cached_results()]
    return rec


class JsonlEmitter:
    """Append JSON records to a file (or stream), one per line."""

    def __init__(self, dest: Union[str, IO[str]]) -> None:
        if isinstance(dest, str):
            self._fh: IO[str] = open(dest, "a")
            self._owned = True
        else:
            self._fh = dest
            self._owned = False

    def emit(self, record: Dict[str, object]) -> None:
        json.dump(record, self._fh, sort_keys=True, default=str)
        self._fh.write("\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owned:
            self._fh.close()

    def __enter__(self) -> "JsonlEmitter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_jsonl(dest: Union[str, IO[str]],
                records: Iterable[Dict[str, object]]) -> int:
    """Write ``records`` to ``dest`` as JSON lines; returns the count."""
    n = 0
    with JsonlEmitter(dest) as em:
        for rec in records:
            em.emit(rec)
            n += 1
    return n
