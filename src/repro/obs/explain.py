"""Minimal derivation trees over a traced run, and the ``explain`` CLI.

``python -m repro explain <program> <instance> "p -> x.f"`` re-runs the
analysis with ``Engine(trace=True)`` and prints *why* the queried fact
holds: the Figure-2 rule that first derived it, the statement the rule
was installed for, the strategy call it made (rendered by the strategy's
own :meth:`~repro.core.strategy.Strategy.describe_call`, so each of the
four instances explains its reasoning in its own §4.3.x terms), and the
premise facts — recursively, down to the rule-1 axioms.

The tree is *minimal* by construction: the tracer keeps only the first
derivation of every fact (see :class:`repro.obs.provenance.Tracer`), and
premises are always recorded before conclusions, so the premise graph is
acyclic and each fact is expanded at most once per tree (later
occurrences render as a ``(shown above)`` back-reference).

``--dot`` emits the same graph in Graphviz DOT format instead.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.strategy import Strategy
from ..ir.refs import Ref
from ..ir.stmts import Stmt
from .provenance import CallRecord, FactKey, Tracer

__all__ = ["DerivationNode", "build_tree", "render_tree", "to_dot", "main"]


@dataclass
class DerivationNode:
    """One fact in a derivation tree (conclusion + how it was derived)."""

    key: FactKey
    src: Ref
    dst: Ref
    rule: int
    label: str
    stmt: Optional[Stmt]
    call: Optional[CallRecord]
    premises: List["DerivationNode"] = field(default_factory=list)
    #: The fact was already expanded earlier in this tree.
    repeated: bool = False
    #: No derivation on record (a premise outside the trace; defensive).
    missing: bool = False

    @property
    def fact_text(self) -> str:
        return f"pointsTo({self.src!r}, {self.dst!r})"


def build_tree(tracer: Tracer, facts, key: FactKey) -> Optional[DerivationNode]:
    """The minimal derivation tree of ``key``; None if never derived.

    Iterative DFS (derivation chains routinely exceed Python's default
    recursion limit on real programs); each distinct fact is expanded
    once, repeats become leaf back-references.
    """
    if tracer.fact_node.get(key) is None:
        return None
    seen: Set[FactKey] = set()

    def shell(k: FactKey) -> Tuple[DerivationNode, Tuple[FactKey, ...]]:
        src, dst = facts.ref_of(k[0]), facts.ref_of(k[1])
        idx = tracer.fact_node.get(k)
        if idx is None:
            node = DerivationNode(k, src, dst, -1, "no recorded derivation",
                                  None, None, missing=True)
            return node, ()
        ctx = tracer.node_ctxs[idx]
        node = DerivationNode(
            k, src, dst,
            tracer.ctx_rules[ctx], tracer.ctx_labels[ctx],
            tracer.ctx_stmts[ctx], tracer.ctx_calls[ctx],
        )
        if k in seen:
            node.repeated = True
            return node, ()
        seen.add(k)
        return node, tracer.node_premises[idx]

    root, root_prems = shell(key)
    stack: List[Tuple[DerivationNode, Tuple[FactKey, ...], int]] = [
        (root, root_prems, 0)
    ]
    while stack:
        node, prems, i = stack.pop()
        if i >= len(prems):
            continue
        stack.append((node, prems, i + 1))
        child, cprems = shell(prems[i])
        node.premises.append(child)
        if cprems:
            stack.append((child, cprems, 0))
    return root


def _stmt_text(stmt: Optional[Stmt]) -> str:
    if stmt is None:
        return ""
    where = getattr(stmt, "fn", None) or "<global>"
    line = getattr(stmt, "line", None)
    loc = f"{where}:{line}" if line else where
    return f"[{loc}]  {stmt!r}"


def render_tree(
    node: DerivationNode,
    strategy: Optional[Strategy] = None,
    show_calls: bool = True,
) -> str:
    """Text rendering: one fact per block, premises as tree branches."""
    lines: List[str] = []

    def emit(n: DerivationNode, prefix: str, child_prefix: str) -> None:
        mark = ""
        if n.repeated:
            mark = "   (shown above)"
        elif n.missing:
            mark = "   (outside the trace)"
        lines.append(f"{prefix}{n.fact_text}{mark}")
        if n.repeated or n.missing:
            return
        detail: List[str] = [f"by {n.label}"]
        st = _stmt_text(n.stmt)
        if st:
            detail.append(st)
        lines.append(child_prefix + "  " + "  ".join(detail))
        if show_calls and n.call is not None:
            desc = (
                strategy.describe_call(n.call)
                if strategy is not None
                else f"{n.call.kind}{n.call.args!r} -> {n.call.out!r}"
            )
            lines.append(child_prefix + "  via " + desc)
        for i, p in enumerate(n.premises):
            last = i == len(n.premises) - 1
            branch = "└─ " if last else "├─ "
            cont = "   " if last else "│  "
            emit(p, child_prefix + branch, child_prefix + cont)

    emit(node, "", "")
    return "\n".join(lines)


def to_dot(node: DerivationNode) -> str:
    """Graphviz DOT export of a derivation tree (premise → conclusion)."""
    ids: Dict[FactKey, str] = {}
    decls: List[str] = []
    edges: List[str] = []

    def nid(n: DerivationNode) -> str:
        name = ids.get(n.key)
        if name is None:
            name = ids[n.key] = f"f{len(ids)}"
            label = n.fact_text.replace('"', r"\"")
            rule = n.label.replace('"', r"\"")
            decls.append(f'  {name} [label="{label}\\n{rule}"];')
        return name

    def walk(n: DerivationNode) -> None:
        me = nid(n)
        for p in n.premises:
            edges.append(f"  {nid(p)} -> {me};")
            if not (p.repeated or p.missing):
                walk(p)

    walk(node)
    return "\n".join(
        ["digraph derivation {", "  rankdir=BT;", "  node [shape=box, fontname=monospace];"]
        + decls + edges + ["}"]
    )


# ---------------------------------------------------------------------------
# The ``python -m repro explain`` subcommand.
# ---------------------------------------------------------------------------
def _load_program(spec: str):
    """A program by file path, or by suite name (``bc``, ``twig``, …)."""
    from ..frontend import program_from_c, program_from_file

    if os.path.exists(spec):
        return program_from_file(spec)
    from ..suite.registry import by_name, load_source

    try:
        bp = by_name(spec)
    except KeyError:
        raise SystemExit(
            f"error: {spec!r} is neither a file nor a suite program name"
        )
    return program_from_c(load_source(bp), name=bp.name)


def _parse_query(text: str) -> Tuple[str, str]:
    if "->" not in text:
        raise SystemExit(
            'error: query must look like "src -> dst", e.g. "p -> x.f"'
        )
    src, dst = (part.strip() for part in text.split("->", 1))
    if not src or not dst:
        raise SystemExit('error: empty side in query (want "src -> dst")')
    return src, dst


def build_explain_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Print the minimal Figure-2 derivation tree of one "
        "points-to fact (requires a traced run; the analysis is re-run "
        "with Engine(trace=True)).",
    )
    p.add_argument("program", help="C source file or suite program name")
    p.add_argument(
        "instance",
        help="framework instance key (e.g. offsets, collapse_always)",
    )
    p.add_argument(
        "query", help='the fact to explain, as "src -> dst" '
        '(each side NAME[.FIELD...]; e.g. "p -> x.f")',
    )
    p.add_argument(
        "--abi", choices=["ilp32", "lp64"], default="ilp32",
        help="concrete layout for the offsets strategies (default: ilp32)",
    )
    p.add_argument(
        "--dot", action="store_true",
        help="emit the derivation as a Graphviz DOT graph instead of text",
    )
    p.add_argument(
        "--no-calls", action="store_true",
        help="omit the per-rule strategy-call lines from the tree",
    )
    return p


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Piping into `head` and friends closes stdout early; exit
        # quietly instead of tracebacking (devnull keeps the interpreter
        # shutdown flush from raising a second time).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    from ..core import STRATEGY_BY_KEY
    from ..ctype.layout import ILP32, LP64, Layout
    from ..session import AnalysisSession

    args = build_explain_parser().parse_args(argv)
    keys = sorted(STRATEGY_BY_KEY)
    if args.instance not in STRATEGY_BY_KEY:
        raise SystemExit(
            f"error: unknown instance {args.instance!r} (choose from {keys})"
        )
    program = _load_program(args.program)
    layout = Layout(LP64 if args.abi == "lp64" else ILP32)
    strategy = STRATEGY_BY_KEY[args.instance](layout)
    result = AnalysisSession(program).solve(strategy, trace=True)
    tracer = result.tracer
    assert isinstance(tracer, Tracer)

    src_text, dst_text = _parse_query(args.query)
    # Reuse the main CLI's name resolution (fn::local fallback included).
    from ..__main__ import _resolve_query

    src_ref = strategy.normalize(_resolve_query(program, src_text))
    dst_ref = strategy.normalize(_resolve_query(program, dst_text))
    facts = result.facts
    sid, did = facts.id_of(src_ref), facts.id_of(dst_ref)
    key = (sid, did) if sid is not None and did is not None else None
    node = build_tree(tracer, facts, key) if key is not None else None
    if node is None:
        print(
            f"fact pointsTo({src_ref!r}, {dst_ref!r}) was not derived "
            f"under {strategy.name}."
        )
        targets = sorted(map(repr, result.points_to(src_ref)))
        if targets:
            print(f"{src_ref!r} points to: {', '.join(targets)}")
        else:
            print(f"{src_ref!r} has an empty points-to set.")
        return 1

    if args.dot:
        print(to_dot(node))
        return 0
    print(f"# {program.summary()}")
    print(f"# strategy: {strategy.name}   traced facts: {len(tracer)}")
    print(render_tree(node, strategy, show_calls=not args.no_calls))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
