"""Whole-program IR container.

A :class:`Program` is what the front end produces and the analysis engine
consumes: the set of abstract objects, per-function statement lists, and
interprocedural wiring (parameter, return-value, and varargs objects for
each defined function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .objects import AbstractObject, ObjectFactory
from .stmts import Call, FieldAddr, Load, Stmt, Store

__all__ = ["FunctionInfo", "Program"]


@dataclass(eq=False)
class FunctionInfo:
    """Everything the analysis needs to know about one defined function."""

    name: str
    #: The FUNCTION abstract object (what a function pointer points to).
    obj: AbstractObject
    #: Parameter objects, in declaration order.
    params: List[AbstractObject] = field(default_factory=list)
    #: Pseudo-object receiving every ``return e;`` value (``None`` for void).
    retval: Optional[AbstractObject] = None
    #: Pseudo-object absorbing arguments past the named parameters.
    vararg: Optional[AbstractObject] = None
    #: Normalized body statements.
    stmts: List[Stmt] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"<function {self.name}: {len(self.stmts)} stmts>"


class Program:
    """The analyzed program: objects, functions, global-init statements."""

    def __init__(self, name: str = "<program>") -> None:
        self.name = name
        self.objects = ObjectFactory()
        self.functions: Dict[str, FunctionInfo] = {}
        #: Statements arising from global variable initializers.
        self.global_stmts: List[Stmt] = []
        #: Structured front-end diagnostics (shared with the producing
        #: :class:`~repro.diag.DiagnosticSink`; empty for strict runs and
        #: hand-built programs).
        self.diagnostics: List = []
        #: Set by the linker (:mod:`repro.link`) when this program was
        #: produced by merging translation units: a
        #: :class:`~repro.link.linker.LinkInfo` with the TU count and
        #: resolution counters.  ``None`` for single-TU programs.
        self.link_info = None

    # ------------------------------------------------------------------
    def add_function(self, info: FunctionInfo) -> None:
        if info.name in self.functions:
            raise ValueError(f"duplicate function {info.name!r}")
        self.functions[info.name] = info

    def function_for_object(self, obj: AbstractObject) -> Optional[FunctionInfo]:
        """The FunctionInfo whose FUNCTION object is ``obj`` (if defined here)."""
        info = self.functions.get(obj.name)
        if info is not None and info.obj is obj:
            return info
        return None

    def add_statements(
        self, stmts: List[Stmt], function: Optional[str] = None
    ) -> List[Stmt]:
        """Append normalized statements to the program; returns them as a list.

        With ``function=None`` the statements join the global-init list,
        otherwise the named function's body.  The analysis is
        flow-insensitive (no CFG), so *where* a statement lands only
        affects bookkeeping such as :meth:`deref_stmts` attribution —
        the solved fixpoint is determined by the statement set alone,
        which is what makes incremental re-solves
        (:meth:`repro.session.AnalysisSession.add_statements`) sound.
        """
        stmts = list(stmts)
        if function is None:
            self.global_stmts.extend(stmts)
        else:
            info = self.functions.get(function)
            if info is None:
                raise KeyError(f"no function {function!r} in {self.name}")
            info.stmts.extend(stmts)
        return stmts

    # ------------------------------------------------------------------
    def all_stmts(self) -> Iterator[Stmt]:
        """Every normalized statement in the program (global inits first)."""
        yield from self.global_stmts
        for info in self.functions.values():
            yield from info.stmts

    def stmt_count(self) -> int:
        """Number of normalized assignment statements (Figure 3, column 3)."""
        return sum(1 for _ in self.all_stmts())

    def deref_stmts(self) -> Iterator[Stmt]:
        """Statements that dereference a pointer written in the source.

        These are the "static instances of dereferenced pointers" over
        which Figure 4 averages points-to set sizes: loads, stores,
        address-of-field-through-pointer, and indirect calls — excluding
        dereferences invented by the normalizer (``synthetic``).
        """
        for st in self.all_stmts():
            if st.synthetic:
                continue
            if isinstance(st, (Load, Store, FieldAddr)):
                yield st
            elif isinstance(st, Call) and st.indirect:
                yield st

    def summary(self) -> str:
        """One-line description used in reports."""
        linked = (
            f" ({self.link_info.tus_linked} TUs linked)"
            if self.link_info is not None else ""
        )
        return (
            f"{self.name}: {len(self.functions)} functions, "
            f"{self.stmt_count()} normalized statements, "
            f"{len(self.objects.all_objects())} abstract objects{linked}"
        )
