"""References to (parts of) abstract memory objects.

Two reference forms appear in the system:

- :class:`FieldRef` — an object plus a (possibly empty) sequence of field
  names, the paper's ``t.β``.  Raw statement operands are always
  ``FieldRef``\\ s; the three *portable* strategies also use them as their
  normalized form.
- :class:`OffsetRef` — an object plus a byte offset, the paper's ``t.k̂``
  in the "Offsets" instance (§4.2.2), whose normalized references are
  offsets under one concrete layout.

Both are immutable and hashable, so they can live in the fact base.  Which
of the two a given analysis run uses is decided entirely by the strategy's
``normalize``; the engine never mixes the two within one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..ctype.types import ArrayType, CType, StructType
from .objects import AbstractObject

__all__ = ["FieldRef", "OffsetRef", "Ref", "ref_type"]


@dataclass(frozen=True)
class FieldRef:
    """``obj.path`` — an object and a sequence of field names (maybe empty)."""

    obj: AbstractObject
    path: Tuple[str, ...] = ()

    def extend(self, more: Tuple[str, ...]) -> "FieldRef":
        """The reference ``obj.path.more`` (paper's concatenation ``β.γ``)."""
        return FieldRef(self.obj, self.path + tuple(more))

    def __hash__(self) -> int:
        # Refs are the keys of every fact-base and worklist index, so the
        # hash is cached on first use.  Objects hash by identity, so
        # hashing id(obj) is equivalent and skips a method call.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash((id(self.obj), self.path))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        if not self.path:
            return self.obj.name
        return self.obj.name + "." + ".".join(self.path)


@dataclass(frozen=True)
class OffsetRef:
    """``obj.offset`` — an object and a byte offset into it."""

    obj: AbstractObject
    offset: int = 0

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash((id(self.obj), self.offset))
            object.__setattr__(self, "_hash", h)
            return h

    def __repr__(self) -> str:
        return f"{self.obj.name}+{self.offset}"


Ref = Union[FieldRef, OffsetRef]


def ref_type(ref: FieldRef) -> CType:
    """The declared type of the location named by a :class:`FieldRef`.

    Walks the field path from the object's declared type, entering arrays
    at their representative element.  Only meaningful for field references
    whose path actually exists in the declared type (true for all raw
    statement operands produced by the front end).
    """
    t = ref.obj.type
    for name in ref.path:
        while isinstance(t, ArrayType):
            t = t.elem
        if not isinstance(t, StructType):
            raise TypeError(f"cannot select .{name} from {t!r} in {ref!r}")
        t = t.field_named(name).type
    return t
