"""References to (parts of) abstract memory objects.

Two reference forms appear in the system:

- :class:`FieldRef` — an object plus a (possibly empty) sequence of field
  names, the paper's ``t.β``.  Raw statement operands are always
  ``FieldRef``\\ s; the three *portable* strategies also use them as their
  normalized form.
- :class:`OffsetRef` — an object plus a byte offset, the paper's ``t.k̂``
  in the "Offsets" instance (§4.2.2), whose normalized references are
  offsets under one concrete layout.

Both are immutable-by-convention and hashable, so they can live in the
fact base.  Which of the two a given analysis run uses is decided
entirely by the strategy's ``normalize``; the engine never mixes the two
within one run.

These are hand-rolled ``__slots__`` classes rather than dataclasses:
refs are the single most-allocated type in an analysis run, and slots
drop the per-instance ``__dict__`` while still leaving room for the
lazily cached hash (``@dataclass(slots=True)`` cannot host an extra
cache slot on a frozen class).  Objects hash and compare by identity, so
both the hash and ``__eq__`` use ``id(obj)``/``is``.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..ctype.types import ArrayType, CType, StructType
from .objects import AbstractObject

__all__ = ["FieldRef", "OffsetRef", "Ref", "ref_type"]


class FieldRef:
    """``obj.path`` — an object and a sequence of field names (maybe empty).

    The ``_fb``/``_id`` slot pair is an interning cache owned by
    :class:`repro.core.facts.FactBase`: the ID this instance interned to,
    valid only while ``_fb`` is that same fact base (refs canonicalized
    per strategy may outlive one engine run and meet another fact base).
    """

    __slots__ = ("obj", "path", "_hash", "_fb", "_id")

    def __init__(self, obj: AbstractObject, path: Tuple[str, ...] = ()) -> None:
        self.obj = obj
        self.path = path

    def extend(self, more: Tuple[str, ...]) -> "FieldRef":
        """The reference ``obj.path.more`` (paper's concatenation ``β.γ``)."""
        return FieldRef(self.obj, self.path + tuple(more))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not FieldRef:
            return NotImplemented
        return self.obj is other.obj and self.path == other.path

    def __hash__(self) -> int:
        # Refs are the keys of every fact-base and worklist index, so the
        # hash is cached on first use (the slot starts unset).
        try:
            return self._hash
        except AttributeError:
            h = hash((id(self.obj), self.path))
            self._hash = h
            return h

    def __repr__(self) -> str:
        if not self.path:
            return self.obj.name
        return self.obj.name + "." + ".".join(self.path)


class OffsetRef:
    """``obj.offset`` — an object and a byte offset into it."""

    __slots__ = ("obj", "offset", "_hash", "_fb", "_id")

    def __init__(self, obj: AbstractObject, offset: int = 0) -> None:
        self.obj = obj
        self.offset = offset

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not OffsetRef:
            return NotImplemented
        return self.obj is other.obj and self.offset == other.offset

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            h = hash((id(self.obj), self.offset))
            self._hash = h
            return h

    def __repr__(self) -> str:
        return f"{self.obj.name}+{self.offset}"


Ref = Union[FieldRef, OffsetRef]


def ref_type(ref: FieldRef) -> CType:
    """The declared type of the location named by a :class:`FieldRef`.

    Walks the field path from the object's declared type, entering arrays
    at their representative element.  Only meaningful for field references
    whose path actually exists in the declared type (true for all raw
    statement operands produced by the front end).
    """
    t = ref.obj.type
    for name in ref.path:
        while isinstance(t, ArrayType):
            t = t.elem
        if not isinstance(t, StructType):
            raise TypeError(f"cannot select .{name} from {t!r} in {ref!r}")
        t = t.field_named(name).type
    return t
