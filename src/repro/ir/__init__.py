"""Intermediate representation: objects, references, normalized statements."""

from .objects import AbstractObject, ObjectFactory, ObjKind
from .program import FunctionInfo, Program
from .refs import FieldRef, OffsetRef, Ref, ref_type
from .stmts import (
    AddrOf,
    Call,
    Copy,
    FieldAddr,
    Load,
    PtrArith,
    Stmt,
    Store,
    declared_pointee,
)

__all__ = [
    "AbstractObject",
    "AddrOf",
    "Call",
    "Copy",
    "FieldAddr",
    "FieldRef",
    "FunctionInfo",
    "Load",
    "ObjKind",
    "ObjectFactory",
    "OffsetRef",
    "Program",
    "PtrArith",
    "Ref",
    "Stmt",
    "Store",
    "declared_pointee",
    "ref_type",
]
