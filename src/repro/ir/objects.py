"""Abstract memory objects.

The analysis computes points-to facts between *abstract memory objects* —
the static names that stand for sets of run-time memory blocks:

- named variables (globals and, context-insensitively, one object per
  local/parameter per function),
- allocation-site pseudo-variables for heap blocks (paper §2: the statement
  ``p = malloc(...)`` at site *i* is treated as ``p = &malloc_i``),
- functions (so function pointers can be analyzed),
- string literals,
- compiler temporaries introduced by normalization (paper §2),
- the per-function return-value and varargs pseudo-objects used by the
  context-insensitive interprocedural layer.

Objects have identity semantics; the :class:`ObjectFactory` hands out
uniquely named instances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ..ctype.types import CType

__all__ = ["ObjKind", "AbstractObject", "ObjectFactory"]


class ObjKind(enum.Enum):
    """What sort of memory an abstract object stands for."""

    GLOBAL = "global"
    LOCAL = "local"
    PARAM = "param"
    HEAP = "heap"
    FUNCTION = "function"
    STRING = "string"
    TEMP = "temp"
    RETVAL = "retval"
    VARARG = "vararg"


@dataclass(eq=False, slots=True)
class AbstractObject:
    """One abstract memory object.

    ``name`` is unique within a program and stable across runs, so results
    are reproducible and printable.  ``type`` is the object's *declared*
    type — the starting point for all normalize/lookup/resolve reasoning;
    casting is exactly the act of accessing the object through some other
    type.  ``owner`` is the enclosing function's name for locals, params,
    temps, retvals and varargs (``None`` for globals/heap/functions).
    """

    name: str
    type: CType
    kind: ObjKind
    owner: Optional[str] = None
    #: Source line of the declaration / allocation site, for reporting.
    line: Optional[int] = None

    # ``eq=False`` keeps ``object.__hash__`` — identity hashing through
    # the C slot, with no interpreted ``__hash__`` call per dict/set probe
    # (objects key the window and normalization tables on hot paths).

    def __repr__(self) -> str:
        return self.name

    @property
    def is_heap(self) -> bool:
        return self.kind is ObjKind.HEAP

    @property
    def is_function(self) -> bool:
        return self.kind is ObjKind.FUNCTION

    @property
    def is_temp(self) -> bool:
        return self.kind is ObjKind.TEMP


class ObjectFactory:
    """Creates uniquely named :class:`AbstractObject` instances.

    The factory namespaces locals by function (``f::x``), numbers heap
    sites (``malloc@12#3``), temporaries (``f::%t7``) and string literals
    (``@str4``) so that every object in a program has a distinct,
    meaningful name.
    """

    def __init__(self) -> None:
        self._by_name: Dict[str, AbstractObject] = {}
        self._temp_count = 0
        self._heap_count = 0
        self._string_count = 0

    # ------------------------------------------------------------------
    def _register(self, obj: AbstractObject) -> AbstractObject:
        if obj.name in self._by_name:
            raise ValueError(f"duplicate object name {obj.name!r}")
        self._by_name[obj.name] = obj
        return obj

    def lookup(self, name: str) -> Optional[AbstractObject]:
        """Find a previously created object by its unique name."""
        return self._by_name.get(name)

    def all_objects(self):
        """All objects created so far, in creation order."""
        return list(self._by_name.values())

    # ------------------------------------------------------------------
    def global_var(self, name: str, type: CType, line: Optional[int] = None) -> AbstractObject:
        return self._register(AbstractObject(name, type, ObjKind.GLOBAL, line=line))

    def local_var(
        self, func: str, name: str, type: CType, line: Optional[int] = None
    ) -> AbstractObject:
        return self._register(
            AbstractObject(f"{func}::{name}", type, ObjKind.LOCAL, owner=func, line=line)
        )

    def param(
        self, func: str, name: str, type: CType, line: Optional[int] = None
    ) -> AbstractObject:
        return self._register(
            AbstractObject(f"{func}::{name}", type, ObjKind.PARAM, owner=func, line=line)
        )

    def heap(self, site: str, type: CType, line: Optional[int] = None) -> AbstractObject:
        self._heap_count += 1
        return self._register(
            AbstractObject(f"{site}#{self._heap_count}", type, ObjKind.HEAP, line=line)
        )

    def function(self, name: str, type: CType, line: Optional[int] = None) -> AbstractObject:
        return self._register(AbstractObject(name, type, ObjKind.FUNCTION, line=line))

    def string_literal(self, type: CType) -> AbstractObject:
        self._string_count += 1
        return self._register(
            AbstractObject(f"@str{self._string_count}", type, ObjKind.STRING)
        )

    def temp(self, func: str, type: CType, line: Optional[int] = None) -> AbstractObject:
        self._temp_count += 1
        return self._register(
            AbstractObject(
                f"{func}::%t{self._temp_count}", type, ObjKind.TEMP, owner=func, line=line
            )
        )

    def havoc(self, func: str, type: CType) -> AbstractObject:
        """The per-function unknown object lenient-mode fallbacks read from.

        One per function (``f::$havoc``); its points-to set stays empty,
        so assignments from it are sound no-ops under the may
        interpretation.  Idempotent: repeated calls return the same
        object.
        """
        name = f"{func}::$havoc"
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        return self._register(AbstractObject(name, type, ObjKind.TEMP, owner=func))

    def retval(self, func: str, type: CType) -> AbstractObject:
        return self._register(
            AbstractObject(f"{func}::$ret", type, ObjKind.RETVAL, owner=func)
        )

    def vararg(self, func: str, type: CType) -> AbstractObject:
        return self._register(
            AbstractObject(f"{func}::$varargs", type, ObjKind.VARARG, owner=func)
        )
