"""The normalized statement forms.

The paper (§2) normalizes all pointer-relevant code into five assignment
forms; the front end (:mod:`repro.frontend.normalizer`) performs that
normalization, introducing typed temporaries:

====  =======================  ===========================
form  paper syntax             IR class
====  =======================  ===========================
1     ``s = (τ) &t.β``         :class:`AddrOf`
2     ``s = (τ) &((*p).α)``    :class:`FieldAddr`
3     ``s = (τ) t.β``          :class:`Copy`
4     ``s = (τ) *q``           :class:`Load`
5     ``*p = (τ_p) t``         :class:`Store`
====  =======================  ===========================

Casts never appear explicitly in the IR: a cast is represented by the
*declared type of the destination temporary* differing from the source's
type — exactly the information ``normalize``/``lookup``/``resolve``
consume.  Two extra forms carry information the paper handles in prose:

- :class:`PtrArith` — ``s = q ⊕ r``; under Assumption 1 the result may
  point to any sub-field of the outermost object containing a pointee of an
  operand (§4.2.1, discussion after Complication 3);
- :class:`Call` — direct or through a function pointer; expanded into
  parameter/return copies by the context-insensitive interprocedural layer.

All operands are *top-level* objects except the right-hand sides of
``AddrOf``/``Copy``, which may carry a field path (the paper's ``t.β``) —
matching the paper's grammar, where the left-hand side of forms 1–4 is
always a top-level name and field-writes are lowered through form 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..ctype.types import CType, PointerType, void
from .objects import AbstractObject
from .refs import FieldRef

__all__ = [
    "Stmt",
    "AddrOf",
    "FieldAddr",
    "Copy",
    "Load",
    "Store",
    "PtrArith",
    "Call",
    "declared_pointee",
]


def declared_pointee(ptr_obj: AbstractObject) -> CType:
    """The type ``ptr_obj`` is declared to point to (paper's ``τ_p``).

    Falls back to ``void`` when the object's declared type is not a
    pointer (possible only for ill-typed inputs); ``void`` makes every
    downstream lookup/resolve maximally conservative.
    """
    t = ptr_obj.type
    if isinstance(t, PointerType):
        return t.pointee
    return void


@dataclass(eq=False, slots=True)
class Stmt:
    """Base class: provenance shared by every statement form."""

    #: Name of the containing function, or ``None`` for global initializers.
    fn: Optional[str] = field(default=None, kw_only=True)
    #: Source line the statement was derived from.
    line: Optional[int] = field(default=None, kw_only=True)
    #: True when the front end invented this statement while lowering (e.g.
    #: the ``*tmp = e`` store produced for a source-level field write).
    #: Synthetic dereferences are excluded from the "dereferenced pointer"
    #: statistics of Figure 4.
    synthetic: bool = field(default=False, kw_only=True)

    def __hash__(self) -> int:
        return id(self)


@dataclass(eq=False, slots=True)
class AddrOf(Stmt):
    """Form 1: ``s = (τ) &t.β`` — also used for ``p = malloc_i`` (heap)."""

    lhs: AbstractObject = None  # type: ignore[assignment]
    target: FieldRef = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"{self.lhs} = &{self.target!r}"


@dataclass(eq=False, slots=True)
class FieldAddr(Stmt):
    """Form 2: ``s = (τ) &((*p).α)``.

    ``path`` is the field selector ``α``; it is non-empty (an empty ``α``
    would make this a plain ``Copy`` of ``p``).
    """

    lhs: AbstractObject = None  # type: ignore[assignment]
    ptr: AbstractObject = None  # type: ignore[assignment]
    path: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        return f"{self.lhs} = &((*{self.ptr}).{'.'.join(self.path)})"


@dataclass(eq=False, slots=True)
class Copy(Stmt):
    """Form 3: ``s = (τ) t.β`` — block copy of ``sizeof(typeof(s))`` bytes."""

    lhs: AbstractObject = None  # type: ignore[assignment]
    rhs: FieldRef = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"{self.lhs} = {self.rhs!r}"


@dataclass(eq=False, slots=True)
class Load(Stmt):
    """Form 4: ``s = (τ) *q``."""

    lhs: AbstractObject = None  # type: ignore[assignment]
    ptr: AbstractObject = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"{self.lhs} = *{self.ptr}"


@dataclass(eq=False, slots=True)
class Store(Stmt):
    """Form 5: ``*p = (τ_p) t`` — copies ``sizeof(τ_p)`` bytes (Complication 4)."""

    ptr: AbstractObject = None  # type: ignore[assignment]
    rhs: AbstractObject = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"*{self.ptr} = {self.rhs}"


@dataclass(eq=False, slots=True)
class PtrArith(Stmt):
    """``s = q ⊕ r ...`` — arithmetic whose result may carry an address.

    Under Assumption 1, if an operand points into object ``t``, the result
    may point to any sub-field of the outermost object ``t`` (but not to
    unrelated objects).  All arithmetic, bit operations, and conditional
    merges over possibly-pointer values are funnelled through this form.
    """

    lhs: AbstractObject = None  # type: ignore[assignment]
    operands: Tuple[AbstractObject, ...] = ()

    def __repr__(self) -> str:
        return f"{self.lhs} = arith({', '.join(o.name for o in self.operands)})"


@dataclass(eq=False, slots=True)
class Call(Stmt):
    """A function call, direct (``callee`` is a FUNCTION object) or
    indirect (``callee`` is a pointer-valued object whose points-to set
    supplies the possible targets).

    The interprocedural layer expands each (call, target) pair into
    parameter-copy and return-copy assignments of form 3.
    """

    lhs: Optional[AbstractObject] = None
    callee: AbstractObject = None  # type: ignore[assignment]
    indirect: bool = False
    args: Tuple[AbstractObject, ...] = ()

    def __repr__(self) -> str:
        head = f"{self.lhs} = " if self.lhs is not None else ""
        star = "*" if self.indirect else ""
        return f"{head}{star}{self.callee}({', '.join(a.name for a in self.args)})"
