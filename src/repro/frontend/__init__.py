"""C front end: parsing, type building, and normalization to the IR.

The three-stage pipeline::

    source text ──parse_c──▶ pycparser AST ──Normalizer──▶ Program

Convenience entry points:

- :func:`program_from_c` — source text to normalized :class:`Program`;
- :func:`analyze_c` — source text straight to an analysis
  :class:`~repro.core.engine.Result` under a given strategy.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..core.engine import Result, analyze
from ..core.strategy import Strategy
from ..diag import Diagnostic, DiagnosticSink, FrontendError, Severity, SourceLoc
from ..ir.program import Program
from .normalizer import ALLOC_FUNCTIONS, NormalizeError, Normalizer
from .parse import PRELUDE, ParseError, PreprocessorError, parse_c, preprocess
from .typebuilder import TypeBuildError, TypeBuilder

__all__ = [
    "ALLOC_FUNCTIONS",
    "Diagnostic",
    "DiagnosticSink",
    "FrontendError",
    "NormalizeError",
    "Normalizer",
    "PRELUDE",
    "ParseError",
    "PreprocessorError",
    "Severity",
    "SourceLoc",
    "TypeBuildError",
    "TypeBuilder",
    "analyze_c",
    "analyze_file",
    "parse_c",
    "preprocess",
    "program_from_c",
    "program_from_file",
]


def program_from_c(
    source: str,
    name: str = "<source>",
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Parse and normalize C source text into a :class:`Program`.

    With ``strict=False`` no input can raise: unsupported constructs are
    recorded on ``diagnostics`` (also attached as ``program.diagnostics``)
    and replaced by sound conservative approximations; even an unparsable
    file yields an (empty) program carrying a FATAL diagnostic.
    """
    sink = diagnostics if diagnostics is not None else DiagnosticSink()
    ast = parse_c(source, filename=name, strict=strict, diagnostics=sink)
    return Normalizer(strict=strict, diagnostics=sink, filename=name).run(
        ast, name=name
    )


def program_from_file(
    path: Union[str, Path],
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Parse and normalize a C file."""
    p = Path(path)
    return program_from_c(
        p.read_text(), name=p.name, strict=strict, diagnostics=diagnostics
    )


def analyze_c(
    source: str,
    strategy: Strategy,
    name: str = "<source>",
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
    **kwargs,
) -> Result:
    """Analyze C source text under ``strategy``; returns the Result."""
    return analyze(
        program_from_c(source, name, strict=strict, diagnostics=diagnostics),
        strategy,
        **kwargs,
    )


def analyze_file(
    path: Union[str, Path],
    strategy: Strategy,
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
    **kwargs,
) -> Result:
    """Analyze a C file under ``strategy``."""
    return analyze(
        program_from_file(path, strict=strict, diagnostics=diagnostics),
        strategy,
        **kwargs,
    )
