"""C front end: parsing, type building, and normalization to the IR.

The three-stage pipeline::

    source text ──parse_c──▶ pycparser AST ──Normalizer──▶ Program

Convenience entry points:

- :func:`program_from_c` — source text to normalized :class:`Program`;
- :func:`program_from_files` / :func:`program_from_sources` — several
  translation units linked (:mod:`repro.link`) into one program;
- :func:`analyze_c` — source text straight to an analysis
  :class:`~repro.core.engine.Result` under a given strategy.

:func:`program_from_file` and :func:`analyze_file` also accept a list
or tuple of paths, delegating to the linker — passing several files is
a first-class operation, not an error.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from ..core.engine import Result, analyze
from ..core.strategy import Strategy
from ..diag import Diagnostic, DiagnosticSink, FrontendError, Severity, SourceLoc
from ..ir.program import Program
from .normalizer import ALLOC_FUNCTIONS, NormalizeError, Normalizer
from .parse import PRELUDE, ParseError, PreprocessorError, parse_c, preprocess
from .typebuilder import TypeBuildError, TypeBuilder

__all__ = [
    "ALLOC_FUNCTIONS",
    "Diagnostic",
    "DiagnosticSink",
    "FrontendError",
    "NormalizeError",
    "Normalizer",
    "PRELUDE",
    "ParseError",
    "PreprocessorError",
    "Severity",
    "SourceLoc",
    "TypeBuildError",
    "TypeBuilder",
    "analyze_c",
    "analyze_file",
    "parse_c",
    "preprocess",
    "program_from_c",
    "program_from_file",
    "program_from_files",
    "program_from_sources",
]


def program_from_c(
    source: str,
    name: str = "<source>",
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Parse and normalize C source text into a :class:`Program`.

    With ``strict=False`` no input can raise: unsupported constructs are
    recorded on ``diagnostics`` (also attached as ``program.diagnostics``)
    and replaced by sound conservative approximations; even an unparsable
    file yields an (empty) program carrying a FATAL diagnostic.
    """
    sink = diagnostics if diagnostics is not None else DiagnosticSink()
    ast = parse_c(source, filename=name, strict=strict, diagnostics=sink)
    return Normalizer(strict=strict, diagnostics=sink, filename=name).run(
        ast, name=name
    )


def program_from_file(
    path: Union[str, Path, Sequence[Union[str, Path]]],
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Parse and normalize a C file.

    A list or tuple of paths links the files as separate translation
    units (:func:`program_from_files`) instead of raising.
    """
    if isinstance(path, (list, tuple)):
        return program_from_files(path, strict=strict, diagnostics=diagnostics)
    p = Path(path)
    return program_from_c(
        p.read_text(), name=p.name, strict=strict, diagnostics=diagnostics
    )


def program_from_files(
    paths: Sequence[Union[str, Path]],
    name: Optional[str] = None,
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Parse each file as its own translation unit and link them.

    A single path behaves exactly like :func:`program_from_file` (no
    link step, ``program.link_info`` stays ``None``); two or more are
    merged by :func:`repro.link.link_files` — extern resolution,
    ``static``-scope renaming, duplicate-definition diagnostics — into
    one program whose analysis is byte-identical to analyzing the
    concatenated sources.
    """
    paths = list(paths)
    if not paths:
        raise ValueError("program_from_files: no input files")
    if len(paths) == 1:
        return program_from_file(paths[0], strict=strict, diagnostics=diagnostics)
    from ..link import link_files

    return link_files(paths, name, strict=strict, diagnostics=diagnostics)


def program_from_sources(
    sources: Sequence[tuple],
    name: str = "<linked>",
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> Program:
    """Link ``[(tu_name, source_text), ...]`` into one program.

    The in-memory counterpart of :func:`program_from_files`; a single
    pair degenerates to :func:`program_from_c`.
    """
    sources = list(sources)
    if not sources:
        raise ValueError("program_from_sources: no input sources")
    if len(sources) == 1:
        tu_name, text = sources[0]
        return program_from_c(
            text, name=tu_name, strict=strict, diagnostics=diagnostics
        )
    from ..link import link_sources

    return link_sources(sources, name, strict=strict, diagnostics=diagnostics)


def analyze_c(
    source: str,
    strategy: Strategy,
    name: str = "<source>",
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
    **kwargs,
) -> Result:
    """Analyze C source text under ``strategy``; returns the Result."""
    return analyze(
        program_from_c(source, name, strict=strict, diagnostics=diagnostics),
        strategy,
        **kwargs,
    )


def analyze_file(
    path: Union[str, Path],
    strategy: Strategy,
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
    **kwargs,
) -> Result:
    """Analyze a C file under ``strategy``."""
    return analyze(
        program_from_file(path, strict=strict, diagnostics=diagnostics),
        strategy,
        **kwargs,
    )
