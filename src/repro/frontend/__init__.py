"""C front end: parsing, type building, and normalization to the IR.

The three-stage pipeline::

    source text ──parse_c──▶ pycparser AST ──Normalizer──▶ Program

Convenience entry points:

- :func:`program_from_c` — source text to normalized :class:`Program`;
- :func:`analyze_c` — source text straight to an analysis
  :class:`~repro.core.engine.Result` under a given strategy.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..core.engine import Result, analyze
from ..core.strategy import Strategy
from ..ir.program import Program
from .normalizer import ALLOC_FUNCTIONS, NormalizeError, Normalizer
from .parse import PRELUDE, PreprocessorError, parse_c, preprocess
from .typebuilder import TypeBuildError, TypeBuilder

__all__ = [
    "ALLOC_FUNCTIONS",
    "NormalizeError",
    "Normalizer",
    "PRELUDE",
    "PreprocessorError",
    "TypeBuildError",
    "TypeBuilder",
    "analyze_c",
    "analyze_file",
    "parse_c",
    "preprocess",
    "program_from_c",
    "program_from_file",
]


def program_from_c(source: str, name: str = "<source>") -> Program:
    """Parse and normalize C source text into a :class:`Program`."""
    ast = parse_c(source, filename=name)
    return Normalizer().run(ast, name=name)


def program_from_file(path: Union[str, Path]) -> Program:
    """Parse and normalize a C file."""
    p = Path(path)
    return program_from_c(p.read_text(), name=p.name)


def analyze_c(source: str, strategy: Strategy, name: str = "<source>", **kwargs) -> Result:
    """Analyze C source text under ``strategy``; returns the Result."""
    return analyze(program_from_c(source, name), strategy, **kwargs)


def analyze_file(path: Union[str, Path], strategy: Strategy, **kwargs) -> Result:
    """Analyze a C file under ``strategy``."""
    return analyze(program_from_file(path), strategy, **kwargs)
