"""Lowering C to the paper's five normalized assignment forms.

The paper assumes (§2) that "assignment statements have been normalized
via the introduction of temporary variables" into five forms (address-of,
address-of-field-through-pointer, copy, load, store).  This module
performs that normalization on a pycparser AST.

Because the analysis is flow-insensitive, control flow is irrelevant: the
normalizer simply walks every statement and expression, emitting normalized
assignments.  The essential invariants it maintains:

- every operand of an emitted statement is a *top-level* object (a
  variable or a typed temporary), except the right-hand sides of forms 1
  and 3 which may carry a field path (``t.β``);
- a source-level write to a field (``s.a = e`` / ``p->a = e``) is lowered
  through form 5 (``tmp = &s.a; *tmp = e``), as the paper's grammar
  requires;
- every temporary carries the *static C type* of the expression it holds —
  casts are represented purely by type changes between temporaries, which
  is the information ``normalize``/``lookup``/``resolve`` consume;
- heap allocation is rewritten at this stage: ``p = malloc(...)`` becomes
  ``p = &malloc_i`` for a fresh allocation-site pseudo-variable (§2),
  typed from the cast / destination / ``sizeof`` context;
- arrays are collapsed to a single representative element: ``a[i]``
  accesses the same location as ``a[0]``; indexing through a *pointer*
  is pointer arithmetic and is smeared per Assumption 1;
- statements that dereference a pointer written in the source are marked
  non-``synthetic`` so the Figure 4 client can find the program's deref
  sites; dereferences the normalizer invents are marked ``synthetic``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from pycparser import c_ast

from ..ctype.compat import compatible
from ..ctype.types import (
    ArrayType,
    CType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    VoidType,
    array_of,
    char,
    double_t,
    int_t,
    ptr,
    ulong,
    void,
)
from ..diag import DiagnosticSink, FrontendError, Severity, loc_of_node
from ..ir.objects import AbstractObject
from ..ir.program import FunctionInfo, Program
from ..ir.refs import FieldRef
from ..ir.stmts import AddrOf, Call, Copy, FieldAddr, Load, PtrArith, Stmt, Store
from .typebuilder import TypeBuilder

__all__ = ["NormalizeError", "Normalizer", "ALLOC_FUNCTIONS"]


class NormalizeError(FrontendError):
    """Raised for C constructs outside the supported subset."""

    phase = "normalize"
    default_kind = "unsupported-construct"


#: Direct calls to these are rewritten into allocation-site address-of
#: assignments instead of Call statements.
ALLOC_FUNCTIONS = frozenset(
    {"malloc", "calloc", "realloc", "valloc", "alloca", "memalign",
     "xmalloc", "xcalloc", "xrealloc", "strdup", "strndup"}
)


# ---------------------------------------------------------------------------
# Values and lvalues used during lowering.
# ---------------------------------------------------------------------------


@dataclass
class Value:
    """The result of evaluating an expression.

    ``obj`` is the top-level object holding the value, or ``None`` for
    *pure* values (integer/float constants and other values that cannot
    carry an address under Assumption 1).
    """

    obj: Optional[AbstractObject]
    type: CType


@dataclass
class VarPath:
    """Lvalue rooted directly at an object: ``obj.path``."""

    obj: AbstractObject
    path: Tuple[str, ...]
    type: CType


@dataclass
class DerefPath:
    """Lvalue reached through a pointer: ``(*ptr).path``."""

    ptr: AbstractObject
    path: Tuple[str, ...]
    type: CType


LValue = Union[VarPath, DerefPath]


def _skip_arrays(t: CType) -> CType:
    while isinstance(t, ArrayType):
        t = t.elem
    return t


class Normalizer:
    """One-shot translator: pycparser ``FileAST`` → :class:`Program`.

    In strict mode (the default) the first unsupported construct raises a
    :class:`NormalizeError` carrying structured source coordinates.  With
    ``strict=False`` each unsupported construct is recorded on the
    diagnostic sink and replaced by a *sound conservative approximation*
    instead, so the rest of the translation unit is still analyzed:

    - an expression that cannot be lowered evaluates to the enclosing
      function's *havoc object* (an untyped unknown; assignments from it
      are well-formed no-ops for a may-analysis);
    - a statement, declaration, or function whose lowering fails beyond
      expression granularity is skipped (dropping assignments only ever
      removes may-facts, which keeps every *reported* fact derivable —
      see ``docs/robustness.md`` for the full argument).
    """

    def __init__(
        self,
        types: Optional[TypeBuilder] = None,
        *,
        strict: bool = True,
        diagnostics: Optional[DiagnosticSink] = None,
        filename: Optional[str] = None,
    ) -> None:
        self.strict = strict
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticSink()
        self.filename = filename
        self.types = types or TypeBuilder(
            strict=strict, diagnostics=self.diagnostics, filename=filename
        )
        self.program = Program()
        # Variable scopes, innermost last.  The first entry is file scope.
        self._scopes: List[Dict[str, AbstractObject]] = [{}]
        # name → (object, FunctionType) for every declared function.
        self._functions: Dict[str, Tuple[AbstractObject, FunctionType]] = {}
        self._current_fn: Optional[FunctionInfo] = None
        self._local_counter: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Structured-error and lenient-recovery plumbing
    # ------------------------------------------------------------------
    def _err(self, kind: str, message: str, node: Optional[c_ast.Node] = None) -> NormalizeError:
        """A :class:`NormalizeError` carrying ``node``'s coordinates."""
        return NormalizeError(
            message, kind=kind, loc=loc_of_node(node, self.filename)
        )

    def _skip(self, exc: Exception, node: Optional[c_ast.Node], what: str) -> None:
        """Record why ``node`` was dropped (lenient mode only)."""
        if isinstance(exc, FrontendError):
            diag = exc.diagnostic
            if not diag.loc.known and node is not None:
                self.diagnostics.report(
                    diag.kind, f"{diag.message}; {what} skipped",
                    loc=loc_of_node(node, self.filename), phase=diag.phase,
                )
            else:
                self.diagnostics.report(
                    diag.kind, f"{diag.message}; {what} skipped",
                    loc=diag.loc, phase=diag.phase,
                )
        else:
            # An unexpected crash: still recovered, but flagged loudly so
            # the fuzz harness surfaces it as a bug to fix.
            self.diagnostics.report(
                "internal-error",
                f"{type(exc).__name__}: {exc}; {what} skipped",
                loc=loc_of_node(node, self.filename),
                severity=Severity.ERROR,
                phase="normalize",
            )

    def _havoc(self, t: Optional[CType] = None) -> AbstractObject:
        """The per-function unknown object lenient fallbacks evaluate to.

        Its points-to set is empty and nothing ever takes its address, so
        ``x = havoc`` statements are well-formed no-ops under the may
        interpretation — the diagnostic records the precision loss.
        """
        fn = self._fn_name or "<global>"
        obj = self.program.objects.lookup(f"{fn}::$havoc")
        if obj is None:
            obj = self.program.objects.havoc(fn, ptr(void))
        return obj

    # ==================================================================
    # Entry point
    # ==================================================================
    def run(self, ast: c_ast.FileAST, name: str = "<program>") -> Program:
        self.program.name = name
        if self.filename is None:
            self.filename = name
            if self.types.filename is None:
                self.types.filename = name
        self.program.diagnostics = self.diagnostics.records
        # Pass 1: register every file-scope name so that initializers and
        # bodies may reference declarations that appear later.
        pending_inits: List[Tuple[AbstractObject, CType, c_ast.Node]] = []
        funcdefs: List[c_ast.FuncDef] = []
        for ext in ast.ext:
            try:
                self._lower_ext(ext, pending_inits, funcdefs)
            except Exception as exc:
                if self.strict:
                    raise
                self._skip(exc, ext, "top-level declaration")
        # Pass 2: global initializers, then function bodies.
        for obj, t, init in pending_inits:
            self._with_stmts(self.program.global_stmts, None)
            try:
                self._apply_initializer(obj, (), t, init)
            except Exception as exc:
                if self.strict:
                    raise
                self._skip(exc, init, f"initializer of {obj.name!r}")
        for fd in funcdefs:
            try:
                self._lower_funcdef(fd)
            except Exception as exc:
                if self.strict:
                    raise
                self._skip(exc, fd, f"function {fd.decl.name!r}")
        return self.program

    def _lower_ext(
        self,
        ext: c_ast.Node,
        pending_inits: List[Tuple[AbstractObject, CType, c_ast.Node]],
        funcdefs: List[c_ast.FuncDef],
    ) -> None:
        if isinstance(ext, c_ast.Typedef):
            self.types.add_typedef(ext.name, ext.type)
        elif isinstance(ext, c_ast.FuncDef):
            self._register_function_decl(ext.decl)
            funcdefs.append(ext)
        elif isinstance(ext, c_ast.Decl):
            t = self.types.from_decl(ext)
            if isinstance(t, FunctionType):
                self._register_function_decl(ext)
            elif ext.name is not None:
                obj = self._declare_global(ext.name, t, ext)
                if ext.init is not None and obj is not None:
                    pending_inits.append((obj, t, ext.init))
            # Bare ``struct S { ... };`` declarations only introduce
            # types, which from_decl already recorded.
        elif isinstance(ext, c_ast.Pragma):
            return
        else:
            raise self._err(
                "unsupported-toplevel",
                f"unsupported top-level construct {type(ext).__name__}",
                ext,
            )

    # ==================================================================
    # Declarations
    # ==================================================================
    def _declare_global(
        self, name: str, t: CType, decl: c_ast.Decl
    ) -> Optional[AbstractObject]:
        existing = self.program.objects.lookup(name)
        if existing is not None:
            return existing  # tentative/extern re-declaration
        if name in self._functions:
            return None
        line = decl.coord.line if decl.coord else None
        obj = self.program.objects.global_var(name, t, line=line)
        self._scopes[0][name] = obj
        return obj

    def _register_function_decl(self, decl: c_ast.Decl) -> None:
        name = decl.name
        ftype = self.types.from_decl(decl)
        if not isinstance(ftype, FunctionType):
            raise self._err(
                "bad-function-decl",
                f"function declaration {name!r} has no function type",
                decl,
            )
        if name not in self._functions:
            line = decl.coord.line if decl.coord else None
            fobj = self.program.objects.function(name, ftype, line=line)
            self._functions[name] = (fobj, ftype)

    # ==================================================================
    # Function bodies
    # ==================================================================
    def _lower_funcdef(self, fd: c_ast.FuncDef) -> None:
        name = fd.decl.name
        if name in self.program.functions:
            # Two bodies for one function (e.g. the same file pasted
            # twice, or unlinked TUs concatenated).  Strict mode turns
            # this into a structured one-line diagnostic instead of the
            # ObjectFactory's bare ValueError; lenient mode keeps the
            # first definition (the linker resolves this properly —
            # see repro.link).
            raise self._err(
                "duplicate-definition",
                f"redefinition of function {name!r}", fd,
            )
        fobj, ftype = self._functions[name]
        info = FunctionInfo(name=name, obj=fobj)
        # Parameter objects, by declaration order.
        fdecl = fd.decl.type
        param_scope: Dict[str, AbstractObject] = {}
        if fdecl.args is not None:
            for p in fdecl.args.params:
                if isinstance(p, c_ast.EllipsisParam):
                    continue
                if isinstance(p, c_ast.Typename):
                    continue  # unnamed parameter
                pt = self.types.from_node(p.type)
                if isinstance(pt, VoidType):
                    continue
                if isinstance(pt, ArrayType):
                    pt = PointerType(pt.elem)
                elif isinstance(pt, FunctionType):
                    pt = PointerType(pt)
                pobj = self.program.objects.param(name, p.name, pt)
                info.params.append(pobj)
                param_scope[p.name] = pobj
        if not isinstance(ftype.ret, VoidType):
            info.retval = self.program.objects.retval(name, ftype.ret)
        if ftype.varargs:
            info.vararg = self.program.objects.vararg(name, void)
        self.program.add_function(info)
        self._current_fn = info
        self._scopes.append(param_scope)
        self._with_stmts(info.stmts, info)
        try:
            self._lower_stmt(fd.body)
        finally:
            self._scopes.pop()
            self._current_fn = None

    # ------------------------------------------------------------------
    # Emission plumbing
    # ------------------------------------------------------------------
    def _with_stmts(self, stmts: List[Stmt], fn: Optional[FunctionInfo]) -> None:
        self._out = stmts
        self._fn_name = fn.name if fn is not None else None

    def _emit(self, st: Stmt, line: Optional[int] = None) -> Stmt:
        st.fn = self._fn_name
        if line is not None and st.line is None:
            st.line = line
        self._out.append(st)
        return st

    def _temp(self, t: CType, line: Optional[int] = None) -> AbstractObject:
        owner = self._fn_name or "<global>"
        return self.program.objects.temp(owner, t, line=line)

    def _line(self, node: c_ast.Node) -> Optional[int]:
        return node.coord.line if getattr(node, "coord", None) else None

    # ------------------------------------------------------------------
    # Scope lookup
    # ------------------------------------------------------------------
    def _lookup_var(self, name: str) -> Optional[AbstractObject]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _declare_local(self, name: str, t: CType, line: Optional[int]) -> AbstractObject:
        fn = self._fn_name or "<global>"
        key = (fn, name)
        n = self._local_counter.get(key, 0)
        unique = name if n == 0 else f"{name}.{n}"
        while self.program.objects.lookup(f"{fn}::{unique}") is not None:
            n += 1
            unique = f"{name}.{n}"
        self._local_counter[key] = n + 1
        obj = self.program.objects.local_var(fn, unique, t, line=line)
        self._scopes[-1][name] = obj
        return obj

    # ==================================================================
    # Statements
    # ==================================================================
    def _lower_stmt(self, node: Optional[c_ast.Node]) -> None:
        if node is None:
            return
        if self.strict:
            return self._lower_stmt_inner(node)
        try:
            return self._lower_stmt_inner(node)
        except Exception as exc:
            # Lenient: dropping a statement only removes may-facts.
            self._skip(exc, node, "statement")

    def _lower_stmt_inner(self, node: c_ast.Node) -> None:
        if isinstance(node, c_ast.Compound):
            self._scopes.append({})
            try:
                for item in node.block_items or []:
                    self._lower_stmt(item)
            finally:
                self._scopes.pop()
        elif isinstance(node, c_ast.Decl):
            self._lower_local_decl(node)
        elif isinstance(node, c_ast.DeclList):
            for d in node.decls:
                self._lower_local_decl(d)
        elif isinstance(node, c_ast.Typedef):
            self.types.add_typedef(node.name, node.type)
        elif isinstance(node, c_ast.Return):
            if node.expr is not None:
                v = self._value(node.expr)
                fn = self._current_fn
                if fn is not None and fn.retval is not None and v.obj is not None:
                    self._emit(
                        Copy(lhs=fn.retval, rhs=FieldRef(v.obj, ())),
                        line=self._line(node),
                    )
        elif isinstance(node, c_ast.If):
            self._value(node.cond)
            self._lower_stmt(node.iftrue)
            self._lower_stmt(node.iffalse)
        elif isinstance(node, c_ast.While) or isinstance(node, c_ast.DoWhile):
            self._value(node.cond)
            self._lower_stmt(node.stmt)
        elif isinstance(node, c_ast.For):
            self._scopes.append({})
            try:
                self._lower_stmt(node.init)
                if node.cond is not None:
                    self._value(node.cond)
                self._lower_stmt(node.stmt)
                if node.next is not None:
                    self._value(node.next)
            finally:
                self._scopes.pop()
        elif isinstance(node, c_ast.Switch):
            self._value(node.cond)
            self._lower_stmt(node.stmt)
        elif isinstance(node, (c_ast.Case, c_ast.Default)):
            for st in node.stmts or []:
                self._lower_stmt(st)
        elif isinstance(node, c_ast.Label):
            self._lower_stmt(node.stmt)
        elif isinstance(node, (c_ast.Break, c_ast.Continue, c_ast.Goto,
                               c_ast.EmptyStatement, c_ast.Pragma)):
            pass
        else:
            # Expression statement (assignment, call, ++, ...).
            self._value(node)

    def _lower_local_decl(self, decl: c_ast.Decl) -> None:
        if decl.name is None:
            self.types.from_decl(decl)  # bare struct/enum declaration
            return
        t = self.types.from_decl(decl)
        if isinstance(t, FunctionType):
            self._register_function_decl(decl)
            return
        if "extern" in (decl.storage or []):
            obj = self.program.objects.lookup(decl.name)
            if obj is None:
                obj = self._declare_global(decl.name, t, decl)
            self._scopes[-1][decl.name] = obj
            return
        obj = self._declare_local(decl.name, t, self._line(decl))
        if decl.init is not None:
            self._apply_initializer(obj, (), t, decl.init)

    # ------------------------------------------------------------------
    # Initializers (scalar, struct, array, designated)
    # ------------------------------------------------------------------
    def _apply_initializer(
        self, obj: AbstractObject, path: Tuple[str, ...], t: CType, init: c_ast.Node
    ) -> None:
        t = _skip_arrays(t)  # array elements share the representative
        if isinstance(init, c_ast.InitList):
            if isinstance(t, StructType) and t.is_complete:
                members = t.members()
                idx = 0
                for item in init.exprs:
                    if isinstance(item, c_ast.NamedInitializer):
                        fname = item.name[0].name
                        f = t.field_named(fname)
                        idx = t.field_index(fname) + 1
                        self._apply_initializer(obj, path + (fname,), f.type, item.expr)
                    else:
                        if idx >= len(members):
                            break
                        f = members[idx]
                        idx += 1
                        self._apply_initializer(obj, path + (f.name,), f.type, item)
            else:
                # Array (or scalar with braces): every element initializes
                # the representative element.
                for item in init.exprs:
                    inner = item.expr if isinstance(item, c_ast.NamedInitializer) else item
                    self._apply_initializer(obj, path, t, inner)
            return
        v = self._value(init, hint=t)
        if v.obj is None:
            return  # pure value: no address content to record
        self._write(VarPath(obj, path, t), v, line=self._line(init))

    # ==================================================================
    # Lvalues
    # ==================================================================
    def _lvalue(self, node: c_ast.Node) -> LValue:
        if isinstance(node, c_ast.ID):
            obj = self._lookup_var(node.name)
            if obj is not None:
                return VarPath(obj, (), obj.type)
            raise self._err(
                "unknown-identifier", f"unknown identifier {node.name!r}", node
            )
        if isinstance(node, c_ast.StructRef):
            if node.type == ".":
                base = self._lvalue_or_temp(node.name)
                ft = self._member_type(base.type, node.field.name, node)
                if isinstance(base, VarPath):
                    return VarPath(base.obj, base.path + (node.field.name,), ft)
                return DerefPath(base.ptr, base.path + (node.field.name,), ft)
            # p->field
            v = self._value(node.name)
            pointee = self._pointee_of(v.type)
            ft = self._member_type(pointee, node.field.name, node)
            return DerefPath(self._obj_or_empty(v), (node.field.name,), ft)
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            inner_t = self._type_of(node.expr)
            if isinstance(inner_t, ArrayType):
                base = self._lvalue_or_temp(node.expr)
                base.type = inner_t.elem  # representative element
                return base
            v = self._value(node.expr)
            return DerefPath(self._obj_or_empty(v), (), self._pointee_of(v.type))
        if isinstance(node, c_ast.ArrayRef):
            base_t = self._type_of(node.name)
            if isinstance(base_t, ArrayType):
                base = self._lvalue_or_temp(node.name)
                self._value(node.subscript)  # side effects only
                base.type = base_t.elem
                return base
            # Pointer indexing: p[i] == *(p + i).
            v = self._value(node.name)
            idx = self._value(node.subscript)
            elem = self._pointee_of(v.type)
            if self._is_zero_constant(node.subscript):
                return DerefPath(self._obj_or_empty(v), (), elem)
            operands = tuple(o for o in (v.obj, idx.obj) if o is not None)
            tmp = self._temp(v.type, self._line(node))
            self._emit(PtrArith(lhs=tmp, operands=operands), line=self._line(node))
            return DerefPath(tmp, (), elem)
        if isinstance(node, c_ast.Cast):
            # (T)lv is not an lvalue in ANSI C, but accept the GNU idiom by
            # materializing the cast value.
            v = self._value(node)
            return VarPath(self._obj_or_empty(v), (), v.type)
        raise self._err(
            "unsupported-lvalue", f"unsupported lvalue {type(node).__name__}", node
        )

    def _lvalue_or_temp(self, node: c_ast.Node) -> LValue:
        """Lower to an lvalue, materializing rvalues into temporaries."""
        try:
            return self._lvalue(node)
        except NormalizeError:
            v = self._value(node)
            return VarPath(self._obj_or_empty(v), (), v.type)

    def _member_type(
        self, t: CType, field: str, node: Optional[c_ast.Node] = None
    ) -> CType:
        t = _skip_arrays(t)
        if isinstance(t, StructType) and t.is_complete:
            if not t.has_field(field):
                raise self._err(
                    "unknown-member", f"no member .{field} in {t!r}", node
                )
            return t.field_named(field).type
        raise self._err(
            "member-on-non-struct",
            f"member access .{field} on non-struct {t!r}",
            node,
        )

    @staticmethod
    def _pointee_of(t: CType) -> CType:
        t = _skip_arrays(t)
        if isinstance(t, PointerType):
            return t.pointee
        return void

    def _obj_or_empty(self, v: Value) -> AbstractObject:
        """An object for ``v``, inventing an empty temp for pure values."""
        if v.obj is not None:
            return v.obj
        return self._temp(v.type)

    # ------------------------------------------------------------------
    # Reading / writing / taking the address of lvalues
    # ------------------------------------------------------------------
    def _read(self, lv: LValue, line: Optional[int] = None) -> Value:
        t = lv.type
        if isinstance(t, ArrayType):
            # Array-typed lvalues decay to a pointer to the representative
            # element when read.
            av = self._addr_of(lv, line)
            return Value(av.obj, PointerType(t.elem))
        if isinstance(lv, VarPath):
            if not lv.path:
                return Value(lv.obj, lv.obj.type)
            tmp = self._temp(t, line)
            self._emit(Copy(lhs=tmp, rhs=FieldRef(lv.obj, lv.path)), line=line)
            return Value(tmp, t)
        if not lv.path:
            tmp = self._temp(t, line)
            self._emit(Load(lhs=tmp, ptr=lv.ptr), line=line)
            return Value(tmp, t)
        addr = self._temp(PointerType(t), line)
        self._emit(FieldAddr(lhs=addr, ptr=lv.ptr, path=lv.path), line=line)
        tmp = self._temp(t, line)
        self._emit(Load(lhs=tmp, ptr=addr, synthetic=True), line=line)
        return Value(tmp, t)

    def _write(self, lv: LValue, v: Value, line: Optional[int] = None) -> None:
        if v.obj is None:
            # A pure value (e.g. a null-pointer constant) is converted to
            # the destination's type by assignment semantics; type the
            # carrier temp accordingly so no spurious "cast" is recorded.
            v = Value(None, lv.type)
        rhs = self._obj_or_empty(v)
        if isinstance(lv, VarPath):
            if not lv.path:
                self._emit(Copy(lhs=lv.obj, rhs=FieldRef(rhs, ())), line=line)
                return
            addr = self._temp(PointerType(lv.type), line)
            self._emit(
                AddrOf(lhs=addr, target=FieldRef(lv.obj, lv.path), synthetic=True),
                line=line,
            )
            self._emit(Store(ptr=addr, rhs=rhs, synthetic=True), line=line)
            return
        if not lv.path:
            self._emit(Store(ptr=lv.ptr, rhs=rhs), line=line)
            return
        addr = self._temp(PointerType(lv.type), line)
        self._emit(FieldAddr(lhs=addr, ptr=lv.ptr, path=lv.path), line=line)
        self._emit(Store(ptr=addr, rhs=rhs, synthetic=True), line=line)

    def _addr_of(self, lv: LValue, line: Optional[int] = None) -> Value:
        t = PointerType(_skip_arrays(lv.type) if isinstance(lv.type, ArrayType) else lv.type)
        if isinstance(lv, VarPath):
            tmp = self._temp(t, line)
            self._emit(AddrOf(lhs=tmp, target=FieldRef(lv.obj, lv.path)), line=line)
            return Value(tmp, t)
        if not lv.path:
            return Value(lv.ptr, t)  # &*p == p
        tmp = self._temp(t, line)
        self._emit(FieldAddr(lhs=tmp, ptr=lv.ptr, path=lv.path), line=line)
        return Value(tmp, t)

    # ==================================================================
    # Expressions
    # ==================================================================
    def _type_of(self, node: c_ast.Node) -> CType:
        """Static type of an expression, without lowering it.

        Only used for dispatch decisions (array vs pointer indexing); the
        rare failure cases fall back to ``int``.
        """
        try:
            if isinstance(node, c_ast.ID):
                obj = self._lookup_var(node.name)
                if obj is not None:
                    return obj.type
                if node.name in self._functions:
                    return self._functions[node.name][1]
                if node.name in self.types.enum_consts:
                    return int_t
                return int_t
            if isinstance(node, c_ast.Constant):
                return self._constant_type(node)
            if isinstance(node, c_ast.StructRef):
                base_t = self._type_of(node.name)
                if node.type == "->":
                    base_t = self._pointee_of(base_t)
                return self._member_type(base_t, node.field.name)
            if isinstance(node, c_ast.ArrayRef):
                base_t = _skip_arrays_once(self._type_of(node.name))
                return base_t
            if isinstance(node, c_ast.UnaryOp):
                if node.op == "*":
                    t = self._type_of(node.expr)
                    if isinstance(t, ArrayType):
                        return t.elem
                    return self._pointee_of(t)
                if node.op == "&":
                    return PointerType(self._type_of(node.expr))
                if node.op == "sizeof":
                    return ulong
                return self._type_of(node.expr)
            if isinstance(node, c_ast.BinaryOp):
                lt = self._type_of(node.left)
                rt = self._type_of(node.right)
                return _arith_result_type(node.op, lt, rt)
            if isinstance(node, c_ast.Cast):
                return self.types.from_node(node.to_type)
            if isinstance(node, c_ast.FuncCall):
                callee_t = self._type_of(node.name)
                callee_t = _skip_arrays(callee_t)
                if isinstance(callee_t, PointerType):
                    callee_t = callee_t.pointee
                if isinstance(callee_t, FunctionType):
                    return callee_t.ret
                return int_t
            if isinstance(node, c_ast.TernaryOp):
                return self._type_of(node.iftrue)
            if isinstance(node, c_ast.Assignment):
                return self._type_of(node.lvalue)
            if isinstance(node, c_ast.ExprList):
                return self._type_of(node.exprs[-1])
        except NormalizeError:
            pass
        return int_t

    def _constant_type(self, node: c_ast.Constant) -> CType:
        k = node.type
        if k == "string":
            return PointerType(char)
        if "float" in k or "double" in k:
            return double_t
        if "char" in k:
            return int_t
        if "long" in k:
            return IntType("long", "unsigned" not in k)
        return IntType("int", "unsigned" not in k)

    # ------------------------------------------------------------------
    def _value(self, node: c_ast.Node, hint: Optional[CType] = None) -> Value:
        """Evaluate an expression, emitting normalized statements.

        Lenient mode never lets a structured frontend error escape: the
        failed (sub)expression evaluates to the enclosing function's
        havoc object so the surrounding statement is still lowered (e.g.
        ``p = <unsupported>`` becomes ``p = havoc``).
        """
        if self.strict:
            return self._value_inner(node, hint)
        try:
            return self._value_inner(node, hint)
        except FrontendError as exc:
            diag = exc.diagnostic
            loc = diag.loc if diag.loc.known else loc_of_node(node, self.filename)
            self.diagnostics.report(
                diag.kind,
                f"{diag.message}; expression value havocked",
                loc=loc,
                phase=diag.phase,
            )
            t = hint if hint is not None else ptr(void)
            return Value(self._havoc(t), t)

    def _value_inner(self, node: c_ast.Node, hint: Optional[CType] = None) -> Value:
        line = self._line(node)
        if isinstance(node, c_ast.Constant):
            if node.type == "string":
                return self._string_literal(node, line)
            return Value(None, self._constant_type(node))
        if isinstance(node, c_ast.ID):
            if node.name in self.types.enum_consts:
                return Value(None, int_t)
            obj = self._lookup_var(node.name)
            if obj is not None:
                return self._read(VarPath(obj, (), obj.type), line)
            if node.name in self._functions:
                fobj, ftype = self._functions[node.name]
                tmp = self._temp(PointerType(ftype), line)
                self._emit(AddrOf(lhs=tmp, target=FieldRef(fobj, ())), line=line)
                return Value(tmp, PointerType(ftype))
            raise self._err(
                "unknown-identifier", f"unknown identifier {node.name!r}", node
            )
        if isinstance(node, (c_ast.StructRef, c_ast.ArrayRef)):
            return self._read(self._lvalue(node), line)
        if isinstance(node, c_ast.UnaryOp):
            return self._unary(node, line)
        if isinstance(node, c_ast.BinaryOp):
            return self._binary(node, line)
        if isinstance(node, c_ast.Assignment):
            return self._assignment(node, line)
        if isinstance(node, c_ast.Cast):
            return self._cast(node, line)
        if isinstance(node, c_ast.FuncCall):
            return self._call(node, hint, line)
        if isinstance(node, c_ast.TernaryOp):
            return self._ternary(node, hint, line)
        if isinstance(node, c_ast.ExprList):
            v = Value(None, int_t)
            for e in node.exprs:
                v = self._value(e, hint)
            return v
        if isinstance(node, c_ast.CompoundLiteral):
            t = self.types.from_node(node.type)
            tmp_name = f"<compound:{id(node)}>"
            obj = self._declare_local(tmp_name, t, line)
            self._apply_initializer(obj, (), t, node.init)
            return self._read(VarPath(obj, (), t), line)
        if isinstance(node, c_ast.InitList):
            raise self._err(
                "unsupported-expression", "initializer list in expression context", node
            )
        raise self._err(
            "unsupported-expression",
            f"unsupported expression {type(node).__name__}",
            node,
        )

    # ------------------------------------------------------------------
    def _string_literal(self, node: c_ast.Constant, line: Optional[int]) -> Value:
        text = node.value
        length = max(len(text) - 2, 0) + 1  # crude; escapes make it longer, safe
        sobj = self.program.objects.string_literal(array_of(char, length))
        tmp = self._temp(PointerType(char), line)
        self._emit(AddrOf(lhs=tmp, target=FieldRef(sobj, ())), line=line)
        return Value(tmp, PointerType(char))

    # ------------------------------------------------------------------
    def _unary(self, node: c_ast.UnaryOp, line: Optional[int]) -> Value:
        op = node.op
        if op == "&":
            # &f on a function designator: same value as plain `f` (both
            # denote the function's address), but `f` is not an lvalue here.
            if (
                isinstance(node.expr, c_ast.ID)
                and self._lookup_var(node.expr.name) is None
                and node.expr.name in self._functions
            ):
                return self._value(node.expr)
            return self._addr_of(self._lvalue(node.expr), line)
        if op == "*":
            return self._read(self._lvalue(node), line)
        if op == "sizeof":
            return Value(None, ulong)  # operand is unevaluated
        if op == "!":
            self._value(node.expr)
            return Value(None, int_t)
        if op in ("-", "+", "~"):
            v = self._value(node.expr)
            if v.obj is None:
                return Value(None, v.type)
            tmp = self._temp(v.type, line)
            self._emit(PtrArith(lhs=tmp, operands=(v.obj,)), line=line)
            return Value(tmp, v.type)
        if op in ("++", "--", "p++", "p--"):
            lv = self._lvalue(node.expr)
            cur = self._read(lv, line)
            if cur.obj is None:
                return cur
            tmp = self._temp(cur.type, line)
            self._emit(PtrArith(lhs=tmp, operands=(cur.obj,)), line=line)
            self._write(lv, Value(tmp, cur.type), line)
            return cur if op.startswith("p") else Value(tmp, cur.type)
        raise self._err(
            "unsupported-operator", f"unsupported unary operator {op!r}", node
        )

    # ------------------------------------------------------------------
    _PURE_BINOPS = frozenset({"==", "!=", "<", ">", "<=", ">=", "&&", "||"})

    def _binary(self, node: c_ast.BinaryOp, line: Optional[int]) -> Value:
        lt = self._type_of(node.left)
        rt = self._type_of(node.right)
        result = _arith_result_type(node.op, lt, rt)
        lv = self._value(node.left)
        rv = self._value(node.right)
        if node.op in self._PURE_BINOPS:
            # Comparison/logical results are 0/1 and carry no address.
            return Value(None, int_t)
        operands = tuple(o for o in (lv.obj, rv.obj) if o is not None)
        if not operands:
            return Value(None, result)
        tmp = self._temp(result, line)
        self._emit(PtrArith(lhs=tmp, operands=operands), line=line)
        return Value(tmp, result)

    # ------------------------------------------------------------------
    def _assignment(self, node: c_ast.Assignment, line: Optional[int]) -> Value:
        lv = self._lvalue(node.lvalue)
        if node.op == "=":
            v = self._value(node.rvalue, hint=lv.type)
            self._write(lv, v, line)
            return Value(v.obj, lv.type)
        # Compound assignment: read-modify-write through PtrArith.
        cur = self._read(lv, line)
        rv = self._value(node.rvalue)
        operands = tuple(o for o in (cur.obj, rv.obj) if o is not None)
        if operands:
            tmp = self._temp(lv.type, line)
            self._emit(PtrArith(lhs=tmp, operands=operands), line=line)
            out = Value(tmp, lv.type)
        else:
            out = Value(None, lv.type)
        self._write(lv, out, line)
        return out

    # ------------------------------------------------------------------
    def _cast(self, node: c_ast.Cast, line: Optional[int]) -> Value:
        to = self.types.from_node(node.to_type)
        hint = to if isinstance(to, PointerType) else None
        v = self._value(node.expr, hint=hint)
        if isinstance(to, VoidType):
            return Value(None, to)
        if v.obj is None:
            return Value(None, to)
        if compatible(to, v.type):
            return Value(v.obj, to)
        tmp = self._temp(to, line)
        self._emit(Copy(lhs=tmp, rhs=FieldRef(v.obj, ())), line=line)
        return Value(tmp, to)

    # ------------------------------------------------------------------
    def _ternary(
        self, node: c_ast.TernaryOp, hint: Optional[CType], line: Optional[int]
    ) -> Value:
        self._value(node.cond)
        a = self._value(node.iftrue, hint)
        b = self._value(node.iffalse, hint)
        if a.obj is None and b.obj is None:
            return Value(None, a.type)
        t = a.type if a.obj is not None else b.type
        tmp = self._temp(t, line)
        for arm in (a, b):
            if arm.obj is not None:
                self._emit(Copy(lhs=tmp, rhs=FieldRef(arm.obj, ())), line=line)
        return Value(tmp, t)

    # ------------------------------------------------------------------
    # Calls (including the malloc-family rewrite)
    # ------------------------------------------------------------------
    def _call(
        self, node: c_ast.FuncCall, hint: Optional[CType], line: Optional[int]
    ) -> Value:
        callee_name = node.name.name if isinstance(node.name, c_ast.ID) else None
        args = list(node.args.exprs) if node.args is not None else []

        if (
            callee_name in ALLOC_FUNCTIONS
            and self._lookup_var(callee_name) is None
            and callee_name not in self.program.functions
        ):
            return self._alloc_call(callee_name, args, hint, line)

        # Resolve the callee: direct function, or pointer-valued expression.
        indirect = False
        if callee_name is not None and self._lookup_var(callee_name) is None:
            if callee_name not in self._functions:
                # Implicit declaration (C90): int f(...).
                fobj = self.program.objects.function(
                    callee_name, FunctionType(int_t, (), True), line=line
                )
                self._functions[callee_name] = (fobj, FunctionType(int_t, (), True))
            callee_obj, ftype = self._functions[callee_name]
        else:
            cexpr = node.name
            # (*fp)(...) and fp(...) are the same call through fp.
            while isinstance(cexpr, c_ast.UnaryOp) and cexpr.op == "*":
                cexpr = cexpr.expr
            v = self._value(cexpr)
            callee_obj = self._obj_or_empty(v)
            indirect = True
            ft = _skip_arrays(v.type)
            if isinstance(ft, PointerType):
                ft = ft.pointee
            ftype = ft if isinstance(ft, FunctionType) else FunctionType(int_t, (), True)

        arg_objs = []
        for i, a in enumerate(args):
            av = self._value(a)
            if (
                av.obj is None
                and isinstance(ftype, FunctionType)
                and i < len(ftype.params)
            ):
                # Pure constants (e.g. NULL) convert to the parameter type.
                av = Value(None, ftype.params[i])
            arg_objs.append(self._obj_or_empty(av))

        ret_t = ftype.ret if isinstance(ftype, FunctionType) else int_t
        lhs = None
        if not isinstance(ret_t, VoidType):
            lhs = self._temp(ret_t, line)
        self._emit(
            Call(lhs=lhs, callee=callee_obj, indirect=indirect, args=tuple(arg_objs)),
            line=line,
        )
        return Value(lhs, ret_t)

    def _alloc_call(
        self,
        name: str,
        args: List[c_ast.Node],
        hint: Optional[CType],
        line: Optional[int],
    ) -> Value:
        """Rewrite ``p = malloc(...)`` into ``p = &malloc_i`` (paper §2)."""
        elem = self._heap_element_type(name, args, hint)
        fn = self._fn_name or "<global>"
        heap = self.program.objects.heap(f"{name}@{fn}:{line or 0}", elem, line=line)
        result_t = PointerType(elem)
        tmp = self._temp(result_t, line)
        self._emit(AddrOf(lhs=tmp, target=FieldRef(heap, ())), line=line)
        arg_vals = [self._value(a) for a in args]
        if name in ("realloc", "xrealloc") and arg_vals and arg_vals[0].obj is not None:
            # The returned block may be the old block.
            self._emit(Copy(lhs=tmp, rhs=FieldRef(arg_vals[0].obj, ())), line=line)
        if name in ("strdup", "strndup"):
            return Value(tmp, PointerType(char))
        return Value(tmp, result_t)

    def _heap_element_type(
        self, name: str, args: List[c_ast.Node], hint: Optional[CType]
    ) -> CType:
        """Pick the allocation-site pseudo-variable's type.

        Priority: the pointer type the result is cast/assigned to (the
        idiomatic ``(struct S *)malloc(...)``), then a ``sizeof`` operand
        found in the size expression, then an untyped byte blob.
        """
        if name in ("strdup", "strndup"):
            return array_of(char, None)
        if isinstance(hint, PointerType) and not isinstance(hint.pointee, VoidType):
            return hint.pointee
        size_args = args[1:] if name in ("realloc", "xrealloc") else args
        for a in size_args:
            t = self._sizeof_operand_type(a)
            if t is not None:
                return t
        return array_of(char, None)

    def _sizeof_operand_type(self, node: c_ast.Node) -> Optional[CType]:
        if isinstance(node, c_ast.UnaryOp) and node.op == "sizeof":
            operand = node.expr
            if isinstance(operand, c_ast.Typename):
                return self.types.from_node(operand)
            return self._type_of(operand)
        if isinstance(node, c_ast.BinaryOp) and node.op in ("*", "+"):
            left = self._sizeof_operand_type(node.left)
            if left is not None:
                return array_of(left, None)
            right = self._sizeof_operand_type(node.right)
            if right is not None:
                return array_of(right, None)
        if isinstance(node, c_ast.Cast):
            return self._sizeof_operand_type(node.expr)
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _is_zero_constant(node: c_ast.Node) -> bool:
        return (
            isinstance(node, c_ast.Constant)
            and node.type in ("int", "unsigned int", "long", "unsigned long")
            and node.value.rstrip("uUlL") in ("0", "0x0", "00")
        )


def _skip_arrays_once(t: CType) -> CType:
    if isinstance(t, ArrayType):
        return t.elem
    if isinstance(t, PointerType):
        return t.pointee
    return int_t


def _arith_result_type(op: str, lt: CType, rt: CType) -> CType:
    """Approximate C's usual arithmetic conversions for temp typing."""
    if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
        return int_t
    lt_p = isinstance(lt, (PointerType, ArrayType))
    rt_p = isinstance(rt, (PointerType, ArrayType))
    if lt_p and rt_p and op == "-":
        return IntType("long", True)  # ptrdiff_t
    if lt_p:
        return PointerType(lt.elem) if isinstance(lt, ArrayType) else lt
    if rt_p:
        return PointerType(rt.elem) if isinstance(rt, ArrayType) else rt
    if isinstance(lt, FloatType) or isinstance(rt, FloatType):
        return double_t
    ranks = {"_Bool": 0, "char": 1, "short": 2, "int": 3, "long": 4, "long long": 5}
    lk = lt.kind if isinstance(lt, IntType) else "int"
    rk = rt.kind if isinstance(rt, IntType) else "int"
    kind = lk if ranks.get(lk, 3) >= ranks.get(rk, 3) else rk
    if ranks.get(kind, 3) < 3:
        kind = "int"  # integer promotion
    signed = True
    if isinstance(lt, IntType) and lt.kind == kind and not lt.signed:
        signed = False
    if isinstance(rt, IntType) and rt.kind == kind and not rt.signed:
        signed = False
    return IntType(kind, signed)
