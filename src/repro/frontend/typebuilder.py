"""Building :mod:`repro.ctype` types from pycparser declarations.

The :class:`TypeBuilder` maintains the three namespaces C has for types —
typedef names, struct/union tags, and enum tags — and converts pycparser
type ASTs into our representation, completing forward-declared records
when their definitions appear (which is how self-referential structures
work).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from pycparser import c_ast

from ..ctype.types import (
    ArrayType,
    CType,
    EnumType,
    Field,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    UnionType,
    VoidType,
    int_t,
    void,
)
from ..diag import DiagnosticSink, FrontendError, loc_of_node

__all__ = ["TypeBuildError", "TypeBuilder"]


class TypeBuildError(FrontendError):
    """Raised for declarations outside the supported C subset."""

    phase = "typebuild"
    default_kind = "unsupported-type"


_BASE_TYPES: Dict[Tuple[str, ...], CType] = {}


def _base(names: Tuple[str, ...]) -> CType:
    """Map a sorted tuple of type-specifier keywords to a scalar type."""
    key = tuple(sorted(names))
    cached = _BASE_TYPES.get(key)
    if cached is not None:
        return cached
    words = list(key)
    signed = True
    if "unsigned" in words:
        signed = False
        words.remove("unsigned")
    if "signed" in words:
        words.remove("signed")
    rest = " ".join(sorted(words))
    t: CType
    if rest in ("", "int"):
        t = IntType("int", signed)
    elif rest == "char":
        t = IntType("char", signed)
    elif rest in ("short", "int short"):
        t = IntType("short", signed)
    elif rest in ("long", "int long"):
        t = IntType("long", signed)
    elif rest in ("long long", "int long long"):
        t = IntType("long long", signed)
    elif rest == "_Bool":
        t = IntType("_Bool", False)
    elif rest == "float":
        t = FloatType("float")
    elif rest == "double":
        t = FloatType("double")
    elif rest == "double long":
        t = FloatType("long double")
    elif rest == "void":
        t = void
    else:
        raise TypeBuildError(f"unsupported base type: {' '.join(names)}")
    _BASE_TYPES[key] = t
    return t


def _embeds_by_value(t: CType, target: CType, _seen: Optional[set] = None) -> bool:
    """Whether ``t`` contains ``target`` by value (through fields/arrays).

    Pointers break containment; incomplete records contain nothing yet.
    """
    if t is target:
        return True
    seen = _seen if _seen is not None else set()
    if id(t) in seen:
        return False
    seen.add(id(t))
    if isinstance(t, ArrayType):
        return _embeds_by_value(t.elem, target, seen)
    if isinstance(t, (StructType, UnionType)) and t.is_complete:
        return any(_embeds_by_value(f.type, target, seen) for f in t.fields)
    return False


class TypeBuilder:
    """Converts pycparser type ASTs to :class:`~repro.ctype.types.CType`.

    One builder is used per translation unit; it owns the typedef and tag
    namespaces.  Anonymous records get synthesized tags (``<anon:N>``) so
    they can be interned and compared.
    """

    def __init__(
        self,
        *,
        strict: bool = True,
        diagnostics: Optional[DiagnosticSink] = None,
        filename: Optional[str] = None,
    ) -> None:
        self.strict = strict
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticSink()
        self.filename = filename
        self.typedefs: Dict[str, CType] = {}
        self.struct_tags: Dict[str, StructType] = {}
        self.union_tags: Dict[str, UnionType] = {}
        self.enum_tags: Dict[str, EnumType] = {}
        #: enumerator name → integer value (used for constant folding).
        self.enum_consts: Dict[str, int] = {}
        self._anon = 0

    # ------------------------------------------------------------------
    def add_typedef(self, name: str, node: c_ast.Node) -> None:
        self.typedefs[name] = self.from_node(node)

    # ------------------------------------------------------------------
    def from_decl(self, decl: c_ast.Decl) -> CType:
        """Type of a declaration (``Decl.type`` subtree)."""
        return self.from_node(decl.type)

    def from_node(self, node: c_ast.Node) -> CType:
        """Convert any pycparser type subtree.

        Strict mode raises :class:`TypeBuildError` (with the node's source
        coordinates) for constructs outside the supported subset; lenient
        mode records the diagnostic and degrades the type to ``int`` — a
        pointer-free scalar, so nothing is ever *missed* through it, only
        modeled conservatively once the object is accessed via casts.
        """
        try:
            return self._from_node(node)
        except TypeBuildError as err:
            if not err.loc.known:
                err = TypeBuildError(
                    err.diagnostic.message,
                    kind=err.kind,
                    loc=loc_of_node(node, self.filename),
                )
            if self.strict:
                raise err
            self.diagnostics.absorb(err)
            return int_t

    def _from_node(self, node: c_ast.Node) -> CType:
        if isinstance(node, c_ast.TypeDecl):
            t = self.from_node(node.type)
            if node.quals:
                t = t.with_quals(tuple(sorted(set(node.quals))))
            return t
        if isinstance(node, c_ast.Typename):
            return self.from_node(node.type)
        if isinstance(node, c_ast.IdentifierType):
            names = tuple(node.names)
            if len(names) == 1 and names[0] in self.typedefs:
                return self.typedefs[names[0]]
            return _base(names)
        if isinstance(node, c_ast.PtrDecl):
            return PointerType(self.from_node(node.type))
        if isinstance(node, c_ast.ArrayDecl):
            elem = self.from_node(node.type)
            length = self._const_int(node.dim) if node.dim is not None else None
            return ArrayType(elem, length)
        if isinstance(node, c_ast.FuncDecl):
            return self._function_type(node)
        if isinstance(node, c_ast.Struct):
            return self._record(node, UnionType=False)
        if isinstance(node, c_ast.Union):
            return self._record(node, UnionType=True)
        if isinstance(node, c_ast.Enum):
            return self._enum(node)
        raise TypeBuildError(f"unsupported type node: {type(node).__name__}")

    # ------------------------------------------------------------------
    def _function_type(self, node: c_ast.FuncDecl) -> FunctionType:
        ret = self.from_node(node.type)
        params: List[CType] = []
        varargs = False
        if node.args is not None:
            for p in node.args.params:
                if isinstance(p, c_ast.EllipsisParam):
                    varargs = True
                    continue
                pt = self.from_node(p.type if isinstance(p, (c_ast.Decl, c_ast.Typename)) else p)
                # A sole ``void`` parameter means "no parameters".
                if isinstance(pt, VoidType) and len(node.args.params) == 1:
                    continue
                # Array and function parameters decay to pointers.
                if isinstance(pt, ArrayType):
                    pt = PointerType(pt.elem)
                elif isinstance(pt, FunctionType):
                    pt = PointerType(pt)
                params.append(pt)
        return FunctionType(ret, tuple(params), varargs)

    # ------------------------------------------------------------------
    def _record(self, node, UnionType: bool) -> StructType:
        from ..ctype import types as T

        cls = T.UnionType if UnionType else T.StructType
        table = self.union_tags if UnionType else self.struct_tags
        tag = node.name
        if tag is None:
            self._anon += 1
            tag = f"<anon:{self._anon}>"
        rec = table.get(tag)
        if rec is None:
            rec = cls(tag=tag)
            table[tag] = rec
        if node.decls is not None and not rec.is_complete:
            fields: List[Field] = []
            for d in node.decls:
                bw = self._const_int(d.bitsize) if getattr(d, "bitsize", None) else None
                ftype = self.from_node(d.type)
                fname = d.name
                if fname is None:
                    # Anonymous bit-field padding or anonymous inner record.
                    self._anon += 1
                    fname = f"<pad:{self._anon}>"
                if _embeds_by_value(ftype, rec):
                    # ``struct A { struct A a; }`` is ill-formed C (the
                    # member has incomplete type); admitting the cycle
                    # would make field-path expansion diverge downstream.
                    err = TypeBuildError(
                        f"field .{fname} embeds {rec.tag!r} in itself by value",
                        kind="recursive-type",
                        loc=loc_of_node(d, self.filename),
                    )
                    if self.strict:
                        raise err
                    self.diagnostics.absorb(err)
                    ftype = int_t
                fields.append(Field(fname, ftype, bw))
            rec.define(fields)
        return rec

    def _enum(self, node: c_ast.Enum) -> EnumType:
        tag = node.name
        if tag is None:
            self._anon += 1
            tag = f"<anon:{self._anon}>"
        e = self.enum_tags.get(tag)
        if e is None:
            e = EnumType(tag=tag)
            self.enum_tags[tag] = e
        if node.values is not None:
            next_val = 0
            for en in node.values.enumerators:
                if en.value is not None:
                    next_val = self._const_int(en.value)
                self.enum_consts[en.name] = next_val
                next_val += 1
        return e

    # ------------------------------------------------------------------
    def _const_int(self, node: c_ast.Node) -> int:
        """Fold a constant integer expression (array sizes, enum values).

        Lenient mode degrades unfoldable expressions to ``1`` (one array
        element — the representative-element abstraction makes the actual
        length irrelevant to the analysis) and records a diagnostic.
        """
        try:
            return self._const_int_raw(node)
        except TypeBuildError as err:
            if not err.loc.known:
                err = TypeBuildError(
                    err.diagnostic.message,
                    kind="unsupported-constant",
                    loc=loc_of_node(node, self.filename),
                )
            if self.strict:
                raise err
            self.diagnostics.absorb(err)
            return 1

    def _const_int_raw(self, node: c_ast.Node) -> int:
        if isinstance(node, c_ast.Constant):
            text = node.value.rstrip("uUlL")
            try:
                return int(text, 0)
            except ValueError:
                if node.type == "char":
                    return self._char_value(node.value)
                raise TypeBuildError(f"bad integer constant {node.value!r}")
        if isinstance(node, c_ast.ID) and node.name in self.enum_consts:
            return self.enum_consts[node.name]
        if isinstance(node, c_ast.UnaryOp):
            v = self._const_int(node.expr)
            if node.op == "-":
                return -v
            if node.op == "+":
                return v
            if node.op == "~":
                return ~v
            if node.op == "!":
                return int(not v)
            raise TypeBuildError(f"unsupported constant unary op {node.op!r}")
        if isinstance(node, c_ast.BinaryOp):
            a = self._const_int(node.left)
            b = self._const_int(node.right)
            ops = {
                "+": lambda: a + b,
                "-": lambda: a - b,
                "*": lambda: a * b,
                "/": lambda: a // b if b else 0,
                "%": lambda: a % b if b else 0,
                "<<": lambda: a << b,
                ">>": lambda: a >> b,
                "|": lambda: a | b,
                "&": lambda: a & b,
                "^": lambda: a ^ b,
            }
            if node.op in ops:
                return ops[node.op]()
            raise TypeBuildError(f"unsupported constant binary op {node.op!r}")
        if isinstance(node, c_ast.Cast):
            return self._const_int(node.expr)
        raise TypeBuildError(
            f"expression is not a supported integer constant: {type(node).__name__}"
        )

    @staticmethod
    def _char_value(literal: str) -> int:
        inner = literal.strip("'")
        if inner.startswith("\\"):
            escapes = {
                "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39,
                '"': 34, "a": 7, "b": 8, "f": 12, "v": 11,
            }
            if inner[1] in escapes:
                return escapes[inner[1]]
            if inner[1] in "xX":
                return int(inner[2:], 16)
            return int(inner[1:], 8)
        return ord(inner[0]) if inner else 0
