"""Parsing C source into a pycparser AST.

pycparser expects *preprocessed* C.  The benchmark suite is written as
self-contained, include-free C, but real-world conveniences still need
handling, so this module provides a deliberately small preprocessor:

- comment stripping (``/* ... */`` and ``// ...``),
- object-like ``#define NAME TOKENS`` substitution (no function-like
  macros — the suite does not use them),
- ``#undef``, and ``#ifdef``/``#ifndef``/``#else``/``#endif`` over the
  macros defined so far,
- ``#include`` lines are dropped (every program in the suite declares the
  externs it needs, and a standard prelude supplies the common libc
  declarations),
- ``# N "file"`` / ``#line N "file"`` markers pass through to pycparser,
  which resets source coordinates accordingly — this is what lets the
  linker's concatenated-source differential keep per-TU line numbers
  (:mod:`repro.link`).

The prelude (:data:`PRELUDE`) declares the libc subset the analysis has
summaries for (:mod:`repro.core.interproc`), plus ``size_t``/``NULL``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from pycparser import c_ast, c_parser

from ..diag import DiagnosticSink, FrontendError, Severity, SourceLoc

__all__ = ["ParseError", "PreprocessorError", "preprocess", "parse_c", "PRELUDE"]


class PreprocessorError(FrontendError):
    """Raised on a directive the mini-preprocessor cannot handle."""

    phase = "preprocess"
    default_kind = "preprocess-error"


class ParseError(FrontendError):
    """Structured wrapper around pycparser's syntax errors."""

    phase = "parse"
    default_kind = "parse-error"


PRELUDE = """
typedef unsigned long size_t;
typedef long ptrdiff_t;
typedef struct _IO_FILE { int _fileno; } FILE;
extern void *malloc(size_t n);
extern void *calloc(size_t n, size_t size);
extern void *realloc(void *p, size_t n);
extern void free(void *p);
extern void exit(int status);
extern void abort(void);
extern void *memcpy(void *dst, void *src, size_t n);
extern void *memmove(void *dst, void *src, size_t n);
extern void *memset(void *dst, int c, size_t n);
extern int memcmp(void *a, void *b, size_t n);
extern char *strcpy(char *dst, char *src);
extern char *strncpy(char *dst, char *src, size_t n);
extern char *strcat(char *dst, char *src);
extern char *strncat(char *dst, char *src, size_t n);
extern int strcmp(char *a, char *b);
extern int strncmp(char *a, char *b, size_t n);
extern size_t strlen(char *s);
extern char *strchr(char *s, int c);
extern char *strrchr(char *s, int c);
extern char *strstr(char *hay, char *needle);
extern char *strtok(char *s, char *delim);
extern char *strdup(char *s);
extern int atoi(char *s);
extern long atol(char *s);
extern double atof(char *s);
extern long strtol(char *s, char **end, int base);
extern int printf(char *fmt, ...);
extern int fprintf(FILE *f, char *fmt, ...);
extern int sprintf(char *buf, char *fmt, ...);
extern int snprintf(char *buf, size_t n, char *fmt, ...);
extern int sscanf(char *s, char *fmt, ...);
extern int scanf(char *fmt, ...);
extern int fscanf(FILE *f, char *fmt, ...);
extern int puts(char *s);
extern int putchar(int c);
extern int getchar(void);
extern int getc(FILE *f);
extern int fgetc(FILE *f);
extern char *fgets(char *buf, int n, FILE *f);
extern int fputs(char *s, FILE *f);
extern int fputc(int c, FILE *f);
extern FILE *fopen(char *path, char *mode);
extern int fclose(FILE *f);
extern size_t fread(void *buf, size_t size, size_t n, FILE *f);
extern size_t fwrite(void *buf, size_t size, size_t n, FILE *f);
extern int fseek(FILE *f, long off, int whence);
extern long ftell(FILE *f);
extern int feof(FILE *f);
extern void qsort(void *base, size_t n, size_t size,
                  int (*cmp)(void *, void *));
extern void *bsearch(void *key, void *base, size_t n, size_t size,
                     int (*cmp)(void *, void *));
extern int rand(void);
extern void srand(unsigned int seed);
extern int isalpha(int c);
extern int isdigit(int c);
extern int isalnum(int c);
extern int isspace(int c);
extern int isupper(int c);
extern int islower(int c);
extern int toupper(int c);
extern int tolower(int c);
extern int abs(int x);
extern long labs(long x);
extern double sqrt(double x);
extern double pow(double x, double y);
extern double floor(double x);
extern double ceil(double x);
extern double fabs(double x);
extern char *getenv(char *name);
extern FILE *stdin_file(void);
extern FILE *stdout_file(void);
extern FILE *stderr_file(void);
extern FILE *_stdin, *_stdout, *_stderr;
"""

_COMMENT_RE = re.compile(
    r"//[^\n]*|/\*.*?\*/", re.DOTALL
)

_WORD_RE = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")

#: ``# 12 "file.c"`` or ``#line 12 "file.c"`` — a preprocessor line
#: marker.  pycparser consumes these natively and resets coordinates, so
#: the mini-preprocessor forwards them in the canonical ``# N "file"``
#: spelling instead of rejecting them as unsupported directives.
_LINE_MARKER_RE = re.compile(r'(?:line\s+)?(\d+)\s+("[^"]*")\s*$')


def _strip_comments(text: str) -> str:
    """Replace comments with equivalent whitespace, preserving line numbers."""

    def repl(m: "re.Match[str]") -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    return _COMMENT_RE.sub(repl, text)


def preprocess(
    text: str,
    defines: Optional[Dict[str, str]] = None,
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
    filename: Optional[str] = None,
) -> str:
    """Run the mini-preprocessor; returns line-count-preserving C text.

    In strict mode (the default) an unsupported directive raises a
    :class:`PreprocessorError` carrying the offending line's coordinates.
    With ``strict=False`` the directive is recorded on ``diagnostics`` and
    handled conservatively instead: unknown conditionals take the branch
    (so the guarded code *is* analyzed — sound for a may-analysis),
    function-like macros are left unexpanded, and malformed lines are
    dropped.
    """
    macros: Dict[str, str] = dict(defines or {})
    macros.setdefault("NULL", "((void*)0)")
    sink = diagnostics if diagnostics is not None else DiagnosticSink()
    out: List[str] = []
    # Stack of booleans: is the current #if region active?
    active_stack: List[bool] = []

    def trouble(kind: str, message: str, lineno: int,
                severity: Severity = Severity.WARNING) -> None:
        loc = SourceLoc(file=filename, line=lineno, column=1)
        if strict:
            raise PreprocessorError(message, kind=kind, loc=loc)
        sink.report(kind, message, loc=loc, severity=severity, phase="preprocess")

    def expand(line: str) -> str:
        # Fixpoint expansion with a small budget to tolerate self-reference.
        for _ in range(8):
            new = _WORD_RE.sub(lambda m: macros.get(m.group(0), m.group(0)), line)
            if new == line:
                break
            line = new
        return line

    for lineno, raw in enumerate(_strip_comments(text).splitlines(), start=1):
        stripped = raw.strip()
        active = all(active_stack)
        if stripped.startswith("#"):
            body = stripped[1:].strip()
            marker = _LINE_MARKER_RE.match(body)
            if marker is not None:
                # Forward line markers (they only make sense in active
                # regions; inside a dead #ifdef branch they vanish with
                # the rest of the text).
                out.append(f"# {marker.group(1)} {marker.group(2)}"
                           if active else "")
            elif body.startswith("include"):
                out.append("")
            elif body.startswith("define"):
                if active:
                    rest = body[len("define"):].strip()
                    m = re.match(r"([A-Za-z_][A-Za-z0-9_]*)\s*(\(.*)?", rest)
                    if m is None:
                        trouble("bad-define", f"bad #define: {raw!r}", lineno)
                    elif m.group(2) is not None and m.group(2).startswith("("):
                        # Lenient: leave uses unexpanded; they parse as calls
                        # to an implicitly declared function, which the
                        # normalizer models conservatively.
                        trouble(
                            "function-like-macro",
                            f"function-like macros are not supported: {raw!r}",
                            lineno,
                        )
                    else:
                        name = m.group(1)
                        macros[name] = rest[len(name):].strip()
                out.append("")
            elif body.startswith("undef"):
                if active:
                    macros.pop(body[len("undef"):].strip(), None)
                out.append("")
            elif body.startswith("ifdef"):
                active_stack.append(body[len("ifdef"):].strip() in macros)
                out.append("")
            elif body.startswith("ifndef"):
                active_stack.append(body[len("ifndef"):].strip() not in macros)
                out.append("")
            elif body.startswith("if"):
                # `#if <expr>` is not evaluated; lenient mode takes the
                # branch so the guarded code is still analyzed.
                trouble("unsupported-directive",
                        f"unsupported directive: {raw!r}", lineno)
                active_stack.append(True)
                out.append("")
            elif body.startswith("elif"):
                trouble("unsupported-directive",
                        f"unsupported directive: {raw!r}", lineno)
                if active_stack:
                    active_stack[-1] = False  # the first branch was taken
                out.append("")
            elif body.startswith("else"):
                if not active_stack:
                    trouble("unbalanced-conditional", "#else without #if", lineno)
                else:
                    active_stack[-1] = not active_stack[-1]
                out.append("")
            elif body.startswith("endif"):
                if not active_stack:
                    trouble("unbalanced-conditional", "#endif without #if", lineno)
                else:
                    active_stack.pop()
                out.append("")
            else:
                trouble("unsupported-directive",
                        f"unsupported directive: {raw!r}", lineno)
                out.append("")
        elif active:
            out.append(expand(raw))
        else:
            out.append("")
    if active_stack:
        trouble("unbalanced-conditional", "unterminated #if block",
                len(out) or 1)
    return "\n".join(out)


#: pycparser error text: ``file:line:col: message`` (older styles omit
#: the coordinates, e.g. ``file: At end of input``).
_PYC_ERR_RE = re.compile(r"^\s*(.+?):(\d+):(\d+):\s*(.*)$", re.DOTALL)


def _wrap_pycparser_error(exc: Exception, filename: str) -> ParseError:
    """Convert a pycparser ParseError into our structured :class:`ParseError`."""
    text = str(exc)
    m = _PYC_ERR_RE.match(text)
    if m is not None:
        loc = SourceLoc(file=m.group(1), line=int(m.group(2)), column=int(m.group(3)))
        message = m.group(4).strip() or "syntax error"
    else:
        loc = SourceLoc(file=filename)
        message = text.split(": ", 1)[-1].strip() or "syntax error"
    return ParseError(f"syntax error: {message}", loc=loc)


def parse_c(
    source: str,
    filename: str = "<source>",
    use_prelude: bool = True,
    defines: Optional[Dict[str, str]] = None,
    *,
    strict: bool = True,
    diagnostics: Optional[DiagnosticSink] = None,
) -> c_ast.FileAST:
    """Preprocess and parse C source text into a pycparser AST.

    When ``use_prelude`` is true (the default), the libc prelude is
    prepended; a ``#line``-style marker keeps the user code's line numbers
    intact so diagnostics and IR provenance refer to the original source.

    Syntax errors raise a structured :class:`ParseError` (with source
    coordinates when pycparser provides them).  With ``strict=False`` a
    syntax error is unrecoverable but non-fatal to the caller: a FATAL
    diagnostic is recorded on ``diagnostics`` and an *empty* AST is
    returned, so downstream stages produce an empty (trivially sound)
    program instead of crashing.
    """
    sink = diagnostics if diagnostics is not None else DiagnosticSink()
    body = preprocess(
        source, defines, strict=strict, diagnostics=sink, filename=filename
    )
    if use_prelude:
        text = PRELUDE + f'\n# 1 "{filename}"\n' + body
    else:
        text = f'# 1 "{filename}"\n' + body
    parser = c_parser.CParser()
    try:
        return parser.parse(text, filename)
    except c_parser.ParseError as exc:
        err = _wrap_pycparser_error(exc, filename)
        if strict:
            raise err from exc
        sink.report(
            err.kind, err.diagnostic.message,
            loc=err.loc, severity=Severity.FATAL, phase="parse",
        )
        return c_ast.FileAST(ext=[])
