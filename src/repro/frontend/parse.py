"""Parsing C source into a pycparser AST.

pycparser expects *preprocessed* C.  The benchmark suite is written as
self-contained, include-free C, but real-world conveniences still need
handling, so this module provides a deliberately small preprocessor:

- comment stripping (``/* ... */`` and ``// ...``),
- object-like ``#define NAME TOKENS`` substitution (no function-like
  macros — the suite does not use them),
- ``#undef``, and ``#ifdef``/``#ifndef``/``#else``/``#endif`` over the
  macros defined so far,
- ``#include`` lines are dropped (every program in the suite declares the
  externs it needs, and a standard prelude supplies the common libc
  declarations).

The prelude (:data:`PRELUDE`) declares the libc subset the analysis has
summaries for (:mod:`repro.core.interproc`), plus ``size_t``/``NULL``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from pycparser import c_ast, c_parser

__all__ = ["PreprocessorError", "preprocess", "parse_c", "PRELUDE"]


class PreprocessorError(Exception):
    """Raised on a directive the mini-preprocessor cannot handle."""


PRELUDE = """
typedef unsigned long size_t;
typedef long ptrdiff_t;
typedef struct _IO_FILE { int _fileno; } FILE;
extern void *malloc(size_t n);
extern void *calloc(size_t n, size_t size);
extern void *realloc(void *p, size_t n);
extern void free(void *p);
extern void exit(int status);
extern void abort(void);
extern void *memcpy(void *dst, void *src, size_t n);
extern void *memmove(void *dst, void *src, size_t n);
extern void *memset(void *dst, int c, size_t n);
extern int memcmp(void *a, void *b, size_t n);
extern char *strcpy(char *dst, char *src);
extern char *strncpy(char *dst, char *src, size_t n);
extern char *strcat(char *dst, char *src);
extern char *strncat(char *dst, char *src, size_t n);
extern int strcmp(char *a, char *b);
extern int strncmp(char *a, char *b, size_t n);
extern size_t strlen(char *s);
extern char *strchr(char *s, int c);
extern char *strrchr(char *s, int c);
extern char *strstr(char *hay, char *needle);
extern char *strtok(char *s, char *delim);
extern char *strdup(char *s);
extern int atoi(char *s);
extern long atol(char *s);
extern double atof(char *s);
extern long strtol(char *s, char **end, int base);
extern int printf(char *fmt, ...);
extern int fprintf(FILE *f, char *fmt, ...);
extern int sprintf(char *buf, char *fmt, ...);
extern int snprintf(char *buf, size_t n, char *fmt, ...);
extern int sscanf(char *s, char *fmt, ...);
extern int scanf(char *fmt, ...);
extern int fscanf(FILE *f, char *fmt, ...);
extern int puts(char *s);
extern int putchar(int c);
extern int getchar(void);
extern int getc(FILE *f);
extern int fgetc(FILE *f);
extern char *fgets(char *buf, int n, FILE *f);
extern int fputs(char *s, FILE *f);
extern int fputc(int c, FILE *f);
extern FILE *fopen(char *path, char *mode);
extern int fclose(FILE *f);
extern size_t fread(void *buf, size_t size, size_t n, FILE *f);
extern size_t fwrite(void *buf, size_t size, size_t n, FILE *f);
extern int fseek(FILE *f, long off, int whence);
extern long ftell(FILE *f);
extern int feof(FILE *f);
extern void qsort(void *base, size_t n, size_t size,
                  int (*cmp)(void *, void *));
extern void *bsearch(void *key, void *base, size_t n, size_t size,
                     int (*cmp)(void *, void *));
extern int rand(void);
extern void srand(unsigned int seed);
extern int isalpha(int c);
extern int isdigit(int c);
extern int isalnum(int c);
extern int isspace(int c);
extern int isupper(int c);
extern int islower(int c);
extern int toupper(int c);
extern int tolower(int c);
extern int abs(int x);
extern long labs(long x);
extern double sqrt(double x);
extern double pow(double x, double y);
extern double floor(double x);
extern double ceil(double x);
extern double fabs(double x);
extern char *getenv(char *name);
extern FILE *stdin_file(void);
extern FILE *stdout_file(void);
extern FILE *stderr_file(void);
extern FILE *_stdin, *_stdout, *_stderr;
"""

_COMMENT_RE = re.compile(
    r"//[^\n]*|/\*.*?\*/", re.DOTALL
)

_WORD_RE = re.compile(r"\b[A-Za-z_][A-Za-z0-9_]*\b")


def _strip_comments(text: str) -> str:
    """Replace comments with equivalent whitespace, preserving line numbers."""

    def repl(m: "re.Match[str]") -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    return _COMMENT_RE.sub(repl, text)


def preprocess(text: str, defines: Optional[Dict[str, str]] = None) -> str:
    """Run the mini-preprocessor; returns line-count-preserving C text."""
    macros: Dict[str, str] = dict(defines or {})
    macros.setdefault("NULL", "((void*)0)")
    out: List[str] = []
    # Stack of booleans: is the current #if region active?
    active_stack: List[bool] = []

    def expand(line: str) -> str:
        # Fixpoint expansion with a small budget to tolerate self-reference.
        for _ in range(8):
            new = _WORD_RE.sub(lambda m: macros.get(m.group(0), m.group(0)), line)
            if new == line:
                break
            line = new
        return line

    for raw in _strip_comments(text).splitlines():
        stripped = raw.strip()
        active = all(active_stack)
        if stripped.startswith("#"):
            body = stripped[1:].strip()
            if body.startswith("include"):
                out.append("")
            elif body.startswith("define"):
                if active:
                    rest = body[len("define"):].strip()
                    m = re.match(r"([A-Za-z_][A-Za-z0-9_]*)\s*(\(.*)?", rest)
                    if m is None:
                        raise PreprocessorError(f"bad #define: {raw!r}")
                    if m.group(2) is not None and m.group(2).startswith("("):
                        raise PreprocessorError(
                            f"function-like macros are not supported: {raw!r}"
                        )
                    name = m.group(1)
                    macros[name] = rest[len(name):].strip()
                out.append("")
            elif body.startswith("undef"):
                if active:
                    macros.pop(body[len("undef"):].strip(), None)
                out.append("")
            elif body.startswith("ifdef"):
                active_stack.append(body[len("ifdef"):].strip() in macros)
                out.append("")
            elif body.startswith("ifndef"):
                active_stack.append(body[len("ifndef"):].strip() not in macros)
                out.append("")
            elif body.startswith("else"):
                if not active_stack:
                    raise PreprocessorError("#else without #if")
                active_stack[-1] = not active_stack[-1]
                out.append("")
            elif body.startswith("endif"):
                if not active_stack:
                    raise PreprocessorError("#endif without #if")
                active_stack.pop()
                out.append("")
            else:
                raise PreprocessorError(f"unsupported directive: {raw!r}")
        elif active:
            out.append(expand(raw))
        else:
            out.append("")
    if active_stack:
        raise PreprocessorError("unterminated #if block")
    return "\n".join(out)


def parse_c(
    source: str,
    filename: str = "<source>",
    use_prelude: bool = True,
    defines: Optional[Dict[str, str]] = None,
) -> c_ast.FileAST:
    """Preprocess and parse C source text into a pycparser AST.

    When ``use_prelude`` is true (the default), the libc prelude is
    prepended; a ``#line``-style marker keeps the user code's line numbers
    intact so diagnostics and IR provenance refer to the original source.
    """
    body = preprocess(source, defines)
    if use_prelude:
        text = PRELUDE + f'\n# 1 "{filename}"\n' + body
    else:
        text = f'# 1 "{filename}"\n' + body
    parser = c_parser.CParser()
    return parser.parse(text, filename)
