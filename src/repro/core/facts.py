"""The points-to fact base.

A fact ``pointsTo(x, y)`` records that the location named by normalized
reference ``x`` may hold the address of the location named by normalized
reference ``y`` (paper §3; under the "Offsets" instance, "the value stored
at offset j in s may be the address of t plus k", §4.2.2).

The base maintains two indices:

- by source reference (``points_to``), driving rule application;
- by source *object* (``refs_of_obj``), driving the lazy byte-window
  matching of the "Offsets" resolve.

The total number of facts is the paper's "number of points-to edges"
(Figure 6), used as the space-cost proxy for each algorithm.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..ir.objects import AbstractObject
from ..ir.refs import Ref

__all__ = ["FactBase"]


class FactBase:
    """Set of ``pointsTo`` facts with the indices the engine needs."""

    def __init__(self) -> None:
        self._succ: Dict[Ref, Set[Ref]] = {}
        self._by_obj: Dict[AbstractObject, Set[Ref]] = {}

    # ------------------------------------------------------------------
    def add(self, src: Ref, dst: Ref) -> bool:
        """Record ``pointsTo(src, dst)``; True if the fact is new."""
        targets = self._succ.get(src)
        if targets is None:
            targets = set()
            self._succ[src] = targets
            self._by_obj.setdefault(src.obj, set()).add(src)
        if dst in targets:
            return False
        targets.add(dst)
        return True

    def points_to(self, src: Ref) -> FrozenSet[Ref]:
        """The current points-to set of ``src`` (empty if none)."""
        targets = self._succ.get(src)
        return frozenset(targets) if targets else frozenset()

    def has(self, src: Ref, dst: Ref) -> bool:
        targets = self._succ.get(src)
        return targets is not None and dst in targets

    # ------------------------------------------------------------------
    def refs_of_obj(self, obj: AbstractObject) -> FrozenSet[Ref]:
        """All source references into ``obj`` that currently hold facts."""
        refs = self._by_obj.get(obj)
        return frozenset(refs) if refs else frozenset()

    def sources(self) -> Iterator[Ref]:
        """All references with a non-empty points-to set."""
        return iter(self._succ)

    def all_facts(self) -> Iterator[Tuple[Ref, Ref]]:
        for src, targets in self._succ.items():
            for dst in targets:
                yield src, dst

    # ------------------------------------------------------------------
    def edge_count(self) -> int:
        """Total number of points-to facts (Figure 6's metric)."""
        return sum(len(t) for t in self._succ.values())

    def __len__(self) -> int:
        return self.edge_count()

    def __repr__(self) -> str:
        return f"<FactBase: {self.edge_count()} facts, {len(self._succ)} sources>"

    # ------------------------------------------------------------------
    def pretty(self, limit: int = 0) -> str:
        """Human-readable dump, sorted for reproducibility."""
        lines: List[str] = []
        for src in sorted(self._succ, key=repr):
            targets = ", ".join(sorted(map(repr, self._succ[src])))
            lines.append(f"{src!r} -> {{{targets}}}")
            if limit and len(lines) >= limit:
                lines.append("...")
                break
        return "\n".join(lines)
