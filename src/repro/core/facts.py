"""The points-to fact base.

A fact ``pointsTo(x, y)`` records that the location named by normalized
reference ``x`` may hold the address of the location named by normalized
reference ``y`` (paper §3; under the "Offsets" instance, "the value stored
at offset j in s may be the address of t plus k", §4.2.2).

The base maintains two indices:

- by source reference (``points_to``), driving rule application;
- by source *object* (``refs_of_obj``), driving the lazy byte-window
  matching of the "Offsets" resolve.

The total number of facts is the paper's "number of points-to edges"
(Figure 6), used as the space-cost proxy for each algorithm; it is
maintained incrementally in :meth:`add` so ``edge_count`` is O(1).

Two access layers
-----------------

``points_to``/``refs_of_obj`` return *frozenset copies* — the stable
public API for clients and tests.  The engine's hot loops instead use
``points_to_view``/``refs_of_obj_view``, which expose the live internal
sets without allocating.  A view must not be iterated across a mutation
of the same source's target set (resp. the same object's ref set);
engine call sites that may re-enter ``add`` on the iterated key snapshot
the view first (see ``Engine.subscribe`` / ``Engine.install_window``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from ..ir.objects import AbstractObject
from ..ir.refs import Ref

__all__ = ["FactBase"]

_EMPTY: frozenset = frozenset()


class FactBase:
    """Set of ``pointsTo`` facts with the indices the engine needs."""

    def __init__(self) -> None:
        self._succ: Dict[Ref, Set[Ref]] = {}
        self._by_obj: Dict[AbstractObject, Set[Ref]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    def add(self, src: Ref, dst: Ref) -> bool:
        """Record ``pointsTo(src, dst)``; True if the fact is new."""
        targets = self._succ.get(src)
        if targets is None:
            targets = set()
            self._succ[src] = targets
            self._by_obj.setdefault(src.obj, set()).add(src)
        if dst in targets:
            return False
        targets.add(dst)
        self._count += 1
        return True

    def points_to(self, src: Ref) -> FrozenSet[Ref]:
        """The current points-to set of ``src`` (empty if none).

        Returns an immutable copy, safe to hold across further ``add``
        calls; the engine's hot loops use :meth:`points_to_view` instead.
        """
        targets = self._succ.get(src)
        return frozenset(targets) if targets else _EMPTY

    def points_to_view(self, src: Ref):
        """Allocation-free view of ``src``'s points-to set.

        The returned set is the live internal index: do not iterate it
        across an ``add(src, ...)`` on the same source.
        """
        return self._succ.get(src, _EMPTY)

    def has(self, src: Ref, dst: Ref) -> bool:
        targets = self._succ.get(src)
        return targets is not None and dst in targets

    # ------------------------------------------------------------------
    def refs_of_obj(self, obj: AbstractObject) -> FrozenSet[Ref]:
        """All source references into ``obj`` that currently hold facts."""
        refs = self._by_obj.get(obj)
        return frozenset(refs) if refs else _EMPTY

    def refs_of_obj_view(self, obj: AbstractObject):
        """Allocation-free view of ``obj``'s source references (live set)."""
        return self._by_obj.get(obj, _EMPTY)

    def sources(self) -> Iterator[Ref]:
        """All references with a non-empty points-to set."""
        return iter(self._succ)

    def all_facts(self) -> Iterator[Tuple[Ref, Ref]]:
        for src, targets in self._succ.items():
            for dst in targets:
                yield src, dst

    # ------------------------------------------------------------------
    def edge_count(self) -> int:
        """Total number of points-to facts (Figure 6's metric); O(1)."""
        return self._count

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"<FactBase: {self._count} facts, {len(self._succ)} sources>"

    # ------------------------------------------------------------------
    def pretty(self, limit: int = 0) -> str:
        """Human-readable dump, sorted for reproducibility."""
        lines: List[str] = []
        for src in sorted(self._succ, key=repr):
            targets = ", ".join(sorted(map(repr, self._succ[src])))
            lines.append(f"{src!r} -> {{{targets}}}")
            if limit and len(lines) >= limit:
                lines.append("...")
                break
        return "\n".join(lines)
