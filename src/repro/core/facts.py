"""The points-to fact base, on an interned-integer data plane.

A fact ``pointsTo(x, y)`` records that the location named by normalized
reference ``x`` may hold the address of the location named by normalized
reference ``y`` (paper §3; under the "Offsets" instance, "the value stored
at offset j in s may be the address of t plus k", §4.2.2).

Representation
--------------

Every distinct normalized :class:`~repro.ir.refs.Ref` is *interned* to a
small dense integer (its **ref ID**, assigned in first-touch discovery
order).  Points-to sets are stored as Python-int **bitsets** over target
IDs: membership is one ``&``, union is one ``|``, and a propagation delta
is ``new & ~old`` — all single C-level big-int operations instead of
per-element hash-set traffic.

Source IDs additionally live in a **union-find** forest: the engine's
online cycle collapsing (:mod:`repro.core.engine`) merges the sources of
a copy-edge cycle into one equivalence class, after which the class's
points-to set is stored once, on the representative.  This is sound and
precision-preserving because every member of a copy-edge SCC provably
holds the *same* set at the least fixpoint; merging merely reaches that
shared set without propagating around the cycle edge by edge.  The
logical per-reference facts are preserved exactly: a set bit on a
representative counts once **per member**, so :meth:`edge_count` (the
paper's "number of points-to edges", Figure 6) is identical to the
uncollapsed count and is maintained incrementally in O(1).

Two access layers
-----------------

The public, ``Ref``-keyed API (``add``/``points_to``/``has``/
``refs_of_obj``/``all_facts``) is unchanged from the dict-of-sets
implementation — translation between ``Ref`` objects and IDs happens at
this boundary, so clients, tests, and :class:`~repro.core.engine.Result`
never see an ID.  The engine's hot loops use the ID layer
(:meth:`intern`, :meth:`add_id`, :meth:`add_bits`, :meth:`pts_bits`,
:meth:`union`, :meth:`decode`) and never allocate per-fact objects.

The pre-interning implementation is retained verbatim as
:class:`repro.core.reference.ReferenceFactBase` and is differentially
tested against this one over seeded random programs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..ir.objects import AbstractObject
from ..ir.refs import Ref

__all__ = ["FactBase"]

_EMPTY: frozenset = frozenset()


class FactBase:
    """Set of ``pointsTo`` facts with the indices the engine needs."""

    __slots__ = (
        "_ids",
        "_refs",
        "_pts",
        "_parent",
        "_members",
        "_by_obj",
        "_registered",
        "_count",
    )

    def __init__(self) -> None:
        #: Ref -> ID (the interning table).
        self._ids: Dict[Ref, int] = {}
        #: ID -> Ref (decode table; index is the discovery order).
        self._refs: List[Ref] = []
        #: representative ID -> bitset of target IDs (0 for non-reps).
        self._pts: List[int] = []
        #: union-find parent pointers (path-compressed).
        self._parent: List[int] = []
        #: representative ID -> member IDs (small classes merged into large).
        self._members: List[List[int]] = []
        #: object -> member refs with a non-empty points-to set.
        self._by_obj: Dict[AbstractObject, Set[Ref]] = {}
        #: ID -> already present in ``_by_obj``.
        self._registered: List[bool] = []
        #: total logical facts (one per member per set bit); O(1) queries.
        self._count = 0

    # ------------------------------------------------------------------
    # The ID layer (engine hot path).
    # ------------------------------------------------------------------
    def intern(self, ref: Ref) -> int:
        """The dense ID of ``ref``, assigning the next one on first touch.

        The ID is cached on the ref instance itself (``_fb``/``_id``
        slots): refs are canonicalized per strategy, so the same instance
        is interned over and over, and two attribute loads beat a dict
        probe (which must hash).  The cache is validated against this
        fact base — a canonical ref outliving one engine run re-interns
        cleanly in the next.
        """
        try:
            if ref._fb is self:
                return ref._id
        except AttributeError:
            pass
        rid = self._ids.get(ref)
        if rid is None:
            rid = len(self._refs)
            self._ids[ref] = rid
            self._refs.append(ref)
            self._pts.append(0)
            self._parent.append(rid)
            self._members.append([rid])
            self._registered.append(False)
        ref._fb = self
        ref._id = rid
        return rid

    def id_of(self, ref: Ref) -> Optional[int]:
        """The ID of ``ref`` if already interned (query path; no assign)."""
        return self._ids.get(ref)

    def ref_of(self, rid: int) -> Ref:
        return self._refs[rid]

    def find(self, rid: int) -> int:
        """Union-find representative of ``rid`` (path-compressed)."""
        parent = self._parent
        root = rid
        while parent[root] != root:
            root = parent[root]
        while parent[rid] != root:
            parent[rid], rid = root, parent[rid]
        return root

    def members_of(self, rid: int) -> List[int]:
        """All IDs merged into ``rid``'s class (including itself)."""
        return self._members[self.find(rid)]

    def class_size(self, rid: int) -> int:
        return len(self._members[self.find(rid)])

    def pts_bits(self, rid: int) -> int:
        """The points-to bitset of ``rid``'s class."""
        return self._pts[self.find(rid)]

    def add_id(self, src_id: int, dst_id: int) -> Tuple[int, int]:
        """Record ``pointsTo(src, dst)`` at the ID layer.

        Returns ``(gain, rep)``: the number of new logical facts (0 for a
        duplicate, else the class size of ``src``) and the representative
        the bit landed on.
        """
        parent = self._parent
        rep = parent[src_id]
        if parent[rep] != rep:
            rep = self.find(rep)
        bit = 1 << dst_id
        cur = self._pts[rep]
        if cur & bit:
            return 0, rep
        self._pts[rep] = cur | bit
        gain = len(self._members[rep])
        self._count += gain
        if not cur:
            self._register(rep)
        return gain, rep

    def add_bits(self, src_id: int, bits: int) -> Tuple[int, int, int]:
        """Union a whole delta bitset into ``src``'s set.

        Returns ``(new_bits, gain, rep)`` where ``new_bits`` is the part
        of ``bits`` that was actually new (``bits & ~old``).
        """
        parent = self._parent
        rep = parent[src_id]
        if parent[rep] != rep:
            rep = self.find(rep)
        cur = self._pts[rep]
        new = bits & ~cur
        if not new:
            return 0, 0, rep
        self._pts[rep] = cur | new
        gain = new.bit_count() * len(self._members[rep])
        self._count += gain
        if not cur:
            self._register(rep)
        return new, gain, rep

    def union(self, a: int, b: int) -> Tuple[int, int, int, int]:
        """Merge the classes of ``a`` and ``b`` (copy-edge SCC collapse).

        Returns ``(rep, dead, gain, fresh)``: the surviving and absorbed
        representatives, the number of logical facts gained (each side's
        members acquire the other side's bits), and the ``fresh`` bitset
        of targets new to at least one side — the delta the engine must
        re-deliver to the merged class's subscribers and edges.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra, ra, 0, 0
        members = self._members
        ma, mb = members[ra], members[rb]
        if len(ma) < len(mb):
            ra, rb, ma, mb = rb, ra, mb, ma
        pts = self._pts
        set_a, set_b = pts[ra], pts[rb]
        merged = set_a | set_b
        gain = (
            (merged & ~set_a).bit_count() * len(ma)
            + (merged & ~set_b).bit_count() * len(mb)
        )
        pts[ra] = merged
        pts[rb] = 0
        self._parent[rb] = ra
        ma.extend(mb)
        members[rb] = []
        self._count += gain
        if merged:
            self._register(ra)
        return ra, rb, gain, merged ^ (set_a & set_b)

    def decode(self, bits: int) -> List[Ref]:
        """The refs named by a bitset, in ascending-ID order."""
        refs = self._refs
        out: List[Ref] = []
        while bits:
            low = bits & -bits
            out.append(refs[low.bit_length() - 1])
            bits ^= low
        return out

    def decode_items(self, bits: int) -> List[Tuple[int, Ref]]:
        """``(ID, ref)`` pairs named by a bitset, in ascending-ID order.

        The subscription machinery keys its seen-sets on interned IDs
        (one per logical ref), so the drains decode IDs and refs in one
        pass instead of re-deriving the ID from the instance.
        """
        refs = self._refs
        out: List[Tuple[int, Ref]] = []
        while bits:
            low = bits & -bits
            rid = low.bit_length() - 1
            out.append((rid, refs[rid]))
            bits ^= low
        return out

    def _register(self, rep: int) -> None:
        """Index every member of a now-non-empty class in ``_by_obj``."""
        registered = self._registered
        refs = self._refs
        by_obj = self._by_obj
        for m in self._members[rep]:
            if not registered[m]:
                registered[m] = True
                ref = refs[m]
                bucket = by_obj.get(ref.obj)
                if bucket is None:
                    by_obj[ref.obj] = bucket = set()
                bucket.add(ref)

    # ------------------------------------------------------------------
    # The Ref-keyed public API (clients, tests, Result boundary).
    # ------------------------------------------------------------------
    def add(self, src: Ref, dst: Ref) -> bool:
        """Record ``pointsTo(src, dst)``; True if the fact is new."""
        gain, _rep = self.add_id(self.intern(src), self.intern(dst))
        return gain > 0

    def points_to(self, src: Ref) -> FrozenSet[Ref]:
        """The current points-to set of ``src`` (empty if none).

        Returns an immutable copy, safe to hold across further ``add``
        calls; the engine's hot loops use the bitset layer instead.
        """
        rid = self._ids.get(src)
        if rid is None:
            return _EMPTY
        bits = self._pts[self.find(rid)]
        return frozenset(self.decode(bits)) if bits else _EMPTY

    def points_to_view(self, src: Ref):
        """Decoded snapshot of ``src``'s points-to set.

        Kept for API compatibility with the dict-of-sets fact base; under
        the bitset representation this is a frozenset decoded on demand
        (bit-level readers use :meth:`pts_bits`).
        """
        return self.points_to(src)

    def has(self, src: Ref, dst: Ref) -> bool:
        sid = self._ids.get(src)
        if sid is None:
            return False
        did = self._ids.get(dst)
        if did is None:
            return False
        return bool(self._pts[self.find(sid)] >> did & 1)

    # ------------------------------------------------------------------
    def refs_of_obj(self, obj: AbstractObject) -> FrozenSet[Ref]:
        """All source references into ``obj`` that currently hold facts."""
        refs = self._by_obj.get(obj)
        return frozenset(refs) if refs else _EMPTY

    def refs_of_obj_view(self, obj: AbstractObject):
        """Allocation-free view of ``obj``'s source references (live set)."""
        return self._by_obj.get(obj, _EMPTY)

    def sources(self) -> Iterator[Ref]:
        """All references with a non-empty points-to set (discovery order)."""
        refs = self._refs
        return (refs[i] for i, reg in enumerate(self._registered) if reg)

    def all_facts(self) -> Iterator[Tuple[Ref, Ref]]:
        refs = self._refs
        registered = self._registered
        for rid in range(len(refs)):
            if registered[rid]:
                src = refs[rid]
                for dst in self.decode(self._pts[self.find(rid)]):
                    yield src, dst

    # ------------------------------------------------------------------
    def num_refs(self) -> int:
        """How many distinct references have been interned so far."""
        return len(self._refs)

    def edge_count(self) -> int:
        """Total number of points-to facts (Figure 6's metric); O(1)."""
        return self._count

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        n_sources = sum(1 for reg in self._registered if reg)
        return f"<FactBase: {self._count} facts, {n_sources} sources>"

    # ------------------------------------------------------------------
    def pretty(self, limit: int = 0) -> str:
        """Human-readable dump, sorted for reproducibility."""
        lines: List[str] = []
        for src in sorted(self.sources(), key=repr):
            targets = ", ".join(sorted(map(repr, self.points_to(src))))
            lines.append(f"{src!r} -> {{{targets}}}")
            if limit and len(lines) >= limit:
                lines.append("...")
                break
        return "\n".join(lines)
