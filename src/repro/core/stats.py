"""Analysis counters and the fact budget.

:class:`EngineStats` reproduces the paper's instrumentation (Figure 3 —
lookup/resolve call counts, structure involvement, type-mismatch rates)
plus engine-level measurements that back Figures 5 and 6 and the
observability layer (:mod:`repro.obs`).  It is deliberately a plain
dataclass of numbers: every field must be serializable (``as_dict``),
mergeable (``merge``), and comparable across runs — the bench harness
gates most of them byte-for-byte against ``BENCH_engine.json``.

Counter families, and whether the baseline precision gate may include
them:

- **Figure-3 instrumentation** (``lookup_*``/``resolve_*``) and
  **per-rule firings** (``rule1_firings`` … ``rule5_firings``) are
  determined by the least fixpoint — order-independent, gated.
- **Structure counts** (``facts``, ``copy_edges``, ``windows``,
  ``calls_bound``) are deduplicated sets at fixpoint — gated.
- **How-counters** (``sccs_collapsed``, ``props_saved``,
  ``dense_rounds``, ``frontier_bits_suppressed``) depend on propagation
  order and the selected backend — reported, never gated.
- **Backend identity** (``backend``) names the propagation backend that
  produced the result (:mod:`repro.core.backend`) — reported, never
  gated, because every backend reaches the identical fixpoint.
- **Session counters** (``incremental_solves``, ``delta_stmts``,
  ``reused_graph_refs``) describe *how the solve was reached* (from
  scratch vs. incrementally via
  :meth:`repro.session.AnalysisSession.add_statements`) — reported,
  never gated, because an incremental re-solve provably computes the
  same fixpoint as a from-scratch one.
- **Link/modular counters** (``tus_linked``, ``externs_resolved``,
  ``summaries_computed``, ``scc_parallel_batches``,
  ``modular_pool_failures``) describe program provenance
  (:mod:`repro.link`) and the modular solve schedule
  (:mod:`repro.core.modular`) — reported, never gated: linked and
  modular solves reach the identical fixpoint, these counters only
  record how the program was assembled and scheduled.
- **Demand/store counters** (``demanded_facts``, ``demand_widenings``,
  ``store_hits``, ``store_misses``) describe how an answer was reached —
  a demand-restricted fixpoint (:mod:`repro.core.demand`) or a
  content-addressed store lookup (:mod:`repro.store`) — reported, never
  gated: demanded answers are differentially tested equal to the
  exhaustive fixpoint, and a store hit replays a previously solved one.

:class:`AnalysisBudgetExceeded` is raised by every drain variant — the
layered untraced drain, the traced drain, and incremental re-solves —
through the same accounting chokepoint (``Engine._account``), so
``max_facts`` bounds all of them identically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable

__all__ = ["AnalysisBudgetExceeded", "EngineStats"]


class AnalysisBudgetExceeded(Exception):
    """Raised when the fact count exceeds the configured budget."""


@dataclass
class EngineStats:
    """Counters reproducing the paper's instrumentation (Figure 3) plus
    engine-level measurements (Figures 5 and 6)."""

    lookup_calls: int = 0
    lookup_struct_calls: int = 0
    lookup_mismatch_calls: int = 0
    resolve_calls: int = 0
    resolve_struct_calls: int = 0
    resolve_mismatch_calls: int = 0
    #: Figure-2 rule firings.  Rule 1 fires once per AddrOf statement;
    #: rules 2, 4 and 5 fire once per (statement, distinct pointee) —
    #: the granularity of the paper's inference rules — and rule 3 once
    #: per Copy statement.  All five are order-independent (determined
    #: by the least fixpoint), so they are safe to gate in baselines.
    rule1_firings: int = 0
    rule2_firings: int = 0
    rule3_firings: int = 0
    rule4_firings: int = 0
    rule5_firings: int = 0
    facts: int = 0
    copy_edges: int = 0
    windows: int = 0
    calls_bound: int = 0
    #: Copy-edge cycle-collapse events (each merges >= 2 sources).
    sccs_collapsed: int = 0
    #: Edge propagations skipped because the edge is internal to a
    #: collapsed class, or fully suppressed by a difference-propagation
    #: frontier (the work the optimization eliminated).
    props_saved: int = 0
    #: Propagation backend that produced this result
    #: (:mod:`repro.core.backend` registry key; "" for the reference
    #: solver, which predates the backend layer).
    backend: str = ""
    #: Dense propagation rounds executed by the numpy backend (0 under
    #: other backends, and the observable signal that the numpy backend
    #: fell back to diffprop).
    dense_rounds: int = 0
    #: 1 when the ``accel`` backend found (and used) the optionally
    #: compiled drain module; 0 when it fell back to the generated
    #: Python drain, or under any other backend.  Reported, never gated.
    accel_active: int = 0
    #: Delta bits withheld by difference-propagation frontiers because
    #: the receiving edge/window/subscriber-list had already been sent
    #: them (duplicate work the bigint drain would re-dedup downstream).
    frontier_bits_suppressed: int = 0
    #: Incremental re-solves performed on this engine
    #: (:meth:`repro.core.engine.Engine.add_statements` calls).
    incremental_solves: int = 0
    #: Statements seeded by incremental re-solves (sum over all of them).
    delta_stmts: int = 0
    #: Interned refs already in the constraint graph when the most recent
    #: incremental re-solve started — the graph size that was *reused*
    #: rather than rebuilt.  0 for from-scratch solves.
    reused_graph_refs: int = 0
    #: Translation units merged by the linker to build the analyzed
    #: program (:mod:`repro.link`); 0 for single-TU programs.  Copied
    #: from ``program.link_info`` so every solve of a linked program
    #: reports its provenance.
    tus_linked: int = 0
    #: Cross-TU extern declarations / prototypes the linker bound to a
    #: definition in another TU; 0 for single-TU programs.
    externs_resolved: int = 0
    #: Per-function points-to summaries computed by the modular
    #: bottom-up solve mode (:mod:`repro.core.modular`); 0 for the
    #: whole-program fixpoint.
    summaries_computed: int = 0
    #: SCC batches the modular mode fanned out to worker processes
    #: (``ProcessPoolExecutor``); 0 when solved serially.
    scc_parallel_batches: int = 0
    #: Worker-pool failures the modular mode degraded from (pre-seeding
    #: fell back to the exact serial schedule); each one also records a
    #: WARNING diagnostic.  Reported, never gated.
    modular_pool_failures: int = 0
    #: Facts computed by a demand-driven solve (:mod:`repro.core.demand`)
    #: — the size of the demanded fragment's fixpoint, to compare against
    #: the exhaustive ``facts``.  0 for exhaustive solves.
    demanded_facts: int = 0
    #: Times a demand-driven solve widened to the exhaustive engine
    #: because a query escaped the demanded fragment (function pointers,
    #: lenient-mode havoc objects).  Reported, never gated.
    demand_widenings: int = 0
    #: Results served from the content-addressed result store
    #: (:mod:`repro.store`) instead of a fresh fixpoint.  Reported,
    #: never gated: a hit replays a previously solved identical program.
    store_hits: int = 0
    #: Store lookups that missed (key absent, or a corrupted entry
    #: degraded to a miss with a WARNING diagnostic).
    store_misses: int = 0
    solve_seconds: float = 0.0

    @property
    def lookup_struct_pct(self) -> float:
        """Figure 3 column "calls to lookup ... involving structures" (%)."""
        return 100.0 * self.lookup_struct_calls / self.lookup_calls if self.lookup_calls else 0.0

    @property
    def resolve_struct_pct(self) -> float:
        return 100.0 * self.resolve_struct_calls / self.resolve_calls if self.resolve_calls else 0.0

    @property
    def lookup_mismatch_pct(self) -> float:
        """Figure 3 column "of those, types did not match" (%)."""
        return (
            100.0 * self.lookup_mismatch_calls / self.lookup_struct_calls
            if self.lookup_struct_calls
            else 0.0
        )

    @property
    def resolve_mismatch_pct(self) -> float:
        return (
            100.0 * self.resolve_mismatch_calls / self.resolve_struct_calls
            if self.resolve_struct_calls
            else 0.0
        )

    # ------------------------------------------------------------------
    # Serialization / aggregation (bench harness, JSON baselines).
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """All counters (plus the backend name) as a flat dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "EngineStats":
        """Rebuild stats from :meth:`as_dict` output (extra keys ignored,
        missing keys — e.g. a pre-collapse baseline — default to 0)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in names})

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Field-wise sum of two stats records (counters and seconds).

        The one non-numeric field, ``backend``, merges by agreement:
        equal (or one-sided) values survive, disagreeing ones become
        ``"mixed"``.
        """
        vals: Dict[str, object] = {}
        for f in fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if f.name == "backend":
                vals[f.name] = a if a == b or not b else (b if not a else "mixed")
            else:
                vals[f.name] = a + b
        return EngineStats(**vals)

    @classmethod
    def merged(cls, stats: Iterable["EngineStats"]) -> "EngineStats":
        """Field-wise sum of any number of stats records."""
        total = cls()
        for s in stats:
            total = total.merge(s)
        return total
