"""Figure-2 rule installation: one function per paper inference rule.

The paper states pointer analysis as five inference rules over the
assignment forms (Figure 2), each parameterized by the tunable
``normalize`` / ``lookup`` / ``resolve``.  This module is the *semi-
naive compilation* of those rules: :func:`setup_stmt` is called once
per statement and installs the rule as persistent structure in the
:class:`~repro.core.graph.ConstraintGraph` —

- **Rule 1** (``s = (τ) &t.β``) fires immediately, seeding one fact.
- **Rule 3** (``s = (τ) t.β``) fires immediately: one ``resolve`` call
  whose result (pair list or window) is installed as copy edges.
- **Rules 2/4/5** have a ``pointsTo(p̂, …)`` premise, so they install a
  *subscription* on the pointer's normalized ref; the closure runs once
  per distinct pointee, performs the ``lookup``/``resolve``, and
  installs the consequences.  The drain loops in
  :mod:`repro.core.worklist` (traced and untraced alike) re-enter these
  same closures — the rule logic exists exactly once.  Each such
  subscription additionally carries a *descriptor* — a small tuple
  naming the rule case and its closure-fixed operands — that the
  specialized drains (:mod:`repro.core.codegen`, the numpy backend's
  fused rounds) use to dispatch the untraced fast path inline instead
  of through the closure.  Descriptor dispatch must stay behaviorally
  identical to the closure's ``eng.tracer is None`` branch; the traced
  branch never runs under a specialized drain (tracing forces the
  bigint backend, which always calls the closure).
- **Pointer arithmetic** implements Assumption 1 (§4.2.1): the result
  may point to any sub-field of the pointee's outermost object (or the
  ``Unknown`` value in pessimistic mode).
- **Calls** bind the context-insensitive interprocedural layer
  (parameter/return ``resolve`` copies, function pointers via a
  subscription on the callee, library summaries — §3 "implemented ...
  context-insensitively").

Each function takes the :class:`~repro.core.engine.Engine` because the
rules' side effects are exactly the engine's narrow services: the
instrumented strategy calls (``_lookup``/``_resolve`` — Figure-3
counters), fact/edge/window installation on the graph, and provenance
contexts when tracing.  The functions hold no state of their own —
given the same graph, strategy, and statement they install the same
structure, which is why traced/untraced and incremental/from-scratch
solves agree.
"""

from __future__ import annotations

from ..ir.objects import AbstractObject, ObjKind
from ..ir.refs import OffsetRef, Ref
from ..ir.stmts import (
    AddrOf,
    Call,
    Copy,
    FieldAddr,
    Load,
    PtrArith,
    Stmt,
    Store,
    declared_pointee,
)

__all__ = [
    "setup_stmt",
    "setup_addrof",
    "setup_fieldaddr",
    "setup_copy",
    "setup_load",
    "setup_store",
    "setup_ptr_arith",
    "setup_call",
    "bind_call",
    "is_object_start",
]


def setup_addrof(eng, st: AddrOf) -> None:
    """Rule 1: ``s = (τ) &t.β`` — seed ``pointsTo(ŝ, t.β̂)``."""
    eng.stats.rule1_firings += 1
    if eng.tracer is not None:
        eng._ctx = eng.tracer.new_ctx(1, st)
    eng.add_fact(eng.norm_obj(st.lhs), eng.norm_ref(st.target))
    eng._ctx = 0


def setup_fieldaddr(eng, st: FieldAddr) -> None:
    """Rule 2: ``s = (τ) &((*p).α)`` — ``lookup`` per pointee of p."""
    tau_p = declared_pointee(st.ptr)
    ptr_ref = eng.norm_obj(st.ptr)
    lhs_id = eng.facts.intern(eng.norm_obj(st.lhs))
    ptr_id = eng.facts.intern(ptr_ref)
    pkey = eng._fused_key("L", tau_p, st.path, None)

    def on_pointee(
        tgt: Ref, tau_p=tau_p, path=st.path, lhs_id=lhs_id,
        ptr_id=ptr_id, pkey=pkey, st=st,
    ) -> None:
        eng.stats.rule2_firings += 1
        if eng.tracer is None:
            # Untraced: one fused memo probe covers the lookup and the
            # batched bitset union (identical facts and counters; see
            # Engine._lookup_add_bits).
            eng._lookup_add_bits(lhs_id, pkey, tau_p, path, tgt)
            return
        intern = eng.facts.intern
        add = eng._add_fact_ids
        eng._ctx = eng.tracer.new_ctx(
            2, st, ((ptr_id, intern(tgt)),)
        )
        for r in eng._lookup(tau_p, path, tgt):
            add(lhs_id, intern(r))
        eng._ctx = 0

    eng.subscribe(ptr_ref, on_pointee, (2, lhs_id, pkey, tau_p, st.path))


def setup_copy(eng, st: Copy) -> None:
    """Rule 3: ``s = (τ) t.β`` — sizeof(typeof(s)) bytes are copied."""
    eng.stats.rule3_firings += 1
    if eng.tracer is None:
        eng._resolve_install_once(
            eng.norm_obj(st.lhs), eng.norm_ref(st.rhs), st.lhs.type
        )
        return
    eng._ctx = eng.tracer.new_ctx(3, st)
    res = eng._resolve(eng.norm_obj(st.lhs), eng.norm_ref(st.rhs), st.lhs.type)
    eng.install_resolve_result(res)
    eng._ctx = 0


def setup_load(eng, st: Load) -> None:
    """Rule 4: ``s = (τ) *q`` — ``resolve`` per pointee of q."""
    lhs_ref = eng.norm_obj(st.lhs)
    lhs_type = st.lhs.type
    ptr_ref = eng.norm_obj(st.ptr)
    ptr_id = eng.facts.intern(ptr_ref)
    pkey = eng._fused_key("Rd", lhs_type, id(lhs_ref), lhs_ref)

    def on_pointee(
        tgt: Ref, lhs_ref=lhs_ref, lhs_type=lhs_type,
        ptr_id=ptr_id, pkey=pkey, st=st,
    ) -> None:
        eng.stats.rule4_firings += 1
        if eng.tracer is None:
            eng._resolve_install(pkey, lhs_ref, tgt, lhs_type, tgt)
            return
        eng._ctx = eng.tracer.new_ctx(
            4, st, ((ptr_id, eng.facts.intern(tgt)),)
        )
        eng.install_resolve_result(eng._resolve(lhs_ref, tgt, lhs_type))
        eng._ctx = 0

    eng.subscribe(ptr_ref, on_pointee, (4, pkey, lhs_ref, lhs_type))


def setup_store(eng, st: Store) -> None:
    """Rule 5: ``*p = (τ_p) t`` — the type p is declared to point to
    determines how many bytes are copied (Complication 4)."""
    tau_p = declared_pointee(st.ptr)
    rhs_ref = eng.norm_obj(st.rhs)
    ptr_ref = eng.norm_obj(st.ptr)
    ptr_id = eng.facts.intern(ptr_ref)
    pkey = eng._fused_key("Rs", tau_p, id(rhs_ref), rhs_ref)

    def on_pointee(
        tgt: Ref, tau_p=tau_p, rhs_ref=rhs_ref, ptr_id=ptr_id,
        pkey=pkey, st=st,
    ) -> None:
        eng.stats.rule5_firings += 1
        if eng.tracer is None:
            eng._resolve_install(pkey, tgt, rhs_ref, tau_p, tgt)
            return
        eng._ctx = eng.tracer.new_ctx(
            5, st, ((ptr_id, eng.facts.intern(tgt)),)
        )
        eng.install_resolve_result(eng._resolve(tgt, rhs_ref, tau_p))
        eng._ctx = 0

    eng.subscribe(ptr_ref, on_pointee, (5, pkey, rhs_ref, tau_p))


def setup_ptr_arith(eng, st: PtrArith) -> None:
    """Assumption 1 (§4.2.1): the result may point to any sub-field of
    the outermost object containing a pointee of any operand (or, for
    refining strategies, a narrower ``arith_refs`` set).  In pessimistic
    mode the result is the special ``Unknown`` value instead."""
    lhs_id = eng.facts.intern(eng.norm_obj(st.lhs))
    for op in st.operands:
        op_ref = eng.norm_obj(op)
        op_id = eng.facts.intern(op_ref)

        def on_pointee(tgt: Ref, lhs_id=lhs_id, op_id=op_id, st=st) -> None:
            intern = eng.facts.intern
            add = eng._add_fact_ids
            if eng.tracer is not None:
                eng._ctx = eng.tracer.new_ctx(
                    0, st, ((op_id, intern(tgt)),),
                    label="assumption-1 (pointer arithmetic)",
                )
            if not eng.assume_valid_pointers:
                add(lhs_id, intern(eng.unknown_ref()))
                eng._ctx = 0
                return
            if eng.tracer is None:
                # arith_refs is memoized per outermost object — batched
                # bitset union, same facts and counters.
                eng._add_refs_bits(lhs_id, eng.strategy.arith_refs(tgt))
                return
            for r in eng.strategy.arith_refs(tgt):
                add(lhs_id, intern(r))
            eng._ctx = 0

        # Descriptor only in optimistic mode: the pessimistic branch
        # (Unknown) is rare and stays a closure call.
        eng.subscribe(
            op_ref, on_pointee,
            (6, lhs_id) if eng.assume_valid_pointers else None,
        )


def setup_call(eng, st: Call) -> None:
    """Calls: direct binding, or a subscription on the function pointer
    that binds each function object it may point to (at offset 0)."""
    if st.indirect:
        def on_pointee(tgt: Ref, st=st) -> None:
            if tgt.obj.kind is ObjKind.FUNCTION and is_object_start(tgt):
                bind_call(eng, st, tgt.obj)

        eng.subscribe(eng.norm_obj(st.callee), on_pointee)
    else:
        bind_call(eng, st, st.callee)


def is_object_start(ref: Ref) -> bool:
    """Does ``ref`` name the start of its object (a callable address)?"""
    if isinstance(ref, OffsetRef):
        return ref.offset == 0
    return ref.path == ()


def bind_call(eng, call: Call, fobj: AbstractObject) -> None:
    """Context-insensitive call binding: parameter/return copies as
    rule-3 ``resolve`` calls, a vararg sink, or a library summary for
    functions without a body.  Each (call site, callee) pair binds once."""
    key = (id(call), fobj)
    if key in eng._bound:
        return
    eng._bound.add(key)
    eng.stats.calls_bound += 1
    tracer = eng.tracer
    info = eng.program.function_for_object(fobj)
    if info is None:
        if tracer is not None:
            eng._ctx = tracer.new_ctx(
                0, call, label=f"summary:{fobj.name}"
            )
        eng.summaries.apply(eng, call, fobj.name)
        eng._ctx = 0
        return
    for i, arg in enumerate(call.args):
        if i < len(info.params):
            param = info.params[i]
            if tracer is None:
                eng._resolve_install_once(
                    eng.norm_obj(param), eng.norm_obj(arg), param.type
                )
                continue
            eng._ctx = tracer.new_ctx(
                0, call, label=f"rule 3 (parameter copy: {param.name})"
            )
            res = eng._resolve(eng.norm_obj(param), eng.norm_obj(arg), param.type)
            eng.install_resolve_result(res)
        elif info.vararg is not None:
            if tracer is not None:
                eng._ctx = tracer.new_ctx(
                    0, call, label="rule 3 (vararg sink copy)"
                )
            eng.install_copy_edge(eng.norm_obj(arg), eng.norm_obj(info.vararg))
    if call.lhs is not None and info.retval is not None:
        if tracer is None:
            eng._resolve_install_once(
                eng.norm_obj(call.lhs), eng.norm_obj(info.retval),
                call.lhs.type,
            )
        else:
            eng._ctx = tracer.new_ctx(
                0, call, label="rule 3 (return copy)"
            )
            res = eng._resolve(
                eng.norm_obj(call.lhs), eng.norm_obj(info.retval),
                call.lhs.type,
            )
            eng.install_resolve_result(res)
    eng._ctx = 0


#: Statement class -> rule installer.  ``setup_stmt`` dispatches through
#: this table; exact-type dispatch is safe because the IR statement
#: classes are final (``dataclass(slots=True)``, never subclassed).
_DISPATCH = {
    AddrOf: setup_addrof,
    FieldAddr: setup_fieldaddr,
    Copy: setup_copy,
    Load: setup_load,
    Store: setup_store,
    PtrArith: setup_ptr_arith,
    Call: setup_call,
}


def setup_stmt(eng, st: Stmt) -> None:
    """Install one statement's rule (dispatch on the assignment form)."""
    handler = _DISPATCH.get(type(st))
    if handler is None:  # pragma: no cover - defensive
        raise TypeError(f"unknown statement {st!r}")
    handler(eng, st)
