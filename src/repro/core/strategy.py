"""The tunable heart of the framework: ``normalize`` / ``lookup`` / ``resolve``.

Paper §4.2: *"Our solution to the problems introduced by casting involves
using three auxiliary functions: normalize (for Problem 1), lookup (for
Problem 2), and resolve (for Problem 3).  It is the use of these functions
that gives us a framework for pointer analysis rather than a single
algorithm."*

A :class:`Strategy` bundles the three functions.  Four concrete strategies
are shipped, one per section of the paper:

=============================  =========  ==============================
class                          paper      module
=============================  =========  ==============================
:class:`CollapseAlways`        §4.3.1     ``repro.core.collapse_always``
:class:`CollapseOnCast`        §4.3.2     ``repro.core.collapse_on_cast``
:class:`CommonInitialSequence` §4.3.3     ``repro.core.common_initial_sequence``
:class:`Offsets`               §4.2.2     ``repro.core.offsets``
=============================  =========  ==============================

``lookup`` and ``resolve`` additionally report a :class:`CallInfo` so the
engine can reproduce Figure 3's instrumentation (fraction of calls that
involve structures; fraction of those where the declared and actual types
disagree, i.e. casting was involved).  Per paper footnote 7, strategies
that implement ``resolve`` *in terms of* ``lookup`` must not report the
inner lookup calls — they call the private ``_lookup`` entry point instead.

``resolve`` may return its pairs in either of two shapes:

- an explicit list of ``(dst_ref, src_ref)`` pairs (the portable
  strategies — the pair set is finite and fact-independent), or
- a :class:`Window` describing the byte range copied (the "Offsets"
  strategy, whose §4.2.2 definition conceptually pairs *every byte* of the
  window; the engine matches the window lazily against facts, which is an
  exact implementation of the same function).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..ctype.layout import Layout
from ..ctype.types import CType, StructType
from ..ir.objects import AbstractObject
from ..ir.refs import FieldRef, OffsetRef, Ref

__all__ = ["CallInfo", "Window", "PairList", "ResolveResult", "Strategy"]


@dataclass(frozen=True, slots=True)
class CallInfo:
    """Instrumentation record for one lookup/resolve call (Figure 3).

    ``involved_struct`` — the call dealt with at least one structure type;
    ``mismatch`` — the declared type and the actual type disagreed, i.e.
    the call had to cope with casting.
    """

    involved_struct: bool = False
    mismatch: bool = False


@dataclass(frozen=True, slots=True)
class Window:
    """A byte-range copy: ``dst.offset+i  ←  src.offset+i`` for ``0 ≤ i < size``."""

    dst: OffsetRef
    src: OffsetRef
    size: int


PairList = List[Tuple[Ref, Ref]]
ResolveResult = Union[PairList, Window]

_SHARED_LAYOUT: Optional[Layout] = None


def _default_layout() -> Layout:
    """The process-wide default :class:`Layout` (lazily created)."""
    global _SHARED_LAYOUT
    if _SHARED_LAYOUT is None:
        _SHARED_LAYOUT = Layout()
    return _SHARED_LAYOUT


#: Shared memo tables, keyed (strategy class, layout identity, table name).
#: Everything a strategy memoizes is pure type/layout-level computation —
#: independent of analysis facts — so instances of the same class over the
#: same layout can share tables: a repeated benchmark solve (or a second
#: analysis of the same program) starts warm.  The first key element pins
#: nothing, but the layout is pinned via ``_SHARED_TABLE_PINS`` so the
#: ``id(layout)`` component stays valid.  Entries live for the process
#: lifetime by design (they are keyed caches of immutable computation).
_SHARED_TABLES: dict = {}
_SHARED_TABLE_PINS: dict = {}


def _shared_tables(cls: type, layout: Layout) -> dict:
    key = (cls, id(layout))
    tables = _SHARED_TABLES.get(key)
    if tables is None:
        _SHARED_TABLES[key] = tables = {}
        _SHARED_TABLE_PINS[key] = layout
    return tables


class Strategy(abc.ABC):
    """One instance of the framework: the three tunable functions.

    Subclasses must be stateless with respect to analysis facts (the same
    strategy object may be reused across programs); they may cache
    type-level computations.
    """

    #: Human-readable name, matching the paper's terminology.
    name: str = "?"
    #: Short identifier used in CLIs/benchmarks.
    key: str = "?"
    #: Whether results are safe for every ANSI-conforming layout.
    portable: bool = True

    def __init__(self, layout: Optional[Layout] = None) -> None:
        #: Layout engine; only the non-portable strategy consults it, but
        #: all strategies carry one so clients can ask layout questions.
        #: The default is a shared module-level instance: Layout caches
        #: per-record layouts keyed on type identity, and type objects
        #: are immutable once built, so sharing keeps those caches warm
        #: across strategy instances (e.g. benchmark repeats).
        self.layout = layout or _default_layout()
        # Memo tables for cached_lookup/cached_resolve.  Cache keys use
        # id(τ) and id(ref) — an int-tuple hash instead of structural
        # hashing; sound because refs reaching the engine's hot path are
        # canonical instances (see canon_ref) and every entry's value
        # pins the keyed objects alive against id reuse.  A non-canonical
        # ref merely misses the cache and recomputes.
        #
        # All tables are shared across instances of the same class over
        # the same layout (see _SHARED_TABLES): the memoized computation
        # is pure type/layout-level, so a second solve of the same
        # program starts warm.
        self._lookup_cache: dict = self.shared_cache("lookup")
        self._resolve_cache: dict = self.shared_cache("resolve")
        #: Canonical-instance table for normalized refs (see canon_ref).
        self._canon_refs: dict = self.shared_cache("canon")
        # Memo for cached_all_refs; keyed id(obj), value pins the object.
        self._all_refs_cache: dict = self.shared_cache("all_refs")
        # Per-instance memo instrumentation for the cached_* entry points
        # (surfaced by repro.obs.metrics).  Deliberately *not* part of
        # EngineStats: the memo tables are shared per (class, layout), so
        # hit rates depend on what ran earlier in the process — they are
        # observability data, not gateable analysis results.
        self.memo_lookup_hits: int = 0
        self.memo_lookup_misses: int = 0
        self.memo_resolve_hits: int = 0
        self.memo_resolve_misses: int = 0
        self.memo_all_refs_hits: int = 0
        self.memo_all_refs_misses: int = 0

    def shared_cache(self, name: str) -> dict:
        """A memo dict shared by every same-class strategy over this layout.

        Subclasses use this for their private caches too; ``name`` keeps
        the tables separate.  Only fact-independent (type/layout-level)
        computation may be stored here.
        """
        return _shared_tables(type(self), self.layout).setdefault(name, {})

    def canon_ref(self, ref: Ref) -> Ref:
        """The canonical instance of a normalized reference.

        Normalize paths construct the same logical reference over and
        over; routing the result through this table makes every equal
        ref *the same object*, so the fact base's interning dict (and
        every other ref-keyed lookup) hits the cached hash and the
        identity fast path instead of re-hashing fresh instances.
        """
        c = self._canon_refs.get(ref)
        if c is None:
            self._canon_refs[ref] = c = ref
        return c

    # ------------------------------------------------------------------
    # Memoized entry points (used by the engine's hot path).
    # ------------------------------------------------------------------
    def cached_lookup(
        self, tau: CType, alpha: Sequence[str], target: Ref
    ) -> Tuple[List[Ref], CallInfo]:
        """Memoized :meth:`lookup`.

        Strategies are stateless with respect to analysis facts, so a
        ``lookup`` result depends only on ``(τ, α, target)`` (plus the
        layout, fixed per instance) and can be cached for the lifetime of
        the strategy.  The cache sits *below* the engine's instrumentation
        boundary: the engine counts every call, hit or miss, so Figure 3
        percentages are unchanged.  Callers must not mutate the returned
        list.
        """
        key = (id(tau), tuple(alpha), id(target))
        hit = self._lookup_cache.get(key)
        if hit is None:
            self.memo_lookup_misses += 1
            hit = (tau, target, self.lookup(tau, alpha, target))
            self._lookup_cache[key] = hit
        else:
            self.memo_lookup_hits += 1
        return hit[2]

    def cached_resolve(
        self, dst: Ref, src: Ref, tau: CType
    ) -> Tuple["ResolveResult", CallInfo]:
        """Memoized :meth:`resolve`; same contract as :meth:`cached_lookup`."""
        key = (id(tau), id(dst), id(src))
        hit = self._resolve_cache.get(key)
        if hit is None:
            self.memo_resolve_misses += 1
            hit = (tau, dst, src, self.resolve(dst, src, tau))
            self._resolve_cache[key] = hit
        else:
            self.memo_resolve_hits += 1
        return hit[3]

    # ------------------------------------------------------------------
    # The three functions of the paper.
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def normalize(self, ref: FieldRef) -> Ref:
        """Map ``obj.path`` to its canonical representative (paper §4.2)."""

    @abc.abstractmethod
    def lookup(
        self, tau: CType, alpha: Sequence[str], target: Ref
    ) -> Tuple[List[Ref], CallInfo]:
        """Fields actually referenced by a dereference (paper Problem 2).

        ``tau`` is the type the dereferenced pointer is *declared* to point
        to; ``alpha`` the field selector written in the program (may be
        empty); ``target`` the normalized reference the pointer *actually*
        points to.  Returns the set of normalized references that may be
        accessed, plus instrumentation.
        """

    @abc.abstractmethod
    def resolve(
        self, dst: Ref, src: Ref, tau: CType
    ) -> Tuple[ResolveResult, CallInfo]:
        """Match destination and source fields of a block copy (Problem 3).

        ``tau`` is the declared type of the assignment's left-hand side —
        the type that determines how many bytes are copied (Complication 4).
        """

    # ------------------------------------------------------------------
    # Auxiliary queries used by the engine.
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def all_refs(self, obj: AbstractObject) -> List[Ref]:
        """Every normalized reference into ``obj``.

        Used for the Assumption-1 treatment of pointer arithmetic: the
        result of arithmetic on a pointer into ``obj`` may point to any of
        these (paper §4.2.1).
        """

    def cached_all_refs(self, obj: AbstractObject) -> List[Ref]:
        """Memoized :meth:`all_refs`.

        The ref set of an object is fixed for the strategy's lifetime
        (it depends only on the declared type and layout); pointer
        arithmetic re-requests it once per pointee.  Callers must not
        mutate the returned list.
        """
        key = id(obj)
        hit = self._all_refs_cache.get(key)
        if hit is None:
            self.memo_all_refs_misses += 1
            hit = (obj, self.all_refs(obj))
            self._all_refs_cache[key] = hit
        else:
            self.memo_all_refs_hits += 1
        return hit[1]

    def arith_refs(self, ref: Ref) -> List[Ref]:
        """Where arithmetic on a pointer to ``ref`` may land (Assumption 1).

        The default is the paper's treatment: any sub-field of the
        outermost object.  Refinements (e.g. the Wilson–Lam stride idea,
        :class:`repro.core.strided.StridedOffsets`) may narrow this when
        the pointee lies inside an array.
        """
        return self.cached_all_refs(ref.obj)

    def memo_counters(self) -> dict:
        """This instance's memo hit/miss counters (``repro.obs.metrics``)."""
        return {
            "lookup_memo_hits": self.memo_lookup_hits,
            "lookup_memo_misses": self.memo_lookup_misses,
            "resolve_memo_hits": self.memo_resolve_hits,
            "resolve_memo_misses": self.memo_resolve_misses,
            "all_refs_memo_hits": self.memo_all_refs_hits,
            "all_refs_memo_misses": self.memo_all_refs_misses,
        }

    # ------------------------------------------------------------------
    # Provenance rendering hooks (the explain CLI's interception point).
    # ------------------------------------------------------------------
    def describe_call(self, call) -> str:
        """One-line prose rendering of a recorded strategy call.

        ``call`` is a :class:`repro.obs.provenance.CallRecord` (duck-
        typed so core does not import obs).  The default wording is
        generic; each shipped instance overrides it with its own §4.3.x
        reasoning so a derivation tree says *why* this strategy produced
        these fields.
        """
        flags = []
        if call.involved_struct:
            flags.append("involved structures")
        if call.mismatch:
            flags.append("types did not match")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        if call.kind == "lookup":
            alpha, target = call.args
            sel = ".".join(alpha) if alpha else "ε"
            outs = ", ".join(repr(r) for r in call.out) if call.out else "∅"
            return (
                f"lookup(τ={call.tau}, α={sel}, {target!r}) = "
                f"{{{outs}}}{suffix}"
            )
        dst, src = call.args
        if isinstance(call.out, Window):
            w = call.out
            return (
                f"resolve({dst!r}, {src!r}, τ={call.tau}) = window "
                f"{w.dst!r} ← {w.src!r} ({w.size} bytes){suffix}"
            )
        pairs = ", ".join(f"{d!r}←{s!r}" for d, s in call.out) if call.out else "∅"
        return f"resolve({dst!r}, {src!r}, τ={call.tau}) = {{{pairs}}}{suffix}"

    def target_weight(self, ref: Ref) -> int:
        """How many per-field facts ``ref`` stands for in Figure 4's metric.

        1 for every strategy except Collapse Always, whose whole-structure
        facts are expanded to one fact per field for comparability (see the
        parenthetical in the paper's Figure 4 discussion).
        """
        return 1

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name})>"

    # Shared helper -----------------------------------------------------
    @staticmethod
    def _is_structy(t: CType) -> bool:
        return isinstance(t, StructType)
