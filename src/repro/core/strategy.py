"""The tunable heart of the framework: ``normalize`` / ``lookup`` / ``resolve``.

Paper §4.2: *"Our solution to the problems introduced by casting involves
using three auxiliary functions: normalize (for Problem 1), lookup (for
Problem 2), and resolve (for Problem 3).  It is the use of these functions
that gives us a framework for pointer analysis rather than a single
algorithm."*

A :class:`Strategy` bundles the three functions.  Four concrete strategies
are shipped, one per section of the paper:

=============================  =========  ==============================
class                          paper      module
=============================  =========  ==============================
:class:`CollapseAlways`        §4.3.1     ``repro.core.collapse_always``
:class:`CollapseOnCast`        §4.3.2     ``repro.core.collapse_on_cast``
:class:`CommonInitialSequence` §4.3.3     ``repro.core.common_initial_sequence``
:class:`Offsets`               §4.2.2     ``repro.core.offsets``
=============================  =========  ==============================

``lookup`` and ``resolve`` additionally report a :class:`CallInfo` so the
engine can reproduce Figure 3's instrumentation (fraction of calls that
involve structures; fraction of those where the declared and actual types
disagree, i.e. casting was involved).  Per paper footnote 7, strategies
that implement ``resolve`` *in terms of* ``lookup`` must not report the
inner lookup calls — they call the private ``_lookup`` entry point instead.

``resolve`` may return its pairs in either of two shapes:

- an explicit list of ``(dst_ref, src_ref)`` pairs (the portable
  strategies — the pair set is finite and fact-independent), or
- a :class:`Window` describing the byte range copied (the "Offsets"
  strategy, whose §4.2.2 definition conceptually pairs *every byte* of the
  window; the engine matches the window lazily against facts, which is an
  exact implementation of the same function).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..ctype.layout import Layout
from ..ctype.types import CType, StructType
from ..ir.objects import AbstractObject
from ..ir.refs import FieldRef, OffsetRef, Ref

__all__ = ["CallInfo", "Window", "PairList", "ResolveResult", "Strategy"]


@dataclass(frozen=True)
class CallInfo:
    """Instrumentation record for one lookup/resolve call (Figure 3).

    ``involved_struct`` — the call dealt with at least one structure type;
    ``mismatch`` — the declared type and the actual type disagreed, i.e.
    the call had to cope with casting.
    """

    involved_struct: bool = False
    mismatch: bool = False


@dataclass(frozen=True)
class Window:
    """A byte-range copy: ``dst.offset+i  ←  src.offset+i`` for ``0 ≤ i < size``."""

    dst: OffsetRef
    src: OffsetRef
    size: int


PairList = List[Tuple[Ref, Ref]]
ResolveResult = Union[PairList, Window]


class Strategy(abc.ABC):
    """One instance of the framework: the three tunable functions.

    Subclasses must be stateless with respect to analysis facts (the same
    strategy object may be reused across programs); they may cache
    type-level computations.
    """

    #: Human-readable name, matching the paper's terminology.
    name: str = "?"
    #: Short identifier used in CLIs/benchmarks.
    key: str = "?"
    #: Whether results are safe for every ANSI-conforming layout.
    portable: bool = True

    def __init__(self, layout: Optional[Layout] = None) -> None:
        #: Layout engine; only the non-portable strategy consults it, but
        #: all strategies carry one so clients can ask layout questions.
        self.layout = layout or Layout()
        # Memo tables for cached_lookup/cached_resolve.  Values pin the
        # type object (cache keys use id(τ) — cheaper than structural
        # hashing — so the entry must keep τ alive against id reuse).
        self._lookup_cache: dict = {}
        self._resolve_cache: dict = {}

    # ------------------------------------------------------------------
    # Memoized entry points (used by the engine's hot path).
    # ------------------------------------------------------------------
    def cached_lookup(
        self, tau: CType, alpha: Sequence[str], target: Ref
    ) -> Tuple[List[Ref], CallInfo]:
        """Memoized :meth:`lookup`.

        Strategies are stateless with respect to analysis facts, so a
        ``lookup`` result depends only on ``(τ, α, target)`` (plus the
        layout, fixed per instance) and can be cached for the lifetime of
        the strategy.  The cache sits *below* the engine's instrumentation
        boundary: the engine counts every call, hit or miss, so Figure 3
        percentages are unchanged.  Callers must not mutate the returned
        list.
        """
        key = (id(tau), tuple(alpha), target)
        hit = self._lookup_cache.get(key)
        if hit is None:
            hit = (tau, self.lookup(tau, alpha, target))
            self._lookup_cache[key] = hit
        return hit[1]

    def cached_resolve(
        self, dst: Ref, src: Ref, tau: CType
    ) -> Tuple["ResolveResult", CallInfo]:
        """Memoized :meth:`resolve`; same contract as :meth:`cached_lookup`."""
        key = (id(tau), dst, src)
        hit = self._resolve_cache.get(key)
        if hit is None:
            hit = (tau, self.resolve(dst, src, tau))
            self._resolve_cache[key] = hit
        return hit[1]

    # ------------------------------------------------------------------
    # The three functions of the paper.
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def normalize(self, ref: FieldRef) -> Ref:
        """Map ``obj.path`` to its canonical representative (paper §4.2)."""

    @abc.abstractmethod
    def lookup(
        self, tau: CType, alpha: Sequence[str], target: Ref
    ) -> Tuple[List[Ref], CallInfo]:
        """Fields actually referenced by a dereference (paper Problem 2).

        ``tau`` is the type the dereferenced pointer is *declared* to point
        to; ``alpha`` the field selector written in the program (may be
        empty); ``target`` the normalized reference the pointer *actually*
        points to.  Returns the set of normalized references that may be
        accessed, plus instrumentation.
        """

    @abc.abstractmethod
    def resolve(
        self, dst: Ref, src: Ref, tau: CType
    ) -> Tuple[ResolveResult, CallInfo]:
        """Match destination and source fields of a block copy (Problem 3).

        ``tau`` is the declared type of the assignment's left-hand side —
        the type that determines how many bytes are copied (Complication 4).
        """

    # ------------------------------------------------------------------
    # Auxiliary queries used by the engine.
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def all_refs(self, obj: AbstractObject) -> List[Ref]:
        """Every normalized reference into ``obj``.

        Used for the Assumption-1 treatment of pointer arithmetic: the
        result of arithmetic on a pointer into ``obj`` may point to any of
        these (paper §4.2.1).
        """

    def arith_refs(self, ref: Ref) -> List[Ref]:
        """Where arithmetic on a pointer to ``ref`` may land (Assumption 1).

        The default is the paper's treatment: any sub-field of the
        outermost object.  Refinements (e.g. the Wilson–Lam stride idea,
        :class:`repro.core.strided.StridedOffsets`) may narrow this when
        the pointee lies inside an array.
        """
        return self.all_refs(ref.obj)

    def target_weight(self, ref: Ref) -> int:
        """How many per-field facts ``ref`` stands for in Figure 4's metric.

        1 for every strategy except Collapse Always, whose whole-structure
        facts are expanded to one fact per field for comparability (see the
        parenthetical in the paper's Figure 4 discussion).
        """
        return 1

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<{type(self).__name__} ({self.name})>"

    # Shared helper -----------------------------------------------------
    @staticmethod
    def _is_structy(t: CType) -> bool:
        return isinstance(t, StructType)
