"""The constraint graph: every persistent structure the fixpoint drains over.

The paper's inference rules (Figure 2) are evaluated semi-naively: rule
instantiations are installed *once* as persistent structures, and facts
then flow along them until the least fixpoint is reached.  This module is
the store for those structures — the "graph" the solver operates on:

- the **fact base** (:class:`~repro.core.facts.FactBase`): interned refs,
  bitset points-to sets, and the union-find plane used by online cycle
  collapsing (paper §3's ``pointsTo`` relation);
- **copy edges** ``x̂ → d̂`` (the explicit pair lists returned by
  ``resolve`` for the portable strategies — rules 3/4/5 — plus
  parameter/return copies and library summaries);
- **windows** (the byte-range copies of the "Offsets" ``resolve``,
  §4.2.2), held in a per-object interval index;
- **subscriptions** (the ``pointsTo(p̂, …)`` premises of rules 2/4/5:
  callbacks run once per distinct pointee);
- the identity table de-duplicating installed ``resolve`` results and
  the probe memo for lazy cycle detection.

The graph is deliberately *passive*: it stores, de-duplicates, and
answers structural queries (including the cycle-collapse merge), but it
never calls a strategy, bumps a Figure-3 counter, or talks to a tracer —
that is :class:`~repro.core.engine.Engine`'s job.  The narrow interface
is what lets :class:`repro.session.AnalysisSession` keep a solved graph
alive and seed only new deltas into it on incremental re-solves.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from ..ir.objects import AbstractObject
from ..ir.refs import Ref
from .facts import FactBase

__all__ = ["ConstraintGraph", "_WindowIndex"]

# A subscription entry: (seen, callback, descriptor).  ``seen`` holds
# the *interned IDs* of the pointee refs already delivered (one ID per
# logical ref, so the dedup is exact); the drains check it inline — one
# set probe instead of a closure call per (subscription, pointee) pair,
# most of which are dedup hits.  ``descriptor`` is either None (the
# callback is an opaque closure — summaries, indirect calls, traced
# rules) or a small tuple naming a Figure-2 rule case with its fixed
# operands (see :mod:`repro.core.rules`), which lets the specialized
# drains (:mod:`repro.core.codegen`, the numpy backend's fused rounds)
# dispatch the rule inline instead of through the closure.
_Subscription = Tuple[Set[int], Callable[[Ref], None], Optional[tuple]]


class _WindowIndex:
    """Interval index over one object's windows: sorted by ``lo`` + bisect.

    ``matches(off)`` finds every window ``[lo, hi)`` containing ``off``
    without scanning the whole list: windows are kept sorted by ``lo``,
    a bisect bounds the candidates to those with ``lo <= off``, and a
    prefix-maximum over ``hi`` lets the right-to-left scan stop as soon
    as no remaining candidate can still cover ``off``.  Inserts are
    O(n) (rare — once per installed window); queries are O(log n + k).
    """

    __slots__ = ("los", "his", "dsts", "pmax")

    def __init__(self) -> None:
        self.los: List[int] = []
        self.his: List[int] = []
        self.dsts: List[Tuple[AbstractObject, int]] = []
        #: pmax[j] = max(his[0..j]) — the early-out bound for matches().
        self.pmax: List[int] = []

    def insert(self, lo: int, size: int, dst_obj: AbstractObject, dst_base: int) -> None:
        hi = lo + size
        i = bisect_right(self.los, lo)
        self.los.insert(i, lo)
        self.his.insert(i, hi)
        self.dsts.insert(i, (dst_obj, dst_base))
        pmax = self.pmax
        run = pmax[i - 1] if i else 0
        if hi > run:
            run = hi
        pmax.insert(i, run)
        # The shift left ``pmax[j]`` (j > i) holding the old prefix max of
        # ``his[0..j-1]``; the insert only raises it where the new window's
        # ``hi`` exceeds it, and ``pmax`` is non-decreasing — so stop at
        # the first entry already >= ``hi``.
        for j in range(i + 1, len(pmax)):
            if pmax[j] >= hi:
                break
            pmax[j] = hi

    def matches(self, off: int) -> List[Tuple[int, AbstractObject, int]]:
        """All ``(lo, dst_obj, dst_base)`` whose window contains ``off``."""
        out: List[Tuple[int, AbstractObject, int]] = []
        los, his, dsts, pmax = self.los, self.his, self.dsts, self.pmax
        j = bisect_right(los, off) - 1
        while j >= 0 and pmax[j] > off:
            if his[j] > off:
                d = dsts[j]
                out.append((los[j], d[0], d[1]))
            j -= 1
        return out


class ConstraintGraph:
    """The constraint store: facts, copy edges, windows, subscriptions.

    Attributes are exposed directly (not behind accessors): the drain
    loops in :mod:`repro.core.worklist` bind them to locals once per
    drain, which is the whole point of the ID-indexed representation.
    """

    __slots__ = (
        "facts",
        "copy_adj",
        "edge_set",
        "windows",
        "window_set",
        "subs",
        "lcd_done",
        "installed_res",
    )

    def __init__(self, facts: Optional[FactBase] = None) -> None:
        #: The points-to fact base (interning, bitsets, union-find).
        self.facts = facts if facts is not None else FactBase()
        #: Copy edges: representative ID -> destination IDs (originals;
        #: mapped through union-find at propagation time).
        self.copy_adj: Dict[int, List[int]] = {}
        #: Edge dedup on the *original* (src, dst) ID pair — packed as
        #: ``(sid << 21) | did`` (IDs are dense interning indices; the
        #: tuple form covers the >2M-ref tail) — so the Figure 3
        #: ``copy_edges`` counter is identical with and without
        #: collapsing.  A set of small-int keys: membership is one O(1)
        #: hash probe, where the former per-source bitsets paid an
        #: O(max-ID) ``1 << did`` allocation plus a full-bitset copy on
        #: every insert.
        self.edge_set: Set[Union[int, Tuple[int, int]]] = set()
        #: Windows indexed by source object (interval index per object).
        self.windows: Dict[AbstractObject, _WindowIndex] = {}
        self.window_set: Set[Tuple[AbstractObject, int, int, AbstractObject, int]] = set()
        #: Subscriptions ``(seen, callback)``, keyed by class
        #: representative (merged on collapse).
        self.subs: Dict[int, List[_Subscription]] = {}
        #: Lazy cycle detection: (src_rep, dst_rep) pairs already probed.
        self.lcd_done: Set[Tuple[int, int]] = set()
        #: Resolve results already installed, by identity (value pins the
        #: result object so its id cannot be reused).
        self.installed_res: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Copy edges.
    # ------------------------------------------------------------------
    def add_edge_ids(self, sid: int, did: int) -> bool:
        """Register the copy edge ``sid -> did``; False if already present.

        Dedup is on the original ID pair (pre-union-find), keeping the
        edge count independent of collapse order.
        """
        key = (sid << 21) | did if did < 2097152 else (sid, did)
        edge_set = self.edge_set
        if key in edge_set:
            return False
        edge_set.add(key)
        return True

    def attach_edge(self, rep: int, did: int) -> None:
        """Hang destination ``did`` off class representative ``rep``."""
        self.copy_adj.setdefault(rep, []).append(did)

    # ------------------------------------------------------------------
    # Windows.
    # ------------------------------------------------------------------
    def add_window(
        self, src_obj: AbstractObject, lo: int, size: int,
        dst_obj: AbstractObject, dst_base: int,
    ) -> bool:
        """Register a byte-window copy; False if an identical one exists."""
        key = (src_obj, lo, size, dst_obj, dst_base)
        if key in self.window_set:
            return False
        self.window_set.add(key)
        index = self.windows.get(src_obj)
        if index is None:
            index = self.windows[src_obj] = _WindowIndex()
        index.insert(lo, size, dst_obj, dst_base)
        return True

    # ------------------------------------------------------------------
    # Subscriptions and resolve-result identity.
    # ------------------------------------------------------------------
    def add_subscriber(self, rep: int, entry: _Subscription) -> None:
        self.subs.setdefault(rep, []).append(entry)

    def seen_resolve_result(self, res: object) -> bool:
        """Mark a ``resolve`` result installed; True if it already was.

        Results come from the strategy's memo tables, so the same list or
        window object is handed back for every recurrence of a (dst, src,
        τ) triple; the entry pins ``res`` against id reuse.
        """
        key = id(res)
        installed = self.installed_res
        if key in installed:
            return True
        installed[key] = res
        return False

    # ------------------------------------------------------------------
    # Online cycle collapsing (lazy cycle detection + union-find).
    # ------------------------------------------------------------------
    def lcd_mark(self, src_rep: int, dst_rep: int) -> bool:
        """Record a lazy-cycle-detection probe; False if already probed."""
        key = (src_rep, dst_rep)
        done = self.lcd_done
        if key in done:
            return False
        done.add(key)
        return True

    def cycle_path(self, start: int, goal: int) -> Optional[List[int]]:
        """DFS over class-level copy edges for a path ``start ->* goal``.

        Returns the classes on the path (including ``start`` and
        ``goal``), or None when ``goal`` is unreachable.  The search only
        expands classes whose points-to set equals the cycle candidates'
        (the probe fires when ``start``'s and ``goal``'s sets have
        converged, and every member of a copy cycle converges to that
        same set) — pruning the DFS to the candidate SCC region instead
        of the whole copy graph.  A path missed because an intermediate
        set has not converged yet is only a deferred opportunity: a later
        no-op propagation re-probes.
        """
        facts = self.facts
        find = facts.find
        parent = facts._parent
        pts = facts._pts
        adj = self.copy_adj
        start = find(start)
        goal = find(goal)
        if start == goal:
            return None
        want = pts[start]
        empty: Tuple[int, ...] = ()
        stack: List[Iterable[int]] = [iter(adj.get(start, empty))]
        on_path = [start]
        visited = {start}
        while stack:
            edge_iter = stack[-1]
            advanced = False
            for tid in edge_iter:
                # find()'s fast path, inlined: almost every ID is root.
                t = parent[tid]
                if parent[t] != t:
                    t = find(t)
                if t == goal:
                    on_path.append(goal)
                    return on_path
                if t not in visited:
                    visited.add(t)
                    if pts[t] != want:
                        continue
                    stack.append(iter(adj.get(t, empty)))
                    on_path.append(t)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.pop()
        return None

    def merge_classes(
        self,
        nodes: List[int],
        worklist,
        account: Callable[[int], None],
    ) -> bool:
        """Merge the classes in ``nodes`` into one (they form a copy-edge
        cycle and share one fixpoint set).

        Moves the absorbed classes' adjacency, subscribers, and pending
        worklist deltas onto the surviving representative and schedules
        the set difference for re-delivery.  ``account`` is called with
        each union's logical-fact gain (the engine's budget chokepoint);
        ``worklist`` must provide ``steal``/``enqueue`` (see
        :mod:`repro.core.worklist`).  Returns whether any union happened.
        """
        facts = self.facts
        adj = self.copy_adj
        subs = self.subs
        root = nodes[0]
        merged_any = False
        for node in nodes[1:]:
            rep, dead, gain, fresh = facts.union(root, node)
            if rep == dead:  # already one class
                root = rep
                continue
            merged_any = True
            root = rep
            if gain:
                account(gain)
            dead_adj = adj.pop(dead, None)
            if dead_adj:
                live = adj.get(rep)
                if live is None:
                    adj[rep] = dead_adj
                else:
                    live.extend(dead_adj)
                    if len(live) >= 16:
                        # Compact: a merge turns edges into the absorbed
                        # class into self-edges, and distinct targets may
                        # now share a representative.  Keep one raw ID per
                        # live target class so the drains and the LCD DFS
                        # stop rescanning dead entries.  (Dropping an ID
                        # only forgets its difference-propagation frontier
                        # — a resend is a points-to no-op.)
                        find = facts.find
                        kept_reps = set()
                        compact = []
                        for tid in live:
                            rt = find(tid)
                            if rt == rep or rt in kept_reps:
                                continue
                            kept_reps.add(rt)
                            compact.append(tid)
                        adj[rep] = compact
            dead_subs = subs.pop(dead, None)
            if dead_subs:
                live_subs = subs.get(rep)
                # A fresh list: an in-flight drain iteration keeps the old.
                subs[rep] = dead_subs if live_subs is None else live_subs + dead_subs
            bits = worklist.steal(dead) | fresh
            if bits:
                worklist.enqueue(rep, bits)
        return merged_any

    # ------------------------------------------------------------------
    def num_refs(self) -> int:
        """Distinct interned refs — the graph's node count."""
        return self.facts.num_refs()

    def __repr__(self) -> str:
        return (
            f"<ConstraintGraph: {self.facts.num_refs()} refs, "
            f"{sum(len(v) for v in self.copy_adj.values())} edges, "
            f"{len(self.window_set)} windows>"
        )
