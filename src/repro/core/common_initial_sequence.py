"""The "Common Initial Sequence" instance (paper §4.3.3).

The most precise *portable* strategy.  ``normalize`` and ``resolve`` are
the same as "Collapse on Cast"; ``lookup`` exploits the ANSI C guarantee
that two structures sharing a common initial sequence of compatible fields
lay those fields out at identical offsets: fields are collapsed only when
the access is through a cast *and* falls outside the common initial
sequence.

The paper's ``lookup`` (§4.3.3):

.. code-block:: text

    lookup(τ, α, t.β̂) =
        if there is a pair ⟨α, α'⟩ in commonInitialSeq(τ, t.β̂)
        then { normalize(t.δ.α') }
        else let γ be the first field of t that follows the common initial
                 sequence of τ and t.β̂, or β̂ itself if that sequence is
                 empty
             in { normalize(t.γ') | γ' = γ or γ' ∈ followingFields(t, γ) }

where ``commonInitialSeq(τ, t.β̂)`` finds a sub-object ``δ`` of ``t`` with
``normalize(t.δ) = t.β̂`` whose type shares a non-empty common initial
sequence with ``τ``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ctype.compat import common_initial_sequence, compatible
from ..ctype.types import ArrayType, CType, StructType, UnionType
from ..ir.refs import FieldRef, Ref
from .collapse_on_cast import CollapseOnCast
from .fieldpaths import (
    normalize_path,
    normalized_positions,
    positions_at_or_after,
    prefix_candidates,
)
from .strategy import Strategy

__all__ = ["CommonInitialSequence"]


def _skip_arrays(t: CType) -> CType:
    while isinstance(t, ArrayType):
        t = t.elem
    return t


class CommonInitialSequence(CollapseOnCast):
    """Collapse only accesses outside a cast's common initial sequence."""

    name = "Common Initial Sequence"
    key = "common_initial_sequence"
    portable = True

    def _lookup_uncached(
        self, tau: CType, alpha: Tuple[str, ...], target: FieldRef
    ) -> Tuple[List[Ref], bool]:
        # (The memoizing ``_lookup`` wrapper is inherited from
        # CollapseOnCast; this override supplies the CIS semantics.)
        obj_type = target.obj.type
        tau = _skip_arrays(tau)
        candidates = prefix_candidates(obj_type, target.path)

        # Non-structure τ (and unions, which are collapsed): behave like
        # Collapse on Cast — exact compatibility or conservative suffix.
        # Call the raw implementation: going through the memo wrapper
        # here would collide with this call's own cache key.
        if not isinstance(tau, StructType) or isinstance(tau, UnionType):
            return super()._lookup_uncached(tau, alpha, target)

        # Normalize the selector within τ's own frame so that an empty α
        # (a whole-object access) becomes τ's first-field chain and its
        # head can be tested against the common initial sequence.
        try:
            alpha_n = normalize_path(tau, alpha)
        except (KeyError, TypeError):
            alpha_n = tuple(alpha)

        # Find the enclosing sub-object δ sharing the longest common
        # initial sequence with τ.
        best_delta: Optional[Tuple[str, ...]] = None
        best_cis: List = []
        for delta, delta_type in candidates:
            dt = _skip_arrays(delta_type)
            if not isinstance(dt, StructType) or isinstance(dt, UnionType):
                continue
            if not dt.is_complete:
                continue
            cis = common_initial_sequence(tau, dt)
            if len(cis) > len(best_cis):
                best_cis = cis
                best_delta = delta

        if best_cis and alpha_n:
            pair = next(
                ((fa, fb) for fa, fb in best_cis if fa.name == alpha_n[0]), None
            )
            if pair is not None:
                fa, fb = pair
                full = best_delta + (fb.name,) + alpha_n[1:]
                try:
                    refs = [
                        self.canon_ref(FieldRef(target.obj, normalize_path(obj_type, full)))
                    ]
                    # The access is covered by the guarantee; report a type
                    # mismatch only when it was not a full-type match.
                    exact = compatible(tau, _skip_arrays(
                        dict(candidates).get(best_delta, tau)))
                    return refs, exact
                except (KeyError, TypeError):
                    pass

        # Conservative branch: all fields of t from γ onward, where γ is
        # the first field of t following the common initial sequence (or
        # β̂ itself when the sequence is empty).
        if best_cis:
            last = best_delta + (best_cis[-1][1].name,)
            start = self._position_after_subtree(obj_type, last)
            refs = [self.canon_ref(FieldRef(target.obj, p)) for p in (start or [])]
        else:
            refs = [
                self.canon_ref(FieldRef(target.obj, p))
                for p in positions_at_or_after(obj_type, target.path)
            ]
        if not refs and target.obj.is_heap:
            # The access lies beyond every declared field.  For a stack or
            # global object that is undefined behaviour and may be dropped,
            # but a heap block may be larger than its declared view (the
            # open-ended heap model, cf. Offsets.canon_offset_ref): collapse
            # the overflow region onto the view's last position so that
            # writes and reads through mismatched casts still meet.
            tail = normalized_positions(obj_type)
            if tail:
                refs = [self.canon_ref(FieldRef(target.obj, tail[-1]))]
        return refs, False

    def describe_call(self, call) -> str:
        base = Strategy.describe_call(self, call)
        if call.kind == "lookup":
            if call.mismatch:
                why = (
                    "the access falls outside any common initial sequence "
                    "of τ and the target, so fields from the first "
                    "post-sequence position onward are collapsed (§4.3.3)"
                )
            else:
                why = (
                    "ANSI's common-initial-sequence guarantee fixes the "
                    "accessed field's layout, so it is selected precisely "
                    "(§4.3.3)"
                )
        else:
            why = (
                "fields are paired per position δ of τ through the CIS-"
                "aware lookup on both sides (§4.3.3)"
            )
        return f"{base} — {why}"

    @staticmethod
    def _position_after_subtree(
        obj_type: CType, path: Tuple[str, ...]
    ) -> Optional[List[Tuple[str, ...]]]:
        """All normalized positions strictly after field ``path``'s storage.

        Every position within the field's subtree is skipped: an access
        beyond the common initial sequence lies at an offset no smaller
        than the end of the sequence's last field, so none of that field's
        sub-fields can be referenced.
        """
        allp = normalized_positions(obj_type)
        idx = 0
        found = False
        for i, p in enumerate(allp):
            if p[: len(path)] == path:
                idx = i + 1
                found = True
        if not found:
            try:
                norm = normalize_path(obj_type, path)
            except (KeyError, TypeError):
                return list(allp)
            for i, p in enumerate(allp):
                if p == norm:
                    idx = i + 1
                    found = True
        return allp[idx:]
