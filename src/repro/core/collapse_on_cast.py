"""The "Collapse on Cast" instance (paper §4.3.2).

Structures are collapsed *only* when accessed as a type different from
their declared type.  ``normalize`` maps every structure object to its
innermost first field; ``lookup`` answers precisely when the dereferenced
pointer's declared type matches the type of an enclosing sub-object, and
otherwise conservatively returns all fields of the target object from the
pointed-to position onward; ``resolve`` pairs fields through ``lookup``.

The paper's definitions (§4.3.2):

.. code-block:: text

    normalize(s.α) = if s.α is a structure object with first field s1
                     then normalize(s.α.s1) else s.α

    lookup(τ, α, t.β̂) =
        if ∃δ such that normalize(t.δ) = t.β̂ and τ_δ = τ
        then { normalize(t.δ.α) }
        else { normalize(t.γ) | γ = β̂ or γ ∈ followingFields(t, β̂) }

    resolve(s.α̂, t.β̂, τ) =
        { ⟨γ, γ'⟩ | δ is a field of τ,
                    γ  ∈ lookup(τ, δ, s.α̂),
                    γ' ∈ lookup(τ, δ, t.β̂) }

Per paper footnote 7, the ``lookup`` calls made from inside ``resolve`` are
not counted by the instrumentation; ``resolve`` therefore goes through the
private ``_lookup``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..ctype.compat import compatible
from ..ctype.types import ArrayType, CType, StructType
from ..ir.objects import AbstractObject
from ..ir.refs import FieldRef, Ref
from .fieldpaths import (
    normalize_path,
    normalized_positions,
    positions_at_or_after,
    prefix_candidates,
)
from .strategy import CallInfo, ResolveResult, Strategy

__all__ = ["CollapseOnCast"]


def _skip_arrays(t: CType) -> CType:
    while isinstance(t, ArrayType):
        t = t.elem
    return t


class CollapseOnCast(Strategy):
    """Collapse a structure only when it is accessed through a cast."""

    name = "Collapse on Cast"
    key = "collapse_on_cast"
    portable = True

    def __init__(self, layout=None) -> None:
        super().__init__(layout)
        # Memo for the private ``_lookup`` (the entry resolve() iterates
        # per field position, uncounted per footnote 7).  Values pin τ
        # because keys use id(τ).
        self._priv_lookup_cache: dict = self.shared_cache("priv_lookup")

    # ------------------------------------------------------------------
    def normalize(self, ref: FieldRef) -> Ref:
        return self.canon_ref(FieldRef(ref.obj, normalize_path(ref.obj.type, ref.path)))

    # ------------------------------------------------------------------
    def lookup(
        self, tau: CType, alpha: Sequence[str], target: Ref
    ) -> Tuple[List[Ref], CallInfo]:
        refs, matched = self._lookup(tau, tuple(alpha), target)
        info = CallInfo(
            involved_struct=self._involves_struct(tau, target),
            mismatch=not matched,
        )
        return refs, info

    def _lookup(
        self, tau: CType, alpha: Tuple[str, ...], target: FieldRef
    ) -> Tuple[List[Ref], bool]:
        """Memoized core lookup; results depend only on the arguments
        (plus the fixed layout), never on analysis facts.  Callers must
        not mutate the returned list."""
        key = (id(tau), alpha, id(target))
        hit = self._priv_lookup_cache.get(key)
        if hit is None:
            hit = (tau, target, self._lookup_uncached(tau, alpha, target))
            self._priv_lookup_cache[key] = hit
        return hit[2]

    def _lookup_uncached(
        self, tau: CType, alpha: Tuple[str, ...], target: FieldRef
    ) -> Tuple[List[Ref], bool]:
        """Core lookup; returns (refs, type-matched?).

        The match test "τ_δ = τ" is implemented with ANSI *compatibility*
        rather than object identity, so that structurally identical types
        from different declarations (the cross-translation-unit case the
        paper's footnote 1 motivates) still match.
        """
        obj_type = target.obj.type
        for delta, delta_type in prefix_candidates(obj_type, target.path):
            if compatible(_skip_arrays(delta_type), tau):
                full = delta + alpha
                try:
                    return [
                        self.canon_ref(FieldRef(target.obj, normalize_path(obj_type, full)))
                    ], True
                except (KeyError, TypeError):
                    # α names fields τ has but the candidate lacks (possible
                    # only with exotic compatibility edge cases): fall back
                    # to the conservative branch.
                    break
        refs: List[Ref] = [
            self.canon_ref(FieldRef(target.obj, p))
            for p in positions_at_or_after(obj_type, target.path)
        ]
        return refs, False

    # ------------------------------------------------------------------
    def resolve(
        self, dst: Ref, src: Ref, tau: CType
    ) -> Tuple[ResolveResult, CallInfo]:
        pairs: List[Tuple[Ref, Ref]] = []
        seen = set()
        matched_all = True
        for delta in self._delta_positions(tau):
            dst_refs, dm = self._lookup(tau, delta, dst)
            src_refs, sm = self._lookup(tau, delta, src)
            matched_all = matched_all and dm and sm
            for d in dst_refs:
                for s in src_refs:
                    # _lookup returns canonical instances, so the dedup
                    # can key on identity (int hashes) instead of
                    # re-hashing both refs per pair.
                    key = (id(d), id(s))
                    if key not in seen:
                        seen.add(key)
                        pairs.append((d, s))
        info = CallInfo(
            involved_struct=self._involves_struct(tau, dst)
            or self._involves_struct(tau, src),
            mismatch=not matched_all,
        )
        return pairs, info

    @staticmethod
    def _delta_positions(tau: CType) -> List[Tuple[str, ...]]:
        """The paper's "δ is a field of τ", generalized to nested fields.

        δ ranges over every distinct normalized field position of τ so that
        sub-fields of nested structures are copied too; for scalar τ this
        is just the empty selector (one scalar copy).
        """
        return normalized_positions(tau)

    # ------------------------------------------------------------------
    def all_refs(self, obj: AbstractObject) -> List[Ref]:
        return [self.canon_ref(FieldRef(obj, p)) for p in normalized_positions(obj.type)]

    # ------------------------------------------------------------------
    def describe_call(self, call) -> str:
        base = super().describe_call(call)
        if call.kind == "lookup":
            if call.mismatch:
                why = (
                    "no enclosing sub-object has the declared type — the "
                    "access is through a cast, so the target collapses to "
                    "every field at or after the pointed-to position (§4.3.2)"
                )
            else:
                why = (
                    "the declared type τ matches an enclosing sub-object δ, "
                    "so the field is selected precisely (§4.3.2)"
                )
        else:
            why = (
                "fields are paired per position δ of τ through lookup on "
                "both sides (§4.3.2, footnote 7: inner lookups uncounted)"
            )
        return f"{base} — {why}"

    # ------------------------------------------------------------------
    @staticmethod
    def _involves_struct(tau: CType, ref: Ref) -> bool:
        if isinstance(tau, StructType):
            return True
        t = _skip_arrays(ref.obj.type)
        return isinstance(t, StructType) or bool(getattr(ref, "path", ()))
