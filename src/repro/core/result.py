"""The outcome of one analysis run: the query API over a solved graph.

A :class:`Result` bundles the solved fact base with the program and the
strategy that produced it, because queries need both: ``points_to``
normalizes its argument through the strategy (the paper's ``normalize``
is part of the *meaning* of a location name, §4), and
``corrupted_deref_sites`` walks the program's dereference statements.
Results hand out live views — the session facade returns the same
:class:`Result` object before and after an incremental re-solve, and
its sets simply grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..ir.objects import AbstractObject
from ..ir.program import Program
from ..ir.refs import FieldRef
from ..ir.stmts import Call, FieldAddr, Load, Stmt, Store
from .facts import FactBase
from .stats import EngineStats
from .strategy import Strategy

__all__ = ["Result"]


@dataclass
class Result:
    """Outcome of one analysis run."""

    program: Program
    strategy: Strategy
    facts: FactBase
    stats: EngineStats
    #: Provenance store of a traced run (``Engine(..., trace=True)``),
    #: else None.  See :mod:`repro.obs`.
    tracer: Optional[object] = None

    def points_to(self, what) -> frozenset:
        """Points-to set of an object or reference.

        Accepts an :class:`AbstractObject` (meaning the whole top-level
        object), a raw :class:`FieldRef`, or an already-normalized
        reference.
        """
        if isinstance(what, AbstractObject):
            what = FieldRef(what, ())
        if isinstance(what, FieldRef):
            what = self.strategy.normalize(what)
        return self.facts.points_to(what)

    def points_to_names(self, what) -> Set[str]:
        """Names of pointed-to objects (handy in tests and examples)."""
        return {r.obj.name for r in self.points_to(what)}

    def corrupted_deref_sites(self):
        """Dereferences of possibly-corrupted pointers (pessimistic mode).

        When the engine ran with ``assume_valid_pointers=False``, pointer
        arithmetic yields the special ``Unknown`` value; this reports the
        source dereference statements whose pointer may hold it — the
        "flagging potential misuses of memory" application the paper
        mentions (§4.2.1).  Empty under Assumption 1.
        """
        flagged = []
        for st in self.program.deref_stmts():
            ptr = self.pointer_of_deref(st)
            if any(r.obj.name == "<unknown>" for r in self.points_to(ptr)):
                flagged.append(st)
        return flagged

    def pointer_of_deref(self, st: Stmt) -> AbstractObject:
        """The pointer object dereferenced by statement ``st``."""
        if isinstance(st, (Load, Store, FieldAddr)):
            return st.ptr
        if isinstance(st, Call) and st.indirect:
            return st.callee
        raise TypeError(f"{st!r} does not dereference a pointer")
