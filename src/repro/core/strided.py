"""Strided offsets — the Wilson–Lam refinement of pointer arithmetic.

The paper's related-work section (§6) describes Wilson and Lam's [WL95]
improvement over the plain "Offsets" treatment of pointer arithmetic:
they keep a *stride* alongside each offset, so that advancing a pointer
over an array **inside a structure** cannot make it point at arbitrary
fields of the enclosing structure — "since pointer arithmetic adds (or
subtracts) a value equal to the size of an array element, the pointer can
only point to fields at offsets that are some multiple of that size away
from the ends of the array."

With this library's array model (every array is a single representative
element), the stride refinement takes a particularly crisp form: moving a
pointer by array-element strides keeps it at the *same canonical offset*,
so the result of arithmetic on a pointer that points into an array is the
pointer's own canonical reference — instead of the plain Offsets
behaviour of smearing across every sub-field of the outermost object.
Arithmetic on pointers that do not point into an array keeps the paper's
conservative Assumption-1 treatment.

This is deliberately a *refinement on top of* :class:`Offsets`: the
normalize/lookup/resolve functions are inherited unchanged; only
:meth:`arith_refs` differs.  The ablation benchmark
``benchmarks/bench_ablation.py`` measures what the stride buys on
array-walking workloads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ctype.layout import LayoutError
from ..ctype.types import ArrayType, CType, StructType
from ..ir.refs import OffsetRef, Ref
from .offsets import Offsets

__all__ = ["StridedOffsets"]


class StridedOffsets(Offsets):
    """Offsets plus Wilson–Lam stride reasoning for in-array arithmetic."""

    name = "Strided Offsets"
    key = "strided_offsets"
    portable = False

    def arith_refs(self, ref: Ref) -> List[Ref]:
        assert isinstance(ref, OffsetRef)
        region = self._enclosing_array(ref.obj.type, ref.offset)
        if region is None:
            return self.cached_all_refs(ref.obj)
        # The pointee lies inside an array: element-stride arithmetic can
        # only reach the same intra-element offset of other elements, all
        # of which share the canonical (representative-element) offset.
        canon = self.canon_offset_ref(ref)
        return [canon] if canon is not None else []

    # ------------------------------------------------------------------
    def _enclosing_array(self, t: CType, off: int) -> Optional[Tuple[int, int]]:
        """(start, size) of the outermost array region containing ``off``.

        Returns ``None`` when ``off`` does not fall inside any array in
        ``t``'s layout.
        """
        try:
            return self._find_array(t, off, 0)
        except LayoutError:
            return None

    def _find_array(self, t: CType, off: int, base: int) -> Optional[Tuple[int, int]]:
        if isinstance(t, ArrayType):
            size = self.layout.sizeof(t)
            if 0 <= off < size:
                return (base, size)
            return None
        if isinstance(t, StructType) and t.is_complete:
            lay = self.layout._record_layout(t)
            hit = None
            for f, fo in zip(t.members(), lay.offsets):
                if f.bit_width is not None:
                    continue
                if fo <= off < fo + self.layout.sizeof(f.type):
                    hit = self._find_array(f.type, off - fo, base + fo)
                    if hit is not None:
                        return hit
            return None
        return None
