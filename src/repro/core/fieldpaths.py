"""Field-path machinery shared by the portable strategies.

The "Collapse on Cast" and "Common Initial Sequence" instances of the
framework name locations by *normalized field paths*: every sub-object that
starts at the same address as an enclosing structure is represented by the
innermost first field (paper §4.3.2's ``normalize``).  This module contains
the pure type-level computations those strategies need:

- :func:`normalize_path` — the paper's recursive first-field normalization;
- :func:`normalized_positions` — the ordered set of distinct normalized
  field positions of a type (the "fields" the portable algorithms see);
- :func:`positions_at_or_after` — the paper's ``followingFields`` closure
  used by ``lookup``'s conservative branch, including the footnote-5 rule
  that fields within an array are all mutually reachable;
- :func:`type_at` — the declared type at a (possibly normalized) path.

Paths are tuples of field names.  Array derefs never contribute a path
component (every array is its single representative element, paper §2), so
a path through ``struct { struct S a[10]; }`` to the inner field ``x`` is
just ``("a", "x")``.  Unions are collapsed: a path never extends *into* a
union (the safe treatment mentioned in §2's final paragraph).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..ctype.types import ArrayType, CType, StructType, UnionType


def _memo_by_type(fn: Callable) -> Callable:
    """Memoize a pure function keyed on (type identity, extra args).

    Type objects have identity semantics and are immutable once defined,
    so results keyed on ``id(type)`` are stable.  The cache keeps a strong
    reference to the type, which prevents CPython from ever reusing the id
    for a different type object while the entry exists.
    """
    cache: Dict[tuple, tuple] = {}

    def wrapper(t: CType, *args):
        key = (id(t),) + args
        hit = cache.get(key)
        if hit is not None:
            return hit[1]
        result = fn(t, *args)
        # A forward-declared record may be completed later, changing the
        # answer: only cache once the type can no longer change.
        if not (isinstance(t, StructType) and not t.is_complete):
            cache[key] = (t, result)
        return result

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    return wrapper

__all__ = [
    "normalize_path",
    "normalized_positions",
    "positions_at_or_after",
    "type_at",
    "truncate_at_union",
    "leaf_count",
    "prefix_candidates",
]

Path = Tuple[str, ...]


def _skip_arrays(t: CType) -> CType:
    while isinstance(t, ArrayType):
        t = t.elem
    return t


@_memo_by_type
def truncate_at_union(t: CType, path: Path) -> Path:
    """Cut ``path`` at the first union encountered while walking it.

    All members of a union share offset 0, so a union object is a single
    location to the portable strategies; any reference into a union is a
    reference to the union itself.
    """
    out: List[str] = []
    cur = _skip_arrays(t)
    for name in path:
        if isinstance(cur, UnionType):
            break
        if not isinstance(cur, StructType):
            break
        cur = _skip_arrays(cur.field_named(name).type)
        out.append(name)
    return tuple(out)


@_memo_by_type
def type_at(t: CType, path: Path) -> CType:
    """Declared type at ``path`` within ``t`` (arrays entered transparently)."""
    cur = _skip_arrays(t)
    for name in path:
        if not isinstance(cur, StructType):
            raise TypeError(f"cannot select .{name} within {cur!r}")
        cur = _skip_arrays(cur.field_named(name).type)
    return cur


@_memo_by_type
def normalize_path(t: CType, path: Path) -> Path:
    """Paper §4.3.2 ``normalize``: descend to the innermost first field.

    Truncates at unions, then, while the referenced sub-object is a
    (non-union) structure with at least one member, appends the first
    member's name.  The result is the canonical representative of every
    sub-object starting at the same address.
    """
    path = truncate_at_union(t, path)
    cur = type_at(t, path)
    out = list(path)
    while (
        isinstance(cur, StructType)
        and not isinstance(cur, UnionType)
        and cur.is_complete
        and cur.members()
    ):
        first = cur.members()[0]
        out.append(first.name)
        cur = _skip_arrays(first.type)
        if isinstance(cur, UnionType):
            break
    return tuple(out)


def _all_paths(t: CType, prefix: Path, acc: List[Path]) -> None:
    acc.append(prefix)
    cur = _skip_arrays(t)
    if isinstance(cur, UnionType):
        return
    if isinstance(cur, StructType) and cur.is_complete:
        for f in cur.members():
            _all_paths(f.type, prefix + (f.name,), acc)


@_memo_by_type
def normalized_positions(t: CType) -> List[Path]:
    """All distinct normalized field positions of ``t``, in layout order.

    This is the universe of locations the portable strategies distinguish
    within one object: every field path, normalized, de-duplicated, in
    pre-order (which coincides with address order under any conforming
    layout for the *relative* order of positions that ANSI C pins down).
    """
    raw: List[Path] = []
    _all_paths(t, (), raw)
    seen = set()
    out: List[Path] = []
    for p in raw:
        n = normalize_path(t, p)
        if n not in seen:
            seen.add(n)
            out.append(n)
    return out


def _array_ancestor_prefix(t: CType, path: Path) -> Optional[Path]:
    """Shortest prefix of ``path`` whose declared field type is an array.

    Used for footnote 5: a position inside an array must consider every
    position inside that array as a "following field" (a pointer can be
    advanced from any element to any other).
    """
    cur: CType = t
    if isinstance(cur, ArrayType):
        return ()
    for i, name in enumerate(path):
        cur = _skip_arrays(cur)
        if not isinstance(cur, StructType):
            return None
        cur = cur.field_named(name).type
        if isinstance(cur, ArrayType):
            return path[: i + 1]
    return None


@_memo_by_type
def positions_at_or_after(t: CType, pos: Path) -> List[Path]:
    """Normalized positions of ``t`` at or after ``pos`` in layout order.

    The conservative branch of the portable ``lookup`` functions returns
    "all fields of ``t`` starting with ``β``"; this computes that set,
    widened per footnote 5 so that when ``pos`` lies inside an array the
    whole array's positions are included.
    """
    allp = normalized_positions(t)
    try:
        start = allp.index(pos)
    except ValueError:
        # pos is not a position of t (e.g. object accessed beyond its
        # type): be conservative and return everything.
        return list(allp)
    anc = _array_ancestor_prefix(t, pos)
    if anc is not None:
        for i, p in enumerate(allp):
            if p[: len(anc)] == anc:
                start = min(start, i)
                break
    return allp[start:]


@_memo_by_type
def leaf_count(t: CType) -> int:
    """Number of scalar leaves of ``t`` (arrays one element, unions one leaf).

    Used to expand a Collapse-Always fact ``pointsTo(p, s)`` into per-field
    facts for the Figure 4 comparison ("that fact is expanded to the set of
    facts pointsTo(p, s.α) for all fields α in s").
    """
    cur = _skip_arrays(t)
    if isinstance(cur, UnionType):
        return 1
    if isinstance(cur, StructType) and cur.is_complete:
        if not cur.members():
            return 1
        return sum(leaf_count(f.type) for f in cur.members())
    return 1


@_memo_by_type
def prefix_candidates(t: CType, norm: Path) -> List[Tuple[Path, CType]]:
    """The paper's ``δ`` candidates: prefixes naming the same address.

    Given a *normalized* position ``norm`` of an object of type ``t``,
    return every prefix ``δ`` of ``norm`` (including the empty prefix and
    ``norm`` itself) such that ``normalize(t.δ) == norm`` — i.e. every
    enclosing sub-object whose first-field chain ends at ``norm`` — paired
    with its declared type.  Ordered outermost first.
    """
    out: List[Tuple[Path, CType]] = []
    for i in range(len(norm) + 1):
        prefix = norm[:i]
        try:
            if normalize_path(t, prefix) == norm:
                out.append((prefix, type_at(t, prefix)))
        except (KeyError, TypeError):
            continue
    return out
