"""Worklist policies and the two drain loops of the semi-naive fixpoint.

The paper's rules (Figure 2) are monotone, so *any* fair processing
order reaches the same least fixpoint — the worklist is pure policy.
This module separates that policy from the engine:

- :class:`Worklist` — the protocol the engine and
  :meth:`~repro.core.graph.ConstraintGraph.merge_classes` program
  against: ``enqueue`` accumulates a delta bitset per equivalence class,
  ``pop`` yields the next (representative, delta) batch, and ``steal``
  lets a collapse move a dead class's pending delta to its survivor.
- :class:`PriorityWorklist` — the default: a heap of ref IDs.  The ID
  *is* the discovery index, so pops roughly follow topological order of
  the constraint graph (fewer re-propagations).
- :class:`FifoWorklist` — plain FIFO; exists to *demonstrate* order
  independence (the differential tests solve with both and require
  identical fixpoints and order-independent counters).
- :func:`drain` / :func:`drain_traced` — the propagation loops.  Both
  flush one class's accumulated delta as a batch: copy edges get one
  big-int union each, windows are matched per member offset, and
  subscribers receive the decoded refs (re-entering the rule closures in
  :mod:`repro.core.rules`).  The untraced loop additionally runs online
  cycle collapsing (Lazy Cycle Detection); the traced loop keeps
  collapsing off — the union-find stays the identity so one (source ID,
  target ID) pair names one logical fact — and records a provenance
  flow for every propagation that added facts.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Dict, List, Optional, Protocol, Tuple

from ..ir.refs import OffsetRef

__all__ = [
    "Worklist",
    "PriorityWorklist",
    "FifoWorklist",
    "WORKLISTS",
    "drain",
    "drain_traced",
]


class Worklist(Protocol):
    """What a drain policy must provide.

    A worklist holds, per equivalence-class representative, the delta
    bitset of pointee IDs not yet propagated.  ``pop`` is handed the
    union-find ``find`` so it can skip entries made stale by a collapse
    (their pending delta has been stolen onto the surviving class).
    """

    def enqueue(self, rep: int, bits: int) -> None:
        """Accumulate ``bits`` into ``rep``'s pending delta."""
        ...

    def pop(self, find) -> Optional[Tuple[int, int]]:
        """Next ``(representative, delta)`` batch, or None when empty."""
        ...

    def steal(self, dead: int) -> int:
        """Remove and return the pending delta of a merged-away class."""
        ...


class PriorityWorklist:
    """Heap of ref IDs ordered by discovery index (default policy).

    Because the fact base interns refs in first-seen order, the ID
    doubles as a discovery index and pops roughly follow topological
    order of the constraint graph.  A rep is pushed when its pending
    entry is created; stale heap entries (drained or merged reps) are
    skipped on pop.
    """

    __slots__ = ("_heap", "_pending")

    def __init__(self) -> None:
        self._heap: List[int] = []
        self._pending: Dict[int, int] = {}

    def enqueue(self, rep: int, bits: int) -> None:
        pending = self._pending
        cur = pending.get(rep)
        if cur is None:
            pending[rep] = bits
            heappush(self._heap, rep)
        else:
            pending[rep] = cur | bits

    def pop(self, find) -> Optional[Tuple[int, int]]:
        heap = self._heap
        pending = self._pending
        while heap:
            raw = heappop(heap)
            delta = pending.pop(raw, 0)
            rep = find(raw)
            if rep != raw:
                # The heap entry's class was merged since the push: its
                # own pending delta (if any — an enqueue keyed by a
                # non-representative must never be stranded) joins the
                # survivor's.  See ``test_worklist_merge.py``.
                delta |= pending.pop(rep, 0)
            if delta:
                return rep, delta
        return None

    def steal(self, dead: int) -> int:
        return self._pending.pop(dead, 0)


class FifoWorklist:
    """First-in first-out policy (a deque instead of a heap).

    Functionally interchangeable with :class:`PriorityWorklist` — same
    least fixpoint, same order-independent counters — just usually more
    re-propagation.  Kept as the living proof of order independence.
    """

    __slots__ = ("_queue", "_pending")

    def __init__(self) -> None:
        self._queue: deque = deque()
        self._pending: Dict[int, int] = {}

    def enqueue(self, rep: int, bits: int) -> None:
        pending = self._pending
        cur = pending.get(rep)
        if cur is None:
            pending[rep] = bits
            self._queue.append(rep)
        else:
            pending[rep] = cur | bits

    def pop(self, find) -> Optional[Tuple[int, int]]:
        queue = self._queue
        pending = self._pending
        while queue:
            raw = queue.popleft()
            delta = pending.pop(raw, 0)
            rep = find(raw)
            if rep != raw:
                # Same stranding guard as PriorityWorklist.pop.
                delta |= pending.pop(rep, 0)
            if delta:
                return rep, delta
        return None

    def steal(self, dead: int) -> int:
        return self._pending.pop(dead, 0)


#: Policy registry for ``Engine(..., worklist=...)`` / the session facade.
WORKLISTS = {
    "priority": PriorityWorklist,
    "fifo": FifoWorklist,
}


def drain(eng) -> None:
    """Untraced propagation loop: drain ``eng``'s worklist to fixpoint.

    Each popped batch names a class whose accumulated delta bitset is
    flushed: copy edges receive the delta as a single big-int union
    each, windows are matched once per member offset, and subscribers
    get the decoded refs.  A propagation that adds nothing triggers the
    lazy cycle probe (``eng._maybe_collapse``); a collapse may merge the
    class being drained mid-batch, in which case the remaining work
    re-resolves representatives on the fly and over-deliveries are
    absorbed by bit- and seen-set dedup.
    """
    graph = eng.graph
    wl = eng.worklist
    facts = graph.facts
    find = facts.find
    adj = graph.copy_adj
    windows = graph.windows
    subs = graph.subs
    add_bits = eng._add_bits
    fadd_bits = facts.add_bits
    account = eng._account
    enqueue = eng._enqueue
    stats = eng.stats
    pts = facts._pts
    while True:
        item = wl.pop(find)
        if item is None:
            return
        rep, delta = item
        edges = adj.get(rep)
        if edges:
            # ``rep`` can only change via a collapse, and collapses only
            # happen inside ``_maybe_collapse`` — so the representative
            # is re-resolved after a probe rather than per edge.  The
            # two-level parent probe is ``find``'s fast path inlined
            # (almost every ID is its own root).
            parent = facts._parent
            for tid in tuple(edges):
                rt = parent[tid]
                if parent[rt] != rt:
                    rt = find(rt)
                if rt == rep:
                    stats.props_saved += 1
                    continue
                new, gain, landed = fadd_bits(tid, delta)
                if new:
                    account(gain)
                    enqueue(landed, new)
                else:
                    # No-op propagation: probe for a cycle, but only
                    # once the two sets have converged — members of a
                    # copy cycle always equalize before their final
                    # no-op, and the equality test is a single big-int
                    # compare vs. a full DFS over the copy graph.
                    if pts[rep] == pts[rt]:
                        eng._maybe_collapse(rep, rt)
                        rep = find(rep)
        rep = find(rep)
        if windows:
            canon = eng.strategy.canon_offset_ref  # type: ignore[attr-defined]
            refs = facts._refs
            intern = facts.intern
            for m in tuple(facts._members[rep]):
                ref = refs[m]
                if type(ref) is OffsetRef:
                    index = windows.get(ref.obj)
                    if index is not None:
                        off = ref.offset
                        for lo, dobj, dbase in index.matches(off):
                            dref = canon(OffsetRef(dobj, dbase + (off - lo)))
                            if dref is not None:
                                add_bits(intern(dref), delta)
        cbs = subs.get(rep)
        if cbs:
            delta_items = facts.decode_items(delta)
            # List iteration tolerates appends; a subscriber added
            # mid-batch replays existing facts itself and the inline
            # seen-set dedup absorbs the overlap.
            for seen, cb, _desc in cbs:
                for did, dst in delta_items:
                    if did not in seen:
                        seen.add(did)
                        cb(dst)


def drain_traced(eng) -> None:
    """The traced twin of :func:`drain`: identical propagation minus the
    lazy cycle probe (collapsing is a pure optimization and stays off
    under tracing so the union-find is the identity and each ``(source
    ID, target ID)`` pair names one logical fact), plus a
    :meth:`~repro.obs.provenance.Tracer.record_flow` call on every
    propagation that added facts.  ``eng._ctx`` is cleared before
    subscriber callbacks run: rule callbacks open their own contexts,
    and anything that does not (library-summary closures) records as
    context 0 ("unattributed").
    """
    tracer = eng.tracer
    graph = eng.graph
    wl = eng.worklist
    facts = graph.facts
    find = facts.find
    adj = graph.copy_adj
    windows = graph.windows
    subs = graph.subs
    add_bits = eng._add_bits
    edge_prov = eng._edge_prov
    win_prov = eng._win_prov
    while True:
        item = wl.pop(find)
        if item is None:
            return
        rep, delta = item
        edges = adj.get(rep)
        if edges:
            for tid in tuple(edges):
                new = add_bits(tid, delta)
                if new:
                    tracer.record_flow(
                        tid, new, edge_prov.get((rep, tid), 0), rep
                    )
        if windows:
            canon = eng.strategy.canon_offset_ref  # type: ignore[attr-defined]
            refs = facts._refs
            intern = facts.intern
            for m in tuple(facts._members[rep]):
                ref = refs[m]
                if type(ref) is OffsetRef:
                    index = windows.get(ref.obj)
                    if index is not None:
                        off = ref.offset
                        for lo, dobj, dbase in index.matches(off):
                            dref = canon(OffsetRef(dobj, dbase + (off - lo)))
                            if dref is not None:
                                did = intern(dref)
                                new = add_bits(did, delta)
                                if new:
                                    tracer.record_flow(
                                        did, new,
                                        win_prov.get((ref.obj, lo, dobj, dbase), 0),
                                        m,
                                    )
        cbs = subs.get(rep)
        if cbs:
            delta_items = facts.decode_items(delta)
            eng._ctx = 0
            for seen, cb, _desc in cbs:
                for did, dst in delta_items:
                    if did not in seen:
                        seen.add(did)
                        cb(dst)
