"""Demand-driven solving: the fixpoint restricted to what a query needs.

The exhaustive engine (:meth:`Engine.solve`) installs every statement
and drains to the least fixpoint of the whole program.  Most clients ask
about a handful of pointers; this module computes only the facts those
queries *transitively demand*, by walking the Figure-2 rules backwards
from the query set and installing just the statements the backward
closure reaches.

Soundness argument
------------------

Let ``All`` be the program's statement set and ``S ⊆ All`` the installed
subset.  The Figure-2 rules are monotone, so ``fix(S) ⊆ fix(All)``
pointwise for every reference.  The demand closure maintains one
invariant: **for every demanded top-level object ``o``, every statement
that can write a fact into a reference of ``o`` is installed, and every
object those statements read from is itself demanded.**  Under that
invariant a straightforward induction over derivations shows
``fix(S)(r) = fix(All)(r)`` for every reference ``r`` of a demanded
object: any exhaustive derivation of a fact on ``r`` uses only
statements in ``S`` applied to references of demanded objects.  Since
demanding *more* objects only grows ``S``, over-demanding is always
safe — the limit case (demand everything) is exactly the exhaustive
solve.  The differential test suite asserts the restricted equality over
every benchmark program, all four strategies, strict and lenient.

Per-rule backward dependencies (``st`` installs iff a demanded object
can receive a fact from it; installing demands the sources):

========== ==================================== =======================
form       installs when                        then demands
========== ==================================== =======================
AddrOf     ``lhs`` demanded                     (nothing — the target
                                                is data, not a source)
Copy       ``lhs`` demanded                     ``rhs.obj``
Load       ``lhs`` demanded                     ``ptr``, and every
                                                current pointee object
                                                of ``ptr`` (re-checked
                                                as its set grows)
FieldAddr  ``lhs`` demanded                     ``ptr``
PtrArith   ``lhs`` demanded                     every operand
Store      some pointee object of ``ptr`` is    ``rhs`` (``ptr`` is
           demanded (dynamic — every store      demanded up front)
           pointer is demanded up front so its
           set is exact when checked)
Call       a parameter / vararg / ``lhs`` of    the matching arguments,
(defined)  the callee is demanded               the callee's retval
Call       ``lhs`` demanded, or a pointee of    pointee objects of every
(extern)   an argument is demanded (args are    argument (dynamic)
           demanded up front)
Call       —                                    **widening**
(indirect)
========== ==================================== =======================

Widening
--------

Two shapes escape the demanded fragment and *widen* to the exhaustive
engine (install every remaining statement, drain once, count
``demand_widenings``):

- **function pointers** — an indirect call, or a demanded object that is
  a parameter / retval / vararg of an *address-taken* defined function
  (an unknown binding — including a library summary handing the function
  pointers, e.g. a ``qsort`` comparator — may write into it under
  Assumption 1's conservative call treatment);
- **havoc objects** — a demanded lenient-mode havoc object
  (``f::$havoc``) or the pessimistic ``<unknown>`` value: their sets are
  fed by degradation machinery rather than ordinary assignment forms.

A widened demand solve *is* the exhaustive fixpoint (every statement is
installed), so callers may cache it as a complete result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Union

from ..diag import DiagnosticSink
from ..ir.objects import AbstractObject, ObjKind
from ..ir.program import Program
from ..ir.refs import FieldRef, Ref
from ..ir.stmts import (
    AddrOf,
    Call,
    Copy,
    FieldAddr,
    Load,
    PtrArith,
    Stmt,
    Store,
)
from .engine import Engine, Result
from .rules import setup_stmt
from .strategy import Strategy
from .worklist import Worklist

__all__ = ["DemandResult", "solve_demand", "query_refs"]

#: What callers may pass as one query: a top-level object (meaning the
#: whole object), or an already-built reference.
Query = Union[AbstractObject, Ref]


def query_refs(program: Program, queries: Iterable[Query]) -> List[Ref]:
    """Normalize a query set to references (objects become whole-object
    refs).  Raises ``KeyError`` for an object not in ``program``."""
    refs: List[Ref] = []
    for q in queries:
        if isinstance(q, AbstractObject):
            if program.objects.lookup(q.name) is not q:
                raise KeyError(f"object {q.name!r} is not part of {program.name}")
            refs.append(FieldRef(q, ()))
        else:
            refs.append(q)
    return refs


@dataclass
class DemandResult:
    """A :class:`Result` whose sets are exact for the demanded objects
    (and subsets of the exhaustive sets everywhere else)."""

    result: Result
    #: Top-level objects whose points-to sets are exact.
    demanded: frozenset
    #: Statements installed (== the program's statement count if widened).
    installed: int
    #: True when the solve widened to the exhaustive engine.
    widened: bool

    @property
    def facts(self):
        return self.result.facts

    @property
    def stats(self):
        return self.result.stats

    def points_to(self, what):
        return self.result.points_to(what)

    def points_to_names(self, what):
        return self.result.points_to_names(what)


def _address_taken_escapes(program: Program) -> Set[AbstractObject]:
    """Objects an unknown call binding may write into: parameters,
    retvals, and varargs of every address-taken defined function (same
    approximation as :func:`repro.core.modular.approximate_callgraph`)."""
    taken: Set[str] = set()
    for st in program.all_stmts():
        if isinstance(st, AddrOf):
            obj = st.target.obj
        elif isinstance(st, Copy):
            obj = st.rhs.obj
        else:
            continue
        if obj.is_function and obj.name in program.functions:
            taken.add(obj.name)
    escapes: Set[AbstractObject] = set()
    for name in taken:
        info = program.functions[name]
        escapes.update(info.params)
        if info.retval is not None:
            escapes.add(info.retval)
        if info.vararg is not None:
            escapes.add(info.vararg)
    return escapes


def solve_demand(
    program: Program,
    strategy: Strategy,
    queries: Iterable[Query],
    *,
    max_facts: int = 5_000_000,
    assume_valid_pointers: bool = True,
    worklist: Union[str, Worklist] = "priority",
    backend=None,
    diagnostics: Optional[DiagnosticSink] = None,
) -> DemandResult:
    """Solve only the fragment of ``program`` demanded by ``queries``.

    Returns a :class:`DemandResult`; its ``result.points_to`` is exact
    for every queried reference (differentially tested against the
    exhaustive fixpoint).  Widens — installs everything — when a query
    escapes the demanded fragment (see the module docstring).
    """
    refs = query_refs(program, queries)
    engine = Engine(
        program,
        strategy,
        max_facts=max_facts,
        assume_valid_pointers=assume_valid_pointers,
        worklist=worklist,
        backend=backend,
        diagnostics=diagnostics,
    )
    t0 = time.perf_counter()

    escapes = _address_taken_escapes(program)
    all_stmts: List[Stmt] = list(program.all_stmts())

    installed: Set[int] = set()          # id(stmt)
    demanded: Set[AbstractObject] = set()
    frontier: List[AbstractObject] = []  # newly demanded, to process
    widen = False

    # Indexes: which statements can write into a given top-level object.
    writers: dict = {}

    def _writer(obj: AbstractObject, st: Stmt) -> None:
        writers.setdefault(obj, []).append(st)

    stores: List[Store] = []
    extern_calls: List[Call] = []
    dyn_loads: List[Load] = []           # installed loads (pointee demand)
    dyn_calls: List[tuple] = []          # (call, info) direct defined calls
    dyn_externs: List[Call] = []         # installed extern calls

    for st in all_stmts:
        if isinstance(st, (AddrOf, Copy, Load, FieldAddr, PtrArith)):
            _writer(st.lhs, st)
        elif isinstance(st, Store):
            stores.append(st)
        elif isinstance(st, Call):
            if st.indirect:
                # Unknown binding: any demand that reaches it widens via
                # `escapes`; the call's own lhs still indexes it so a
                # query on the lhs finds the widening trigger.
                if st.lhs is not None:
                    _writer(st.lhs, st)
                continue
            info = program.function_for_object(st.callee)
            if info is None:
                extern_calls.append(st)
                if st.lhs is not None:
                    _writer(st.lhs, st)
            else:
                for p in info.params:
                    _writer(p, st)
                if info.vararg is not None:
                    _writer(info.vararg, st)
                if st.lhs is not None:
                    _writer(st.lhs, st)

    def demand(obj: AbstractObject) -> None:
        if obj in demanded:
            return
        demanded.add(obj)
        frontier.append(obj)

    def install(st: Stmt) -> bool:
        if id(st) in installed:
            return False
        installed.add(id(st))
        setup_stmt(engine, st)
        return True

    def try_install(st: Stmt) -> None:
        nonlocal widen
        if id(st) in installed:
            return
        if isinstance(st, AddrOf):
            install(st)
        elif isinstance(st, Copy):
            install(st)
            demand(st.rhs.obj)
        elif isinstance(st, Load):
            install(st)
            demand(st.ptr)
            dyn_loads.append(st)
        elif isinstance(st, FieldAddr):
            install(st)
            demand(st.ptr)
        elif isinstance(st, PtrArith):
            install(st)
            for op in st.operands:
                demand(op)
        elif isinstance(st, Call):
            if st.indirect:
                widen = True
                return
            info = program.function_for_object(st.callee)
            if info is None:
                install(st)
                dyn_externs.append(st)
                if st.lhs is not None:
                    demand(st.lhs)
            else:
                install(st)
                dyn_calls.append((st, info))

    def pointee_objs(obj: AbstractObject) -> List[AbstractObject]:
        facts = engine.facts
        ref = engine.norm_obj(obj)
        bits = facts.pts_bits(facts.intern(ref))
        return [t.obj for t in facts.decode(bits)] if bits else []

    # Seed the closure.  Every store pointer and extern-call argument is
    # demanded up front so the *dynamic* install conditions below read
    # exact sets (a store writes through its pointer; a summary reads
    # and writes through its arguments).
    for r in refs:
        demand(r.obj)
    for st in stores:
        demand(st.ptr)
    for c in extern_calls:
        for a in c.args:
            demand(a)

    # Round until nothing changes: process newly demanded objects, then
    # the dynamic conditions (which read points-to sets), then drain.
    while True:
        changed = False
        while frontier and not widen:
            obj = frontier.pop()
            changed = True
            if (obj in escapes or obj.name.endswith("::$havoc")
                    or obj.name == "<unknown>"):
                widen = True
                break
            for st in writers.get(obj, ()):
                try_install(st)
        if widen:
            break
        # Dynamic conditions, re-evaluated against the current sets.
        for st in stores:
            if id(st) not in installed and any(
                t in demanded for t in pointee_objs(st.ptr)
            ):
                install(st)
                demand(st.rhs)
                changed = True
        for st in dyn_loads:
            for t in pointee_objs(st.ptr):
                if t not in demanded:
                    demand(t)
                    changed = True
        for st in dyn_externs:
            for a in st.args:
                for t in pointee_objs(a):
                    if t not in demanded:
                        demand(t)
                        changed = True
        for call, info in dyn_calls:
            for i, arg in enumerate(call.args):
                if i < len(info.params):
                    if info.params[i] in demanded and arg not in demanded:
                        demand(arg)
                        changed = True
                elif info.vararg is not None and info.vararg in demanded:
                    if arg not in demanded:
                        demand(arg)
                        changed = True
            if call.lhs is not None and info.retval is not None:
                if call.lhs in demanded and info.retval not in demanded:
                    demand(info.retval)
                    changed = True
        if frontier:
            continue
        before = engine.stats.facts
        engine.drain()
        if engine.stats.facts != before:
            changed = True
        if not changed:
            break

    if widen:
        engine.stats.demand_widenings += 1
        for st in all_stmts:
            if id(st) not in installed:
                installed.add(id(st))
                setup_stmt(engine, st)
        engine.drain()

    engine._solved = True
    engine.stats.demanded_facts = engine.stats.facts
    engine.stats.solve_seconds = time.perf_counter() - t0
    result = Result(program, strategy, engine.facts, engine.stats)
    # Function objects never hold points-to facts; reporting them as
    # "demanded" would be noise.
    exact = frozenset(
        o for o in demanded if o.kind is not ObjKind.FUNCTION
    ) if not widen else frozenset(
        o for o in program.objects.all_objects()
        if o.kind is not ObjKind.FUNCTION
    )
    return DemandResult(
        result=result,
        demanded=exact,
        installed=len(installed),
        widened=widen,
    )
