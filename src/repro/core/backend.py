"""Pluggable propagation backends: how a drained delta reaches the graph.

The paper's fixpoint is a monotone closure over the Figure-2 rules, so
*what* must be propagated is fixed — facts flow along copy edges, byte
windows, and subscriptions until nothing is new — but *how* the deltas
are pushed is pure mechanism.  This module makes that mechanism a
replaceable layer behind the solver seams:

- :class:`PropagationBackend` — the protocol: one ``drain(engine)``
  call that processes pending worklist deltas to fixpoint, using only
  the engine's public services (``_add_bits``/``_account``/
  ``_maybe_collapse`` and the live :class:`~repro.core.graph.ConstraintGraph`
  structures).  Backends see only union-find class representatives, so
  online cycle collapsing composes with every implementation.
- :class:`BigintBackend` (``"bigint"``) — the incumbent per-pop drain,
  delegated verbatim to :func:`repro.core.worklist.drain`.
- :class:`DiffPropBackend` (``"diffprop"``) — true difference
  propagation: per-edge, per-window and per-subscriber-list *frontier*
  bitsets record what each structure has already been sent, so every
  delivery processes only ``delta & ~already_sent``.  Re-sent bits
  (which the bigint drain would re-union and re-dedup downstream) are
  suppressed at the source and counted in
  ``stats.frontier_bits_suppressed``.
- :class:`NumpyBackend` (``"numpy"``) — a round-based dense backend:
  each round gathers every pending delta, snapshots the collapsed copy
  graph into a condensed DAG (merging whole copy-edge SCCs eagerly via
  the same union-find the LCD probe uses), runs the copy-edge
  transitive closure over the batch, applies the closed deltas in bulk,
  and only then delivers to windows and subscriptions.  On large graphs
  the closure runs as blocked ``A @ P`` boolean matmuls over a packed
  points-to matrix; below that scale a topologically-ordered big-int
  pass is faster than any numpy kernel (per-element numpy dispatch
  overhead dominates tiny operands).  Subscription delivery is *fused*
  into the rounds: each pending (seen, cb) pair keeps a delivered-bits
  mask, novelty for the whole batch is computed as bitmask differences
  (vectorized over packed uint8 columns when the batch is large), and
  only the genuinely novel pointees are dispatched — through the rule
  descriptors (:mod:`repro.core.codegen`), probing the engine's fused
  lookup/resolve memos directly instead of re-entering the closures
  per pointee.  When numpy is not importable, or the graph is too small
  for batching to pay, the backend falls back to
  :class:`DiffPropBackend` for the whole drain — ``stats.dense_rounds``
  stays 0, which is the observable fallback signal.
- :class:`~repro.core.codegen.CodegenBackend` (``"codegen"``) — the
  drain specialized into generated flat Python source per (worklist
  policy, windows shape), compiled once and cached by content key; see
  :mod:`repro.core.codegen`.
- :class:`~repro.core.codegen.AccelBackend` (``"accel"``) — the same,
  preferring an optionally built mypyc/Cython module
  (``tools/build_accel.py``) when present; falls back to the generated
  Python path when absent (``stats.accel_active`` reports which ran).

Selection: ``Engine(backend=...)`` / ``AnalysisSession(backend=...)`` /
``--backend`` on the CLIs accept a registry key (:data:`BACKENDS`) or a
ready instance; ``None`` consults the ``REPRO_BACKEND`` environment
variable and defaults to ``"bigint"``.  ``trace=True`` always forces
``bigint`` (the provenance drain needs the uncollapsed per-pop loop)
and records a diagnostic when that overrides an explicit choice.

Backends hold per-engine propagation state (the frontiers, the DAG
snapshot), so each :class:`~repro.core.engine.Engine` constructs its
own instance; sharing one across engines is not supported.

None of this can change the analysis: every backend reaches the same
least fixpoint and identical order-independent counters (gated
byte-for-byte by ``python -m repro.bench --check-baseline`` and the
differential matrix in ``tests/test_backends.py``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Protocol, Set, Tuple, Union

from ..ir.refs import OffsetRef
from .codegen import AccelBackend, CodegenBackend, dispatch_novel
from .worklist import drain as _bigint_drain

__all__ = [
    "PropagationBackend",
    "BigintBackend",
    "DiffPropBackend",
    "NumpyBackend",
    "CodegenBackend",
    "AccelBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "backend_name",
    "resolve_backend",
    "available_numpy",
]

#: Environment variable consulted when no backend is passed explicitly.
ENV_VAR = "REPRO_BACKEND"
DEFAULT_BACKEND = "bigint"

_np_module = None
_np_checked = False


def available_numpy():
    """The numpy module, or None when it cannot be imported.

    Cached after the first probe; tests monkeypatch this function to
    exercise the fallback path without uninstalling numpy.
    """
    global _np_module, _np_checked
    if not _np_checked:
        try:
            import numpy  # noqa: PLC0415 - optional dependency probe

            _np_module = numpy
        except Exception:  # pragma: no cover - depends on environment
            _np_module = None
        _np_checked = True
    return _np_module


class PropagationBackend(Protocol):
    """What a propagation backend must provide.

    ``drain`` processes the engine's pending worklist deltas until the
    worklist is empty (the least fixpoint of the installed rules),
    raising :class:`~repro.core.stats.AnalysisBudgetExceeded` through
    the engine's accounting chokepoint like every other drain variant.
    ``name`` is the registry key reported in ``stats.backend``.
    """

    name: str

    def drain(self, eng) -> None:
        """Propagate every pending delta to fixpoint."""
        ...


class BigintBackend:
    """Today's per-pop big-int drain, extracted and unchanged."""

    name = "bigint"

    def drain(self, eng) -> None:
        _bigint_drain(eng)


class DiffPropBackend:
    """Difference propagation: frontier bitsets per receiving structure.

    The bigint drain re-sends a class's whole delta to every structure
    and relies on downstream dedup (``add_bits``'s ``& ~old``, the
    per-subscription seen-sets).  This backend records, per copy edge,
    per window match, and per subscriber list, the bits already sent,
    and sends only ``delta & ~already_sent`` — suppressing the
    duplicate work at the source.  Frontier keys are representative-
    relative, so a class merge simply orphans the old keys: the merged
    class starts a fresh frontier and any re-delivery is absorbed by
    the same downstream dedup the bigint drain uses (correctness never
    depends on a frontier being *complete*, only on it being *sound*:
    a bit enters a frontier exactly when it is sent).
    """

    name = "diffprop"

    def __init__(self) -> None:
        #: (source rep << 21 | original dst ID) -> bits already unioned
        #: into dst.  The packed int key hashes as itself — cheaper than
        #: a tuple per edge delivery; IDs are dense interning indices, so
        #: 21 bits (2M refs) is far beyond any real graph (a tuple key
        #: would be used past that, see drain).
        self._edge_sent: Dict[int, int] = {}
        #: (member ID, window lo, dst obj, dst base) -> bits already sent.
        self._win_sent: Dict[Tuple[int, int, object, int], int] = {}
        #: id(subscriber list) -> (the list, pinned; bits already delivered).
        #: Keyed by list identity because a merge replaces the survivor's
        #: list (see ConstraintGraph.merge_classes) — the fresh list gets
        #: a fresh frontier, which is exactly the re-delivery the moved
        #: subscribers need.
        self._sub_sent: Dict[int, Tuple[list, int]] = {}

    # -- deliveries shared with the numpy backend ----------------------
    def deliver_windows(self, eng, rep: int, delta: int) -> None:
        """Window-interval matches for ``rep``'s members, frontier-deduped."""
        graph = eng.graph
        windows = graph.windows
        if not windows:
            return
        facts = graph.facts
        win_sent = self._win_sent
        stats = eng.stats
        add_bits = eng._add_bits
        canon = eng.strategy.canon_offset_ref  # type: ignore[attr-defined]
        refs = facts._refs
        intern = facts.intern
        for m in tuple(facts._members[rep]):
            ref = refs[m]
            if type(ref) is OffsetRef:
                index = windows.get(ref.obj)
                if index is not None:
                    off = ref.offset
                    for lo, dobj, dbase in index.matches(off):
                        key = (m, lo, dobj, dbase)
                        sent = win_sent.get(key, 0)
                        send = delta & ~sent
                        if not send:
                            stats.frontier_bits_suppressed += delta.bit_count()
                            continue
                        if send != delta:
                            stats.frontier_bits_suppressed += (
                                delta & sent
                            ).bit_count()
                        win_sent[key] = sent | send
                        dref = canon(OffsetRef(dobj, dbase + (off - lo)))
                        if dref is not None:
                            add_bits(intern(dref), send)

    def deliver_subs(self, eng, rep: int, delta: int) -> None:
        """Subscriber callbacks for ``rep``, frontier-deduped per list."""
        cbs = eng.graph.subs.get(rep)
        if not cbs:
            return
        sub_sent = self._sub_sent
        key = id(cbs)
        ent = sub_sent.get(key)
        sent = ent[1] if ent is not None and ent[0] is cbs else 0
        send = delta & ~sent
        if send != delta:
            eng.stats.frontier_bits_suppressed += (delta & sent).bit_count()
        if not send:
            return
        sub_sent[key] = (cbs, sent | send)
        delta_items = eng.facts.decode_items(send)
        # List iteration tolerates appends; a subscriber added mid-batch
        # replays existing facts itself and the inline seen-set dedup
        # absorbs the overlap.
        for seen, cb, _desc in cbs:
            for did, dst in delta_items:
                if did not in seen:
                    seen.add(did)
                    cb(dst)

    # ------------------------------------------------------------------
    def drain(self, eng) -> None:
        graph = eng.graph
        wl = eng.worklist
        facts = graph.facts
        find = facts.find
        adj = graph.copy_adj
        fadd_bits = facts.add_bits
        account = eng._account
        enqueue = eng._enqueue
        stats = eng.stats
        edge_sent = self._edge_sent
        pts = facts._pts
        while True:
            item = wl.pop(find)
            if item is None:
                return
            rep, delta = item
            edges = adj.get(rep)
            if edges:
                # ``rep`` only changes via a collapse inside
                # ``_maybe_collapse`` — re-resolved after each probe
                # rather than per edge (same as the bigint drain).  The
                # two-level parent probe is ``find``'s inlined fast path.
                parent = facts._parent
                for tid in tuple(edges):
                    rt = parent[tid]
                    if parent[rt] != rt:
                        rt = find(rt)
                    if rt == rep:
                        stats.props_saved += 1
                        continue
                    key = (rep << 21) | tid if tid < 2097152 else (rep, tid)
                    sent = edge_sent.get(key, 0)
                    send = delta & ~sent
                    if not send:
                        # Whole delta already sent over this edge: pure
                        # re-propagation the bigint drain would perform
                        # and dedup downstream.  Still worth the cycle
                        # probe — a fully-suppressed edge is exactly the
                        # converged no-op LCD keys on.
                        stats.props_saved += 1
                        stats.frontier_bits_suppressed += delta.bit_count()
                        if pts[rep] == pts[rt]:
                            eng._maybe_collapse(rep, rt)
                            rep = find(rep)
                        continue
                    if send != delta:
                        stats.frontier_bits_suppressed += (
                            delta & sent
                        ).bit_count()
                    edge_sent[key] = sent | send
                    new, gain, landed = fadd_bits(tid, send)
                    if new:
                        account(gain)
                        enqueue(landed, new)
                    else:
                        if pts[rep] == pts[rt]:
                            eng._maybe_collapse(rep, rt)
                            rep = find(rep)
            rep = find(rep)
            self.deliver_windows(eng, rep, delta)
            self.deliver_subs(eng, rep, delta)


class NumpyBackend:
    """Round-based dense drain with an optional numpy closure kernel.

    Each round: gather every pending worklist delta, rebuild (or reuse)
    a snapshot of the class-level copy DAG — merging whole copy-edge
    SCCs up front, so the closure runs over an acyclic condensation —
    run the copy-edge transitive closure of the batched deltas, apply
    them in bulk through the fact base and the budget chokepoint, and
    deliver the genuinely-new bits to windows and subscribers (whose
    rule closures feed the next round's worklist).  Closure results are
    applied without re-enqueueing: the closure already covered every
    copy edge transitively and the same-round delivery covers the other
    structures, so a worklist round-trip would be a guaranteed no-op.

    The closure kernel is chosen per round: at or above
    ``dense_kernel_edges`` class-level edges the deltas are unpacked
    into a boolean points-to matrix ``P`` and closed by iterating the
    blocked boolean matmul ``P |= (A @ P) > 0`` to fixpoint (``A`` the
    class adjacency); below it a single topologically-ordered big-int
    pass is used — at small scale Python big-int unions beat numpy
    kernels outright because per-call dispatch overhead dominates.

    Falls back to :class:`DiffPropBackend` for the whole drain when
    numpy is unavailable or the graph has fewer than ``min_dense_refs``
    interned refs (``stats.dense_rounds == 0`` is the fallback signal).
    """

    name = "numpy"
    #: Graphs below this many interned refs are drained by diffprop.
    min_dense_refs = 64
    #: Class-level edge count at which the matmul kernel takes over.
    dense_kernel_edges = 20_000
    #: Pending (seen, cb) pairs at or above this count per round have
    #: their novelty masks computed in one packed-uint8 numpy batch;
    #: below it per-pair big-int differences win (dispatch overhead).
    fuse_batch_pairs = 16

    def __init__(
        self,
        min_dense_refs: Optional[int] = None,
        dense_kernel_edges: Optional[int] = None,
    ) -> None:
        if min_dense_refs is not None:
            self.min_dense_refs = min_dense_refs
        if dense_kernel_edges is not None:
            self.dense_kernel_edges = dense_kernel_edges
        self._diff = DiffPropBackend()
        #: Cached condensed-DAG snapshot: topo-ordered class edge list.
        self._topo: List[Tuple[int, int]] = []
        self._stamp: Tuple[int, int] = (-1, -1)
        #: id(subscription entry) -> [entry, delivered-bits mask].  The
        #: mask mirrors the entry's seen-set as a bitset (seeded from it
        #: on first encounter, updated in lockstep), letting the fused
        #: rounds decide novelty for a whole batch with bitmask
        #: differences instead of per-item set probes.
        self._entry_masks: Dict[int, list] = {}

    # ------------------------------------------------------------------
    def drain(self, eng) -> None:
        np = available_numpy()
        if np is None or eng.facts.num_refs() < self.min_dense_refs:
            self._diff.drain(eng)
            return
        while True:
            pending = self._gather(eng)
            if not pending:
                return
            self._round(eng, np, pending)

    @staticmethod
    def _gather(eng) -> Dict[int, int]:
        """Pop the whole worklist into a rep -> delta batch."""
        wl = eng.worklist
        find = eng.facts.find
        pending: Dict[int, int] = {}
        while True:
            item = wl.pop(find)
            if item is None:
                return pending
            rep, delta = item
            cur = pending.get(rep)
            pending[rep] = delta if cur is None else cur | delta

    # ------------------------------------------------------------------
    def _round(self, eng, np, pending: Dict[int, int]) -> None:
        eng.stats.dense_rounds += 1
        facts = eng.facts
        find = facts.find
        topo = self._topo_edges(eng)
        # SCC merges during the snapshot re-enqueue stolen/fresh bits.
        for r, b in self._gather(eng).items():
            pending[r] = pending.get(r, 0) | b
        # Consolidate onto live representatives (merges may have moved
        # keys) before closing over the condensed DAG.
        delta: Dict[int, int] = {}
        for r, b in pending.items():
            rr = find(r)
            cur = delta.get(rr)
            delta[rr] = b if cur is None else cur | b
        if topo and delta:
            if len(topo) >= self.dense_kernel_edges:
                self._closure_matmul(np, topo, delta, facts.num_refs())
            else:
                # Topo-ordered single pass: the DAG guarantees one visit
                # per edge fully propagates the batch.
                for s, d in topo:
                    b = delta.get(s)
                    if b:
                        cur = delta.get(d)
                        if cur is None:
                            delta[d] = b
                        elif b & ~cur:
                            delta[d] = cur | b
        # Bulk apply through the fact base and the budget chokepoint —
        # deliberately without enqueueing (see class docstring).
        account = eng._account
        add_bits = facts.add_bits
        new_map: Dict[int, int] = {}
        for r in sorted(delta):
            bits = delta[r]
            new, gain, rep = add_bits(r, bits)
            if gain:
                account(gain)
            # Deliver the whole batch, not just the genuinely-new part:
            # the gathered pending bits were already *in* the fact base
            # (``_add_bits`` stores before it enqueues), yet windows and
            # subscribers have not seen them — exactly what the per-pop
            # drains deliver on pop.  The frontier dedup below absorbs
            # any overlap across rounds.
            send = bits | new
            if send:
                new_map[rep] = new_map.get(rep, 0) | send
        # Deliver to windows (shared frontier dedup) and then run the
        # fused subscription pass; rule dispatch enqueues follow-up work
        # for the next round.
        diff = self._diff
        for rep in sorted(new_map):
            diff.deliver_windows(eng, rep, new_map[rep])
        self._deliver_subs_fused(eng, np, new_map)

    # ------------------------------------------------------------------
    def _deliver_subs_fused(self, eng, np, new_map: Dict[int, int]) -> None:
        """Batched subscription delivery for one dense round.

        Applies the same per-list frontier as
        :meth:`DiffPropBackend.deliver_subs`, then decides per-entry
        novelty for the *whole* batch via delivered-bits masks — one
        bitmask difference per pending (seen, cb) pair (vectorized over
        packed uint8 columns when the batch is large) — and dispatches
        only the novel pointees through the rule descriptors
        (:func:`repro.core.codegen.dispatch_novel`), which probe the
        engine's fused lookup/resolve memos directly.  The seen-sets
        are updated in lockstep with the masks, so every other drain
        variant still sees exact dedup state.
        """
        subs = eng.graph.subs
        stats = eng.stats
        sub_sent = self._diff._sub_sent
        entry_masks = self._entry_masks
        pairs: List[Tuple[list, int]] = []
        for rep in sorted(new_map):
            cbs = subs.get(rep)
            if not cbs:
                continue
            delta = new_map[rep]
            key = id(cbs)
            ent = sub_sent.get(key)
            sent = ent[1] if ent is not None and ent[0] is cbs else 0
            send = delta & ~sent
            if send != delta:
                stats.frontier_bits_suppressed += (delta & sent).bit_count()
            if not send:
                continue
            sub_sent[key] = (cbs, sent | send)
            for entry in cbs:
                ekey = id(entry)
                rec = entry_masks.get(ekey)
                if rec is None or rec[0] is not entry:
                    mask = 0
                    for d in entry[0]:
                        mask |= 1 << d
                    rec = entry_masks[ekey] = [entry, mask]
                pairs.append((rec, send))
        if not pairs:
            return
        if len(pairs) >= self.fuse_batch_pairs:
            novels = self._novel_matrix(np, pairs, eng.facts.num_refs())
        else:
            novels = [send & ~rec[1] for rec, send in pairs]
        decode_items = eng.facts.decode_items
        decoded: Dict[int, list] = {}
        for (rec, send), novel in zip(pairs, novels):
            rec[1] |= send
            if novel:
                items = decoded.get(novel)
                if items is None:
                    items = decoded[novel] = decode_items(novel)
                dispatch_novel(eng, rec[0], items)

    @staticmethod
    def _novel_matrix(np, pairs: List[Tuple[list, int]], nbits: int) -> List[int]:
        """``send & ~delivered`` for every pair, as one packed batch.

        Packs the pending sends and the per-entry delivered masks into
        two uint8 matrices (one row per pair, one bitmask column block
        per ref ID) and computes all novelty masks with a single
        vectorized ``sends & ~masks`` — the subscription-dedup twin of
        the closure kernel's packed points-to matrix.
        """
        nbytes = (nbits + 7) // 8 or 1
        n = len(pairs)
        sends = np.zeros((n, nbytes), dtype=np.uint8)
        masks = np.zeros((n, nbytes), dtype=np.uint8)
        for i, (rec, send) in enumerate(pairs):
            sends[i] = np.frombuffer(
                send.to_bytes(nbytes, "little"), dtype=np.uint8
            )
            m = rec[1]
            if m:
                masks[i] = np.frombuffer(
                    m.to_bytes(nbytes, "little"), dtype=np.uint8
                )
        novel = sends & ~masks
        return [
            int.from_bytes(novel[i].tobytes(), "little") for i in range(n)
        ]

    # ------------------------------------------------------------------
    def _topo_edges(self, eng) -> List[Tuple[int, int]]:
        """The class-level copy DAG as a topo-ordered edge list (cached).

        Rebuilt only when edges were installed or classes merged since
        the last snapshot; the rebuild first merges every copy-edge SCC
        (eager, whole-cycle collapsing — the dense twin of the per-pop
        drains' lazy cycle detection) so the remaining graph is acyclic.
        """
        stats = eng.stats
        stamp = (stats.copy_edges, stats.sccs_collapsed)
        if stamp == self._stamp:
            return self._topo
        graph = eng.graph
        facts = graph.facts
        find = facts.find
        class_adj: Dict[int, Set[int]] = {}
        for src, dsts in graph.copy_adj.items():
            r = find(src)
            bucket = class_adj.setdefault(r, set())
            for tid in dsts:
                t = find(tid)
                if t != r:
                    bucket.add(t)
        sccs = self._tarjan(class_adj)
        for scc in sccs:
            if len(scc) > 1 and graph.merge_classes(
                scc, eng.worklist, eng._account
            ):
                stats.sccs_collapsed += 1
        # Reverse completion order is a topological order of the
        # condensation; number the (merged) classes accordingly.
        order: Dict[int, int] = {}
        for scc in reversed(sccs):
            r = find(scc[0])
            if r not in order:
                order[r] = len(order)
        edges: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for src, dsts in graph.copy_adj.items():
            r = find(src)
            for tid in dsts:
                t = find(tid)
                if t != r and (r, t) not in seen:
                    seen.add((r, t))
                    edges.append((r, t))
        edges.sort(key=lambda e: order.get(e[0], 0))
        self._topo = edges
        self._stamp = (stats.copy_edges, stats.sccs_collapsed)
        return edges

    @staticmethod
    def _tarjan(adj: Dict[int, Set[int]]) -> List[List[int]]:
        """Iterative Tarjan SCC over the class adjacency (completion order)."""
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        sccs: List[List[int]] = []
        counter = 0
        for root in list(adj):
            if root in index:
                continue
            work: List[Tuple[int, object]] = [(root, iter(adj.get(root, ())))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter
                        counter += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(adj.get(w, ()))))
                        advanced = True
                        break
                    if w in on_stack and index[w] < low[node]:
                        low[node] = index[w]
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if low[node] < low[parent]:
                        low[parent] = low[node]
                if low[node] == index[node]:
                    scc: List[int] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(scc)
        return sccs

    @staticmethod
    def _closure_matmul(
        np, topo: List[Tuple[int, int]], delta: Dict[int, int], nbits: int
    ) -> None:
        """Close ``delta`` over the DAG with blocked boolean matmuls.

        Packs the batched deltas into a boolean points-to matrix ``P``
        (one row per involved class, one column per ref ID) and iterates
        ``P |= (A @ P) > 0`` until fixpoint — at most longest-path-many
        matmuls.  Mutates ``delta`` in place with the closed bitsets.
        """
        nodes: List[int] = []
        idx: Dict[int, int] = {}
        for s, d in topo:
            if s not in idx:
                idx[s] = len(nodes)
                nodes.append(s)
            if d not in idx:
                idx[d] = len(nodes)
                nodes.append(d)
        for v in delta:
            if v not in idx:
                idx[v] = len(nodes)
                nodes.append(v)
        n = len(nodes)
        nbytes = (nbits + 7) // 8 or 1
        packed = np.zeros((n, nbytes), dtype=np.uint8)
        for v, b in delta.items():
            if b:
                packed[idx[v]] = np.frombuffer(
                    b.to_bytes(nbytes, "little"), dtype=np.uint8
                )
        bits = np.unpackbits(packed, axis=1, bitorder="little")
        adj = np.zeros((n, n), dtype=np.float32)
        for s, d in topo:
            adj[idx[d], idx[s]] = 1.0
        cur = bits.astype(np.float32)
        while True:
            grown = bits | ((adj @ cur) > 0)
            if np.array_equal(grown, bits):
                break
            bits = grown
            cur = bits.astype(np.float32)
        out = np.packbits(bits, axis=1, bitorder="little")
        for v in nodes:
            b = int.from_bytes(out[idx[v]].tobytes(), "little")
            if b:
                delta[v] = b


#: Registry for ``Engine(backend=...)`` / the CLIs.  Each engine gets a
#: fresh instance (backends hold per-engine frontier/snapshot state).
BACKENDS = {
    "bigint": BigintBackend,
    "diffprop": DiffPropBackend,
    "numpy": NumpyBackend,
    "codegen": CodegenBackend,
    "accel": AccelBackend,
}


def _availability_hints() -> str:
    """Degraded-backend notes appended to the unknown-backend error.

    ``numpy`` and ``accel`` are always *valid* choices (both fall back
    gracefully), but when their acceleration is unavailable a typo'd
    spec deserves the heads-up alongside the registered list.
    """
    from .codegen import load_accel  # noqa: PLC0415 - avoid import at module load

    hints = []
    if available_numpy() is None:
        hints.append("'numpy' will fall back to diffprop (numpy not importable)")
    if load_accel() is None:
        hints.append(
            "'accel' will fall back to codegen (compiled module not built; "
            "see tools/build_accel.py)"
        )
    return ("; note: " + "; ".join(hints)) if hints else ""


def backend_name(spec: Union[str, PropagationBackend, None]) -> str:
    """The registry key a backend spec resolves to (env-default aware).

    Raises :class:`KeyError` *here* — at engine/session construction or
    CLI parsing — for an unregistered name, naming the registered
    backends and where the bad value came from, instead of failing deep
    inside engine construction.
    """
    origin = ""
    if spec is None:
        spec = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
        origin = f" (from the {ENV_VAR} environment variable)"
    if isinstance(spec, str):
        if spec not in BACKENDS:
            raise KeyError(
                f"unknown propagation backend {spec!r}{origin}; "
                f"registered: {', '.join(sorted(BACKENDS))}"
                f"{_availability_hints()}"
            )
        return spec
    return spec.name


def resolve_backend(
    spec: Union[str, PropagationBackend, None] = None,
) -> PropagationBackend:
    """A ready backend instance for ``spec`` (name, instance, or None).

    ``None`` consults the ``REPRO_BACKEND`` environment variable, then
    falls back to :data:`DEFAULT_BACKEND`.  A passed instance is used
    as-is (callers own its lifecycle — one engine per instance).
    """
    if spec is None or isinstance(spec, str):
        return BACKENDS[backend_name(spec)]()
    return spec
