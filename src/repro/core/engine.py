"""The inference engine: a worklist fixpoint over the paper's five rules.

The engine evaluates the rules of Figure 2 *incrementally* (semi-naive):

- **Rule 1** (``s = &t.β``) fires once per statement, seeding facts.
- **Rules 2/4/5** have a premise ``pointsTo(p̂, ...)``; each such statement
  *subscribes* to the normalized reference of its pointer, and the
  subscription callback runs once per distinct pointee, performing the
  ``lookup``/``resolve`` call and installing the resulting propagation
  edges.
- **Rules 3/4/5** copy facts from source fields to destination fields; the
  ``resolve`` pair sets are installed as persistent *copy edges* (explicit
  pairs, the portable strategies) or *windows* (byte ranges, the "Offsets"
  strategy), along which every present and future fact flows.

Because edges/windows/subscriptions are installed persistently and
de-duplicated, draining the worklist reaches exactly the least fixpoint of
the paper's inference rules.  The engine also implements the
context-insensitive interprocedural layer (parameter/return copies,
function pointers, library summaries — see :mod:`repro.core.interproc`)
and the Assumption-1 treatment of pointer arithmetic.

Instrumentation mirrors the paper's Figure 3: every ``lookup`` call (rule
2) and ``resolve`` call (rules 3, 4, 5) is counted, along with whether it
involved structures and whether the types failed to match; the ``lookup``
calls made *inside* ``resolve`` are not counted (footnote 7 — strategies
route them through their private ``_lookup``).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ctype.types import CType
from ..ir.objects import AbstractObject, ObjKind
from ..ir.program import Program
from ..ir.refs import FieldRef, OffsetRef, Ref
from ..ir.stmts import (
    AddrOf,
    Call,
    Copy,
    FieldAddr,
    Load,
    PtrArith,
    Stmt,
    Store,
    declared_pointee,
)
from .facts import FactBase
from .offsets import Offsets
from .strategy import CallInfo, Strategy, Window

__all__ = ["AnalysisBudgetExceeded", "EngineStats", "Result", "Engine", "analyze"]


class AnalysisBudgetExceeded(Exception):
    """Raised when the fact count exceeds the configured budget."""


@dataclass
class EngineStats:
    """Counters reproducing the paper's instrumentation (Figure 3) plus
    engine-level measurements (Figures 5 and 6)."""

    lookup_calls: int = 0
    lookup_struct_calls: int = 0
    lookup_mismatch_calls: int = 0
    resolve_calls: int = 0
    resolve_struct_calls: int = 0
    resolve_mismatch_calls: int = 0
    facts: int = 0
    copy_edges: int = 0
    windows: int = 0
    calls_bound: int = 0
    solve_seconds: float = 0.0

    @property
    def lookup_struct_pct(self) -> float:
        """Figure 3 column "calls to lookup ... involving structures" (%)."""
        return 100.0 * self.lookup_struct_calls / self.lookup_calls if self.lookup_calls else 0.0

    @property
    def resolve_struct_pct(self) -> float:
        return 100.0 * self.resolve_struct_calls / self.resolve_calls if self.resolve_calls else 0.0

    @property
    def lookup_mismatch_pct(self) -> float:
        """Figure 3 column "of those, types did not match" (%)."""
        return (
            100.0 * self.lookup_mismatch_calls / self.lookup_struct_calls
            if self.lookup_struct_calls
            else 0.0
        )

    @property
    def resolve_mismatch_pct(self) -> float:
        return (
            100.0 * self.resolve_mismatch_calls / self.resolve_struct_calls
            if self.resolve_struct_calls
            else 0.0
        )

    # ------------------------------------------------------------------
    # Serialization / aggregation (bench harness, JSON baselines).
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        """All counters as a flat ``field name -> value`` dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "EngineStats":
        """Rebuild stats from :meth:`as_dict` output (extra keys ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in names})

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Field-wise sum of two stats records (counters and seconds)."""
        return EngineStats(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    @classmethod
    def merged(cls, stats: Iterable["EngineStats"]) -> "EngineStats":
        """Field-wise sum of any number of stats records."""
        total = cls()
        for s in stats:
            total = total.merge(s)
        return total


@dataclass
class Result:
    """Outcome of one analysis run."""

    program: Program
    strategy: Strategy
    facts: FactBase
    stats: EngineStats

    def points_to(self, what) -> frozenset:
        """Points-to set of an object or reference.

        Accepts an :class:`AbstractObject` (meaning the whole top-level
        object), a raw :class:`FieldRef`, or an already-normalized
        reference.
        """
        if isinstance(what, AbstractObject):
            what = FieldRef(what, ())
        if isinstance(what, FieldRef):
            what = self.strategy.normalize(what)
        return self.facts.points_to(what)

    def points_to_names(self, what) -> Set[str]:
        """Names of pointed-to objects (handy in tests and examples)."""
        return {r.obj.name for r in self.points_to(what)}

    def corrupted_deref_sites(self):
        """Dereferences of possibly-corrupted pointers (pessimistic mode).

        When the engine ran with ``assume_valid_pointers=False``, pointer
        arithmetic yields the special ``Unknown`` value; this reports the
        source dereference statements whose pointer may hold it — the
        "flagging potential misuses of memory" application the paper
        mentions (§4.2.1).  Empty under Assumption 1.
        """
        flagged = []
        for st in self.program.deref_stmts():
            ptr = self.pointer_of_deref(st)
            if any(r.obj.name == "<unknown>" for r in self.points_to(ptr)):
                flagged.append(st)
        return flagged

    def pointer_of_deref(self, st: Stmt) -> AbstractObject:
        """The pointer object dereferenced by statement ``st``."""
        if isinstance(st, (Load, Store, FieldAddr)):
            return st.ptr
        if isinstance(st, Call) and st.indirect:
            return st.callee
        raise TypeError(f"{st!r} does not dereference a pointer")


# Callback invoked with each new pointee of a subscribed reference.
_Callback = Callable[[Ref], None]


class _WindowIndex:
    """Interval index over one object's windows: sorted by ``lo`` + bisect.

    ``matches(off)`` finds every window ``[lo, hi)`` containing ``off``
    without scanning the whole list: windows are kept sorted by ``lo``,
    a bisect bounds the candidates to those with ``lo <= off``, and a
    prefix-maximum over ``hi`` lets the right-to-left scan stop as soon
    as no remaining candidate can still cover ``off``.  Inserts are
    O(n) (rare — once per installed window); queries are O(log n + k).
    """

    __slots__ = ("los", "his", "dsts", "pmax")

    def __init__(self) -> None:
        self.los: List[int] = []
        self.his: List[int] = []
        self.dsts: List[Tuple[AbstractObject, int]] = []
        #: pmax[j] = max(his[0..j]) — the early-out bound for matches().
        self.pmax: List[int] = []

    def insert(self, lo: int, size: int, dst_obj: AbstractObject, dst_base: int) -> None:
        hi = lo + size
        i = bisect_right(self.los, lo)
        self.los.insert(i, lo)
        self.his.insert(i, hi)
        self.dsts.insert(i, (dst_obj, dst_base))
        self.pmax.insert(i, 0)
        run = self.pmax[i - 1] if i else 0
        for j in range(i, len(self.los)):
            h = self.his[j]
            if h > run:
                run = h
            self.pmax[j] = run

    def matches(self, off: int) -> List[Tuple[int, AbstractObject, int]]:
        """All ``(lo, dst_obj, dst_base)`` whose window contains ``off``."""
        out: List[Tuple[int, AbstractObject, int]] = []
        los, his, dsts, pmax = self.los, self.his, self.dsts, self.pmax
        j = bisect_right(los, off) - 1
        while j >= 0 and pmax[j] > off:
            if his[j] > off:
                d = dsts[j]
                out.append((los[j], d[0], d[1]))
            j -= 1
        return out


class Engine:
    """Run one strategy over one program to the least fixpoint."""

    def __init__(
        self,
        program: Program,
        strategy: Strategy,
        max_facts: int = 5_000_000,
        assume_valid_pointers: bool = True,
    ) -> None:
        self.program = program
        self.strategy = strategy
        self.max_facts = max_facts
        #: Paper §4.2.1 Assumption 1.  When False, the engine takes the
        #: pessimistic alternative the paper sketches: the result of
        #: arithmetic on a (potential) pointer is the special ``Unknown``
        #: value, which can be used to flag potential misuses of memory.
        self.assume_valid_pointers = assume_valid_pointers
        self._unknown: Optional[AbstractObject] = None
        self.facts = FactBase()
        self.stats = EngineStats()
        # Delta batching: sources with pending facts, and the per-source
        # delta lists.  A source appears in the worklist at most once per
        # pending batch; drain pops the whole batch at a time.
        self._worklist: deque = deque()
        self._pending: Dict[Ref, List[Ref]] = {}
        self._copy_edges: Dict[Ref, List[Ref]] = {}
        self._edge_set: Set[Tuple[Ref, Ref]] = set()
        # Windows indexed by source object (interval index per object).
        self._windows: Dict[AbstractObject, _WindowIndex] = {}
        self._window_set: Set[Tuple[AbstractObject, int, int, AbstractObject, int]] = set()
        self._subs: Dict[Ref, List[_Callback]] = {}
        self._bound: Set[Tuple[int, AbstractObject]] = set()
        self._norm_cache: Dict[AbstractObject, Ref] = {}
        # Import here to avoid a module cycle (interproc imports Engine types).
        from .interproc import SummaryRegistry

        self.summaries = SummaryRegistry.default()

    # ------------------------------------------------------------------
    # Normalization helpers (memoized per top-level object).
    # ------------------------------------------------------------------
    def unknown_ref(self) -> Ref:
        """The normalized reference of the ``Unknown`` pseudo-object.

        Created lazily; only exists in pessimistic
        (``assume_valid_pointers=False``) runs.
        """
        if self._unknown is None:
            from ..ctype.types import void

            self._unknown = AbstractObject("<unknown>", void, ObjKind.GLOBAL)
        return self.norm_obj(self._unknown)

    def norm_obj(self, obj: AbstractObject) -> Ref:
        ref = self._norm_cache.get(obj)
        if ref is None:
            ref = self.strategy.normalize(FieldRef(obj, ()))
            self._norm_cache[obj] = ref
        return ref

    def norm_ref(self, ref: FieldRef) -> Ref:
        if not ref.path:
            return self.norm_obj(ref.obj)
        return self.strategy.normalize(ref)

    # ------------------------------------------------------------------
    # Instrumented strategy calls.
    # ------------------------------------------------------------------
    def _lookup(self, tau: CType, alpha: Sequence[str], target: Ref):
        # The memo cache sits below this boundary: counters bump per
        # *call* (hit or miss), keeping Figure 3 bit-identical.
        refs, info = self.strategy.cached_lookup(tau, alpha, target)
        self.stats.lookup_calls += 1
        if info.involved_struct:
            self.stats.lookup_struct_calls += 1
            if info.mismatch:
                self.stats.lookup_mismatch_calls += 1
        return refs

    def _resolve(self, dst: Ref, src: Ref, tau: CType):
        res, info = self.strategy.cached_resolve(dst, src, tau)
        self.stats.resolve_calls += 1
        if info.involved_struct:
            self.stats.resolve_struct_calls += 1
            if info.mismatch:
                self.stats.resolve_mismatch_calls += 1
        return res

    # ------------------------------------------------------------------
    # Fact / edge / subscription plumbing.
    # ------------------------------------------------------------------
    def add_fact(self, src: Ref, dst: Ref) -> None:
        if self.facts.add(src, dst):
            self.stats.facts += 1
            if self.stats.facts > self.max_facts:
                raise AnalysisBudgetExceeded(
                    f"more than {self.max_facts} facts; aborting"
                )
            pending = self._pending.get(src)
            if pending is None:
                self._pending[src] = [dst]
                self._worklist.append(src)
            else:
                pending.append(dst)

    def install_copy_edge(self, src: Ref, dst: Ref) -> None:
        """Facts at ``src`` flow to ``dst``, now and in the future."""
        if src == dst:
            return
        key = (src, dst)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self.stats.copy_edges += 1
        self._copy_edges.setdefault(src, []).append(dst)
        # Live view is safe here: add_fact only touches dst's target set,
        # and dst != src.
        for tgt in self.facts.points_to_view(src):
            self.add_fact(dst, tgt)

    def install_window(self, w: Window) -> None:
        """Byte-window copy edge (the "Offsets" resolve result)."""
        key = (w.src.obj, w.src.offset, w.size, w.dst.obj, w.dst.offset)
        if key in self._window_set:
            return
        self._window_set.add(key)
        self.stats.windows += 1
        index = self._windows.get(w.src.obj)
        if index is None:
            index = self._windows[w.src.obj] = _WindowIndex()
        index.insert(w.src.offset, w.size, w.dst.obj, w.dst.offset)
        # Snapshot: window hits may add facts on refs of this same object.
        for ref in tuple(self.facts.refs_of_obj_view(w.src.obj)):
            if isinstance(ref, OffsetRef) and w.src.offset <= ref.offset < w.src.offset + w.size:
                self._window_hit(ref, w.src.offset, w.dst.obj, w.dst.offset)

    def _window_hit(
        self, src_ref: OffsetRef, lo: int, dst_obj: AbstractObject, dst_base: int
    ) -> None:
        assert isinstance(self.strategy, Offsets)
        m = dst_base + (src_ref.offset - lo)
        dst_ref = self.strategy.canon_offset_ref(OffsetRef(dst_obj, m))
        if dst_ref is None:
            return
        # Live view is safe: when dst_ref == src_ref every add is a
        # duplicate (no mutation); otherwise a different set is touched.
        for tgt in self.facts.points_to_view(src_ref):
            self.add_fact(dst_ref, tgt)

    def install_resolve_result(self, res) -> None:
        """Install resolve output, whichever shape the strategy returned."""
        if isinstance(res, Window):
            self.install_window(res)
        else:
            for dst, src in res:
                self.install_copy_edge(src, dst)

    def subscribe(self, ptr_ref: Ref, cb: _Callback) -> None:
        """Run ``cb`` once for each distinct pointee of ``ptr_ref``."""
        seen: Set[Ref] = set()

        def wrapped(tgt: Ref) -> None:
            if tgt not in seen:
                seen.add(tgt)
                cb(tgt)

        self._subs.setdefault(ptr_ref, []).append(wrapped)
        # Snapshot: the callback may add facts on ptr_ref itself (e.g. a
        # self-referential statement), which would mutate the live set.
        for tgt in tuple(self.facts.points_to_view(ptr_ref)):
            wrapped(tgt)

    def cross_subscribe(
        self, a_ref: Ref, b_ref: Ref, fn: Callable[[Ref, Ref], None]
    ) -> None:
        """Run ``fn(a_tgt, b_tgt)`` for each pair of pointees of two refs.

        Used by library summaries such as ``memcpy`` (destination ×
        source) and ``qsort`` (comparator × base array).
        """
        a_seen: List[Ref] = []
        b_seen: List[Ref] = []

        def on_a(t: Ref) -> None:
            a_seen.append(t)
            for u in list(b_seen):
                fn(t, u)

        def on_b(u: Ref) -> None:
            b_seen.append(u)
            for t in list(a_seen):
                fn(t, u)

        self.subscribe(a_ref, on_a)
        self.subscribe(b_ref, on_b)

    # ------------------------------------------------------------------
    # Statement setup (rule installation).
    # ------------------------------------------------------------------
    def _setup_stmt(self, st: Stmt) -> None:
        if isinstance(st, AddrOf):
            # Rule 1: s = (τ) &t.β
            self.add_fact(self.norm_obj(st.lhs), self.norm_ref(st.target))
        elif isinstance(st, FieldAddr):
            # Rule 2: s = (τ) &((*p).α)
            tau_p = declared_pointee(st.ptr)
            lhs_ref = self.norm_obj(st.lhs)

            def on_pointee(tgt: Ref, tau_p=tau_p, path=st.path, lhs_ref=lhs_ref) -> None:
                for r in self._lookup(tau_p, path, tgt):
                    self.add_fact(lhs_ref, r)

            self.subscribe(self.norm_obj(st.ptr), on_pointee)
        elif isinstance(st, Copy):
            # Rule 3: s = (τ) t.β — sizeof(typeof(s)) bytes are copied.
            res = self._resolve(self.norm_obj(st.lhs), self.norm_ref(st.rhs), st.lhs.type)
            self.install_resolve_result(res)
        elif isinstance(st, Load):
            # Rule 4: s = (τ) *q
            lhs_ref = self.norm_obj(st.lhs)
            lhs_type = st.lhs.type

            def on_pointee(tgt: Ref, lhs_ref=lhs_ref, lhs_type=lhs_type) -> None:
                self.install_resolve_result(self._resolve(lhs_ref, tgt, lhs_type))

            self.subscribe(self.norm_obj(st.ptr), on_pointee)
        elif isinstance(st, Store):
            # Rule 5: *p = (τ_p) t — the type p is declared to point to
            # determines how many bytes are copied (Complication 4).
            tau_p = declared_pointee(st.ptr)
            rhs_ref = self.norm_obj(st.rhs)

            def on_pointee(tgt: Ref, tau_p=tau_p, rhs_ref=rhs_ref) -> None:
                self.install_resolve_result(self._resolve(tgt, rhs_ref, tau_p))

            self.subscribe(self.norm_obj(st.ptr), on_pointee)
        elif isinstance(st, PtrArith):
            # Assumption 1: the result may point to any sub-field of the
            # outermost object containing a pointee of any operand (or,
            # for refining strategies, a narrower arith_refs set).
            lhs_ref = self.norm_obj(st.lhs)
            for op in st.operands:
                def on_pointee(tgt: Ref, lhs_ref=lhs_ref) -> None:
                    if not self.assume_valid_pointers:
                        self.add_fact(lhs_ref, self.unknown_ref())
                        return
                    for r in self.strategy.arith_refs(tgt):
                        self.add_fact(lhs_ref, r)

                self.subscribe(self.norm_obj(op), on_pointee)
        elif isinstance(st, Call):
            if st.indirect:
                def on_pointee(tgt: Ref, st=st) -> None:
                    if tgt.obj.kind is ObjKind.FUNCTION and self._is_object_start(tgt):
                        self._bind_call(st, tgt.obj)

                self.subscribe(self.norm_obj(st.callee), on_pointee)
            else:
                self._bind_call(st, st.callee)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {st!r}")

    @staticmethod
    def _is_object_start(ref: Ref) -> bool:
        if isinstance(ref, OffsetRef):
            return ref.offset == 0
        return ref.path == ()

    # ------------------------------------------------------------------
    # Interprocedural binding (context-insensitive).
    # ------------------------------------------------------------------
    def _bind_call(self, call: Call, fobj: AbstractObject) -> None:
        key = (id(call), fobj)
        if key in self._bound:
            return
        self._bound.add(key)
        self.stats.calls_bound += 1
        info = self.program.function_for_object(fobj)
        if info is None:
            self.summaries.apply(self, call, fobj.name)
            return
        for i, arg in enumerate(call.args):
            if i < len(info.params):
                param = info.params[i]
                res = self._resolve(self.norm_obj(param), self.norm_obj(arg), param.type)
                self.install_resolve_result(res)
            elif info.vararg is not None:
                self.install_copy_edge(self.norm_obj(arg), self.norm_obj(info.vararg))
        if call.lhs is not None and info.retval is not None:
            res = self._resolve(
                self.norm_obj(call.lhs), self.norm_obj(info.retval), call.lhs.type
            )
            self.install_resolve_result(res)

    # ------------------------------------------------------------------
    # The fixpoint loop.
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Process pending facts until the worklist is empty.

        Delta-batched: each worklist entry is a *source* whose pending
        facts are flushed as one batch, so edge lists, the window index,
        and subscriber lists are consulted once per batch instead of once
        per fact.  Subscriber lists are iterated in place (list iteration
        tolerates appends; a subscriber added mid-batch replays existing
        facts itself and its per-pointee dedup absorbs the overlap).
        """
        worklist = self._worklist
        pending = self._pending
        copy_edges = self._copy_edges
        windows = self._windows
        subs = self._subs
        add_fact = self.add_fact
        while worklist:
            src = worklist.popleft()
            delta = pending.pop(src, None)
            if not delta:
                continue
            edges = copy_edges.get(src)
            if edges:
                for edge_dst in edges:
                    for dst in delta:
                        add_fact(edge_dst, dst)
            if type(src) is OffsetRef:
                index = windows.get(src.obj)
                if index is not None:
                    off = src.offset
                    canon = self.strategy.canon_offset_ref  # type: ignore[attr-defined]
                    for lo, dobj, dbase in index.matches(off):
                        dref = canon(OffsetRef(dobj, dbase + (off - lo)))
                        if dref is not None:
                            for dst in delta:
                                add_fact(dref, dst)
            cbs = subs.get(src)
            if cbs:
                for cb in cbs:
                    for dst in delta:
                        cb(dst)

    def solve(self) -> Result:
        t0 = time.perf_counter()
        for st in self.program.all_stmts():
            self._setup_stmt(st)
        self.drain()
        self.stats.solve_seconds = time.perf_counter() - t0
        return Result(self.program, self.strategy, self.facts, self.stats)


def analyze(program: Program, strategy: Strategy, **kwargs) -> Result:
    """Convenience wrapper: run ``strategy`` over ``program`` to fixpoint."""
    return Engine(program, strategy, **kwargs).solve()
