"""The solver orchestrator: wiring graph + rules + worklist to fixpoint.

The engine evaluates the rules of Figure 2 *incrementally* (semi-naive),
but since the layered refactor it owns almost none of the machinery —
each concern lives in a dedicated module with a narrow interface:

- :mod:`repro.core.graph` — the **constraint store**
  (:class:`~repro.core.graph.ConstraintGraph`): interned refs, bitset
  points-to sets, copy edges, windows, subscriptions, and the
  union-find merge used by online cycle collapsing.
- :mod:`repro.core.rules` — **rule installation**: Figure-2 rules 1–5
  (plus Assumption-1 pointer arithmetic and call binding) as functions
  that compile each statement into persistent graph structure; the
  closures they install are shared verbatim by the traced and untraced
  drains.
- :mod:`repro.core.worklist` — **drain policy and propagation**: the
  :class:`~repro.core.worklist.Worklist` protocol (priority
  discovery-order by default, FIFO as the order-independence witness)
  and the two drain loops.
- :mod:`repro.core.interproc` — library summaries for externs.
- :mod:`repro.core.stats` — counters (Figure 3, rule firings, session
  counters) and the :class:`AnalysisBudgetExceeded` fact budget.

What remains *here* is the orchestration the layers hang off: the
instrumented ``lookup``/``resolve`` boundary (Figure-3 counters bump per
call, memo caches sit below — footnote 7), normalization memos, the
fact/edge/window installation services the rules call, budget
accounting, the lazy-cycle-probe trigger, provenance context plumbing
for traced runs, and the solve/re-solve lifecycle.

Because rules are installed persistently and de-duplicated, draining the
worklist reaches exactly the least fixpoint of the paper's inference
rules — from *any* seeding order.  That monotonicity is what makes
:meth:`Engine.add_statements` sound: an incremental re-solve seeds only
the new statements into the existing graph and re-drains, provably
reaching the same fixpoint as a from-scratch solve of the grown program
(the differential tests assert exact equality of points-to sets and all
order-independent counters).  :class:`repro.session.AnalysisSession` is
the user-facing facade over that lifecycle.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..ctype.types import CType
from ..diag import Diagnostic, DiagnosticSink, Severity
from ..ir.objects import AbstractObject, ObjKind
from ..ir.program import Program
from ..ir.refs import FieldRef, OffsetRef, Ref
from ..ir.stmts import Stmt
from .backend import BigintBackend, PropagationBackend, backend_name, resolve_backend
from .graph import ConstraintGraph, _WindowIndex  # noqa: F401  (re-export)
from .offsets import Offsets
from .result import Result
from .rules import setup_stmt
from .stats import AnalysisBudgetExceeded, EngineStats
from .strategy import Strategy, Window
from .worklist import WORKLISTS, Worklist, drain_traced

__all__ = ["AnalysisBudgetExceeded", "EngineStats", "Result", "Engine", "analyze"]


# Callback invoked with each new pointee of a subscribed reference.
_Callback = Callable[[Ref], None]


class Engine:
    """Run one strategy over one program to the least fixpoint.

    ``worklist`` selects the drain policy: a key from
    :data:`repro.core.worklist.WORKLISTS` (``"priority"`` — the default
    discovery-order heap — or ``"fifo"``) or a ready
    :class:`~repro.core.worklist.Worklist` instance.  The policy cannot
    change the fixpoint or any order-independent counter.

    ``backend`` selects the propagation mechanism: a key from
    :data:`repro.core.backend.BACKENDS` (``"bigint"``, ``"diffprop"``,
    ``"numpy"``), a ready instance, or None (the ``REPRO_BACKEND``
    environment variable, defaulting to ``"bigint"``).  Like the
    worklist policy, the backend cannot change the fixpoint or any
    order-independent counter.  ``trace=True`` forces ``bigint`` — the
    provenance drain needs the uncollapsed per-pop loop — recording a
    diagnostic on ``diagnostics`` when that overrides an explicit
    choice.
    """

    def __init__(
        self,
        program: Program,
        strategy: Strategy,
        max_facts: int = 5_000_000,
        assume_valid_pointers: bool = True,
        trace: bool = False,
        worklist: Union[str, Worklist] = "priority",
        backend: Union[str, PropagationBackend, None] = None,
        diagnostics: Optional[DiagnosticSink] = None,
    ) -> None:
        self.program = program
        self.strategy = strategy
        self.max_facts = max_facts
        #: Provenance recorder (:class:`repro.obs.Tracer`) or None.  The
        #: untraced hot path pays only ``is None`` tests on the new-fact
        #: branches; the traced run additionally disables online cycle
        #: collapsing (identical least fixpoint, see
        #: :func:`repro.core.reference.traced_equals_untraced`) so that
        #: one (source ID, target ID) pair names one logical fact.
        if trace:
            from ..obs.provenance import Tracer

            self.tracer: Optional["Tracer"] = Tracer()
        else:
            self.tracer = None
        #: Current provenance context ID (0 = unattributed); only read
        #: when ``tracer`` is not None.
        self._ctx: int = 0
        #: Traced mode only: (src ID, dst ID) copy edge -> context that
        #: installed it; (src obj, lo, dst obj, dst base) window -> ctx.
        self._edge_prov: Dict[Tuple[int, int], int] = {}
        self._win_prov: Dict[Tuple[AbstractObject, int, AbstractObject, int], int] = {}
        #: Paper §4.2.1 Assumption 1.  When False, the engine takes the
        #: pessimistic alternative the paper sketches: the result of
        #: arithmetic on a (potential) pointer is the special ``Unknown``
        #: value, which can be used to flag potential misuses of memory.
        self.assume_valid_pointers = assume_valid_pointers
        self._unknown: Optional[AbstractObject] = None
        #: The constraint store (facts + edges + windows + subscriptions).
        self.graph = ConstraintGraph()
        #: The fact base, aliased for the public query API.
        self.facts = self.graph.facts
        self.stats = EngineStats()
        if isinstance(worklist, str):
            self.worklist: Worklist = WORKLISTS[worklist]()
        else:
            self.worklist = worklist
        #: Where engine-phase diagnostics land (shared with the session's
        #: front-end sink when solving through a session).
        self.diagnostics = diagnostics
        requested = backend_name(backend)
        if trace and requested != BigintBackend.name:
            # The provenance drain is a dedicated loop (collapsing off,
            # per-pop flow records); vectorized backends do not apply.
            if diagnostics is not None:
                diagnostics.emit(Diagnostic(
                    kind="backend-forced-bigint",
                    message=f"trace=True forces the 'bigint' propagation "
                            f"backend (requested {requested!r})",
                    severity=Severity.NOTE,
                    phase="analyze",
                ))
            self.backend: PropagationBackend = BigintBackend()
        else:
            self.backend = resolve_backend(backend)
        self.stats.backend = self.backend.name
        link_info = getattr(program, "link_info", None)
        if link_info is not None:
            # Linked programs carry their provenance into every solve's
            # stats (and from there into --profile and metrics JSONL).
            self.stats.tus_linked = link_info.tus_linked
            self.stats.externs_resolved = link_info.externs_resolved
        #: id(memoized lookup/arith ref list) -> (pinned list, bitset of
        #: the refs' interned IDs) — the batched-add cache behind
        #: :meth:`_add_refs_bits`.
        self._refs_bits: Dict[int, Tuple[object, int]] = {}
        #: Fused-memo key prefixes: each rule-2/4/5 closure gets a small
        #: integer allocated once at setup from its *fixed* operands
        #: (τ + α, or τ + the fixed ref); the memo key is then
        #: ``prefix | interned-id-of-the-varying-ref`` — one int instead
        #: of a fresh 3-tuple hashed per firing.  See :meth:`_fused_key`.
        self._fused_pairs: Dict[Tuple[str, int, object], int] = {}
        self._fused_pins: List[Tuple[object, object]] = []
        #: prefix|target-id -> (bitset, struct flag, mismatch flag) — the
        #: fused rule-2 memo behind :meth:`_lookup_add_bits` (untraced).
        self._lookup_bits: Dict[object, tuple] = {}
        #: prefix|vary-id -> (struct flag, mismatch flag) for ``resolve``
        #: results already installed — the fused rule-4/5 memo behind
        #: :meth:`_resolve_install`.
        self._resolve_done: Dict[object, tuple] = {}
        #: Hot-path alias: the rules/propagation layers enqueue through
        #: the engine, which is just the policy's own method.
        self._enqueue = self.worklist.enqueue
        self._bound: Set[Tuple[int, AbstractObject]] = set()
        # Normalization memos.  ``normalize`` is pure type-level, so the
        # obj -> canonical-ref (and (obj, path) -> canonical-ref) maps
        # are shared across engines of the same (strategy class, layout)
        # — a repeat solve of the same program starts with a warm table.
        # A traced engine keeps private tables: its misses also record
        # per-engine provenance notes (note_normalize).
        if self.tracer is None:
            self._norm_cache: Dict[AbstractObject, Ref] = (
                self.strategy.shared_cache("engine_norm_obj")
            )
            self._norm_ref_cache: Dict[tuple, tuple] = (
                self.strategy.shared_cache("engine_norm_ref")
            )
        else:
            self._norm_cache = {}
            self._norm_ref_cache = {}
        self._solved = False
        # Import here to avoid a module cycle (interproc imports Engine types).
        from .interproc import SummaryRegistry

        self.summaries = SummaryRegistry.default()

    # ------------------------------------------------------------------
    # Normalization helpers (memoized per top-level object).
    # ------------------------------------------------------------------
    def unknown_ref(self) -> Ref:
        """The normalized reference of the ``Unknown`` pseudo-object.

        Created lazily; only exists in pessimistic
        (``assume_valid_pointers=False``) runs.
        """
        if self._unknown is None:
            from ..ctype.types import void

            self._unknown = AbstractObject("<unknown>", void, ObjKind.GLOBAL)
        return self.norm_obj(self._unknown)

    def norm_obj(self, obj: AbstractObject) -> Ref:
        ref = self._norm_cache.get(obj)
        if ref is None:
            raw = FieldRef(obj, ())
            ref = self.strategy.normalize(raw)
            self._norm_cache[obj] = ref
            if self.tracer is not None:
                self.tracer.note_normalize(raw, ref)
        return ref

    def norm_ref(self, ref: FieldRef) -> Ref:
        if not ref.path:
            return self.norm_obj(ref.obj)
        # Keyed on (id(obj), path); the entry pins the object so the id
        # stays valid for the cache's lifetime.
        key = (id(ref.obj), ref.path)
        hit = self._norm_ref_cache.get(key)
        if hit is not None:
            return hit[1]
        normed = self.strategy.normalize(ref)
        self._norm_ref_cache[key] = (ref.obj, normed)
        if self.tracer is not None:
            self.tracer.note_normalize(ref, normed)
        return normed

    # ------------------------------------------------------------------
    # Instrumented strategy calls (the Figure-3 boundary).
    # ------------------------------------------------------------------
    def _lookup(self, tau: CType, alpha: Sequence[str], target: Ref):
        # The memo cache sits below this boundary: counters bump per
        # *call* (hit or miss), keeping Figure 3 bit-identical.
        refs, info = self.strategy.cached_lookup(tau, alpha, target)
        self.stats.lookup_calls += 1
        if info.involved_struct:
            self.stats.lookup_struct_calls += 1
            if info.mismatch:
                self.stats.lookup_mismatch_calls += 1
        if self.tracer is not None and self._ctx:
            self.tracer.set_call(self._ctx, "lookup", tau,
                                 (tuple(alpha), target), refs,
                                 info.involved_struct, info.mismatch)
        return refs

    def _resolve(self, dst: Ref, src: Ref, tau: CType):
        res, info = self.strategy.cached_resolve(dst, src, tau)
        self.stats.resolve_calls += 1
        if info.involved_struct:
            self.stats.resolve_struct_calls += 1
            if info.mismatch:
                self.stats.resolve_mismatch_calls += 1
        if self.tracer is not None and self._ctx:
            self.tracer.set_call(self._ctx, "resolve", tau, (dst, src), res,
                                 info.involved_struct, info.mismatch)
        return res

    def _fused_key(self, kind: str, tau: CType, extra, pin) -> int:
        """Key prefix for the fused rule memos, allocated once per rule
        closure at setup time.

        ``kind`` + ``τ`` + ``extra`` (the lookup path, or the id of the
        closure's fixed ref) name the closure's fixed operands; closures
        sharing them share one prefix, so cross-statement memo hits are
        preserved.  The returned prefix is pre-shifted so that
        ``prefix | interned-ref-id`` is collision-free for up to 2²¹
        refs (the memo methods fall back to a tuple key above that).
        ``pin`` keeps the id-keyed objects alive for the engine's
        lifetime (``τ`` and the pinned ref are also closure-captured,
        but the pin makes the id-stability argument local).
        """
        k = (kind, id(tau), extra)
        pairs = self._fused_pairs
        pkey = pairs.get(k)
        if pkey is None:
            pkey = len(self._fused_pins) << 21
            pairs[k] = pkey
            self._fused_pins.append((tau, pin))
        return pkey

    def _lookup_add_bits(self, dst_id: int, pkey: int, tau: CType,
                         alpha: Tuple[str, ...], target: Ref) -> None:
        """Fused :meth:`_lookup` + batched bitset add (rule 2, untraced).

        An engine-level memo keyed ``prefix | target-id`` holds the
        interned bitset of the lookup result together with the
        ``CallInfo`` flags, so a recurrence costs one int-keyed dict
        probe instead of the ``cached_lookup`` probe plus the
        :meth:`_add_refs_bits` probe — while the Figure-3 counters bump
        exactly as one ``lookup`` call, hit or miss.
        """
        facts = self.facts
        try:
            tid = target._id if target._fb is facts else facts.intern(target)
        except AttributeError:
            tid = facts.intern(target)
        key = pkey | tid if tid < 2097152 else (pkey, tid)
        ent = self._lookup_bits.get(key)
        if ent is None:
            refs, info = self.strategy.cached_lookup(tau, alpha, target)
            bits = 0
            intern = facts.intern
            for r in refs:
                bits |= 1 << intern(r)
            ent = (bits, info.involved_struct, info.mismatch)
            self._lookup_bits[key] = ent
        stats = self.stats
        stats.lookup_calls += 1
        if ent[1]:
            stats.lookup_struct_calls += 1
            if ent[2]:
                stats.lookup_mismatch_calls += 1
        bits = ent[0]
        if bits:
            new, gain, rep = facts.add_bits(dst_id, bits)
            if gain:
                self._account(gain)
                self._enqueue(rep, new)

    def _resolve_install(self, pkey: int, dst: Ref, src: Ref,
                         tau: CType, vary: Ref) -> None:
        """Fused :meth:`_resolve` + :meth:`install_resolve_result`
        (rules 4/5, untraced).

        Once a ``(dst, src, τ)`` triple's resolve result is installed,
        re-resolving it is a guaranteed no-op (results are memoized and
        installation is persistent), so a recurrence only needs to bump
        the Figure-3 counters from the memoized ``CallInfo`` flags —
        one int-keyed dict probe (``prefix | id-of-the-varying-ref``;
        ``vary`` is whichever of dst/src the subscription supplies)
        instead of the resolve-memo probe plus the installed-result
        identity probe.
        """
        facts = self.facts
        try:
            vid = vary._id if vary._fb is facts else facts.intern(vary)
        except AttributeError:
            vid = facts.intern(vary)
        key = pkey | vid if vid < 2097152 else (pkey, vid)
        ent = self._resolve_done.get(key)
        stats = self.stats
        stats.resolve_calls += 1
        if ent is not None:
            if ent[0]:
                stats.resolve_struct_calls += 1
                if ent[1]:
                    stats.resolve_mismatch_calls += 1
            return
        res, info = self.strategy.cached_resolve(dst, src, tau)
        self._resolve_done[key] = (info.involved_struct, info.mismatch)
        if info.involved_struct:
            stats.resolve_struct_calls += 1
            if info.mismatch:
                stats.resolve_mismatch_calls += 1
        self.install_resolve_result(res)

    def _resolve_install_once(self, dst: Ref, src: Ref, tau: CType) -> None:
        """One-shot :meth:`_resolve` + install (rule 3 and call binding,
        untraced).

        These sites fire once per statement / per (call site, callee)
        pair, so a fused memo would never hit; recurring *triples* are
        still absorbed by the strategy's resolve memo and the
        installed-result identity table.
        """
        res, info = self.strategy.cached_resolve(dst, src, tau)
        stats = self.stats
        stats.resolve_calls += 1
        if info.involved_struct:
            stats.resolve_struct_calls += 1
            if info.mismatch:
                stats.resolve_mismatch_calls += 1
        self.install_resolve_result(res)

    # ------------------------------------------------------------------
    # Fact / edge / subscription services (called by the rules layer).
    # ------------------------------------------------------------------
    def _account(self, gained: int) -> None:
        # The single budget chokepoint: every drain variant (layered,
        # traced, incremental) adds facts through here, so ``max_facts``
        # bounds them identically.  Read dynamically — tests tighten the
        # budget on a live engine.
        self.stats.facts += gained
        if self.stats.facts > self.max_facts:
            raise AnalysisBudgetExceeded(
                f"more than {self.max_facts} facts; aborting"
            )

    def add_fact(self, src: Ref, dst: Ref) -> None:
        facts = self.facts
        self._add_fact_ids(facts.intern(src), facts.intern(dst))

    def _add_fact_ids(self, sid: int, did: int) -> None:
        gain, rep = self.facts.add_id(sid, did)
        if gain:
            self._account(gain)
            self._enqueue(rep, 1 << did)
            if self.tracer is not None:
                self.tracer.record_fact(sid, did, self._ctx)

    def _add_bits(self, dst_id: int, bits: int) -> int:
        """Union a delta bitset into ``dst``'s set; returns the new bits."""
        new, gain, rep = self.facts.add_bits(dst_id, bits)
        if gain:
            self._account(gain)
            self._enqueue(rep, new)
        return new

    def _add_refs_bits(self, dst_id: int, refs) -> None:
        """Batched fact add for a memoized ``lookup``/``arith_refs`` list.

        The strategy layer memoizes those results, so the same list
        instance recurs for every repetition of a (τ, α, target) query;
        interning it to a bitset once and unioning that bitset per
        recurrence replaces ``len(refs)`` per-fact adds (and their
        worklist enqueues) with a single big-int union.  Identical
        counters: the fact gain and the enqueued delta are the same set.
        Untraced path only — traced runs add per fact for provenance.
        """
        cache = self._refs_bits
        key = id(refs)
        ent = cache.get(key)
        if ent is not None and ent[0] is refs:
            bits = ent[1]
        else:
            bits = 0
            intern = self.facts.intern
            for r in refs:
                bits |= 1 << intern(r)
            cache[key] = (refs, bits)
        if bits:
            new, gain, rep = self.facts.add_bits(dst_id, bits)
            if gain:
                self._account(gain)
                self._enqueue(rep, new)

    def install_copy_edge(self, src: Ref, dst: Ref) -> None:
        """Facts at ``src`` flow to ``dst``, now and in the future."""
        facts = self.facts
        sid = facts.intern(src)
        did = facts.intern(dst)
        # Interning is structural, so equal refs share an ID: the int
        # compare replaces a structural ``src == dst``.
        if sid == did:
            return
        if not self.graph.add_edge_ids(sid, did):
            return
        self.stats.copy_edges += 1
        rs = facts.find(sid)
        if rs == facts.find(did):
            # Edge internal to an already-collapsed class: the shared set
            # makes it a permanent no-op.
            return
        self.graph.attach_edge(rs, did)
        if self.tracer is not None:
            self._edge_prov.setdefault((sid, did), self._ctx)
        bits = facts.pts_bits(rs)
        if bits:
            new = self._add_bits(did, bits)
            if new and self.tracer is not None:
                self.tracer.record_flow(did, new, self._ctx, sid)

    def install_window(self, w: Window) -> None:
        """Byte-window copy edge (the "Offsets" resolve result)."""
        if not self.graph.add_window(w.src.obj, w.src.offset, w.size, w.dst.obj, w.dst.offset):
            return
        self.stats.windows += 1
        if self.tracer is not None:
            self._win_prov.setdefault(
                (w.src.obj, w.src.offset, w.dst.obj, w.dst.offset), self._ctx
            )
        # Snapshot: window hits may add facts on refs of this same object.
        for ref in tuple(self.facts.refs_of_obj_view(w.src.obj)):
            if isinstance(ref, OffsetRef) and w.src.offset <= ref.offset < w.src.offset + w.size:
                self._window_hit(ref, w.src.offset, w.dst.obj, w.dst.offset)

    def _window_hit(
        self, src_ref: OffsetRef, lo: int, dst_obj: AbstractObject, dst_base: int
    ) -> None:
        assert isinstance(self.strategy, Offsets)
        m = dst_base + (src_ref.offset - lo)
        dst_ref = self.strategy.canon_offset_ref(OffsetRef(dst_obj, m))
        if dst_ref is None:
            return
        facts = self.facts
        sid = facts.intern(src_ref)
        bits = facts.pts_bits(sid)
        if bits:
            did = facts.intern(dst_ref)
            new = self._add_bits(did, bits)
            if new and self.tracer is not None:
                ctx = self._win_prov.get(
                    (src_ref.obj, lo, dst_obj, dst_base), 0
                )
                self.tracer.record_flow(did, new, ctx, sid)

    def install_resolve_result(self, res) -> None:
        """Install resolve output, whichever shape the strategy returned.

        Results come from the strategy's memo tables, so the same list or
        window object is handed back for every recurrence of a (dst, src,
        τ) triple; once installed, re-installing it is a guaranteed no-op
        (edges and windows are persistent and deduplicated), so the whole
        pass is skipped by object identity.
        """
        if self.graph.seen_resolve_result(res):
            return
        if isinstance(res, Window):
            self.install_window(res)
            return
        if self.tracer is not None:
            for dst, src in res:
                self.install_copy_edge(src, dst)
            return
        # Untraced hot path: the per-pair work of install_copy_edge,
        # inlined with the graph/fact structures bound once per result.
        # Pair lists overlap heavily across distinct (dst, src, τ)
        # results, so most pairs are duplicate edges — the inline
        # edge-bitset probe rejects them without a function call.
        facts = self.facts
        graph = self.graph
        intern = facts.intern
        edge_set = graph.edge_set
        edge_add = edge_set.add
        find = facts.find
        parent = facts._parent
        adj = graph.copy_adj
        pts = facts._pts
        stats = self.stats
        for dst, src in res:
            # Interning fast path: canonical refs cache their ID in
            # ``_fb``/``_id`` slots (see FactBase.intern) — two attr
            # loads beat a method call.
            try:
                sid = src._id if src._fb is facts else intern(src)
            except AttributeError:
                sid = intern(src)
            try:
                did = dst._id if dst._fb is facts else intern(dst)
            except AttributeError:
                did = intern(dst)
            if sid == did:
                continue
            key = (sid << 21) | did if did < 2097152 else (sid, did)
            if key in edge_set:
                continue
            edge_add(key)
            stats.copy_edges += 1
            rs = parent[sid]
            if parent[rs] != rs:
                rs = find(rs)
            rd = parent[did]
            if parent[rd] != rd:
                rd = find(rd)
            if rs == rd:
                # Edge internal to a collapsed class: permanent no-op.
                continue
            lst = adj.get(rs)
            if lst is None:
                adj[rs] = [did]
            else:
                lst.append(did)
            bits = pts[rs]
            if bits:
                self._add_bits(did, bits)

    def subscribe(
        self, ptr_ref: Ref, cb: _Callback, desc: Optional[tuple] = None
    ) -> None:
        """Run ``cb`` once for each distinct pointee of ``ptr_ref``.

        The subscription is stored as a ``(seen, cb, desc)`` triple; the
        drains perform the once-per-distinct-pointee dedup inline
        (``seen`` keys on the pointee's interned ID — one per logical
        ref, an int hash — so a dedup hit costs one set probe rather
        than a closure call).  ``desc``, when given, is a small tuple
        naming the rule case and its fixed operands
        (:mod:`repro.core.rules`); specialized drains use it to dispatch
        the rule inline, and it must be behaviorally identical to ``cb``
        on the untraced path.
        """
        seen: Set[int] = set()
        facts = self.facts
        rep = facts.find(facts.intern(ptr_ref))
        self.graph.add_subscriber(rep, (seen, cb, desc))
        # decode_items() materializes a list, so the replay is safe even
        # if the callback adds facts on ptr_ref itself (a
        # self-referential stmt).
        bits = facts.pts_bits(rep)
        if bits:
            for did, tgt in facts.decode_items(bits):
                seen.add(did)
                cb(tgt)

    def cross_subscribe(
        self, a_ref: Ref, b_ref: Ref, fn: Callable[[Ref, Ref], None]
    ) -> None:
        """Run ``fn(a_tgt, b_tgt)`` for each pair of pointees of two refs.

        Used by library summaries such as ``memcpy`` (destination ×
        source) and ``qsort`` (comparator × base array).
        """
        a_seen: list = []
        b_seen: list = []

        def on_a(t: Ref) -> None:
            a_seen.append(t)
            for u in list(b_seen):
                fn(t, u)

        def on_b(u: Ref) -> None:
            b_seen.append(u)
            for t in list(a_seen):
                fn(t, u)

        self.subscribe(a_ref, on_a)
        self.subscribe(b_ref, on_b)

    # ------------------------------------------------------------------
    # Online cycle collapsing (the trigger; mechanics live in graph.py).
    # ------------------------------------------------------------------
    def _maybe_collapse(self, src_rep: int, dst_rep: int) -> None:
        """A no-op propagation along ``src -> dst`` hints at a cycle:
        probe the copy graph for a path ``dst ->* src`` and, if one
        exists, merge every class on it (they form a copy-edge cycle and
        share one fixpoint set).  Each (src, dst) class pair is probed at
        most once."""
        if not self.graph.lcd_mark(src_rep, dst_rep):
            return
        path = self.graph.cycle_path(dst_rep, src_rep)
        if path is not None and self.graph.merge_classes(
            path, self.worklist, self._account
        ):
            self.stats.sccs_collapsed += 1

    # ------------------------------------------------------------------
    # Statement setup and the fixpoint lifecycle.
    # ------------------------------------------------------------------
    def _setup_stmt(self, st: Stmt) -> None:
        """Install one statement's rule (see :mod:`repro.core.rules`)."""
        setup_stmt(self, st)

    def drain(self) -> None:
        """Process pending deltas until the worklist is empty.

        Dispatches to the selected propagation backend
        (:mod:`repro.core.backend`); the traced loop records provenance
        and keeps cycle collapsing off.
        """
        if self.tracer is not None:
            drain_traced(self)
        else:
            self.backend.drain(self)

    def solve(self) -> Result:
        """Install every program statement and drain to the least fixpoint."""
        t0 = time.perf_counter()
        for st in self.program.all_stmts():
            setup_stmt(self, st)
        self.drain()
        self._solved = True
        self.stats.solve_seconds = time.perf_counter() - t0
        return Result(
            self.program, self.strategy, self.facts, self.stats,
            tracer=self.tracer,
        )

    def add_statements(self, stmts: Iterable[Stmt]) -> Result:
        """Incremental re-solve: seed only ``stmts`` and re-drain.

        The rules are monotone (Figure 2), so installing the new
        statements into the already-solved graph and draining reaches
        exactly the least fixpoint of the grown program — identical
        points-to sets, deref sizes, and order-independent counters to a
        from-scratch solve (the statements must already belong to
        ``self.program`` and must not have been installed before;
        :meth:`repro.session.AnalysisSession.add_statements` manages
        that bookkeeping).
        """
        if not self._solved:
            raise RuntimeError("add_statements requires a prior solve()")
        stmts = list(stmts)
        t0 = time.perf_counter()
        stats = self.stats
        stats.incremental_solves += 1
        stats.delta_stmts += len(stmts)
        stats.reused_graph_refs = self.facts.num_refs()
        for st in stmts:
            setup_stmt(self, st)
        self.drain()
        stats.solve_seconds += time.perf_counter() - t0
        return Result(
            self.program, self.strategy, self.facts, stats,
            tracer=self.tracer,
        )


def analyze(
    program: Program,
    strategy: Strategy,
    trace: bool = False,
    worklist: Union[str, Worklist] = "priority",
    **kwargs,
) -> Result:
    """Convenience wrapper: run ``strategy`` over ``program`` to fixpoint.

    A thin veneer over :class:`repro.session.AnalysisSession` — one
    throwaway session, one solve.  Callers that solve several strategies
    or grow the program should hold a session instead.
    """
    from ..session import AnalysisSession

    return AnalysisSession(program, **kwargs).solve(
        strategy, trace=trace, worklist=worklist
    )
