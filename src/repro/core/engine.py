"""The inference engine: a worklist fixpoint over the paper's five rules.

The engine evaluates the rules of Figure 2 *incrementally* (semi-naive):

- **Rule 1** (``s = &t.β``) fires once per statement, seeding facts.
- **Rules 2/4/5** have a premise ``pointsTo(p̂, ...)``; each such statement
  *subscribes* to the normalized reference of its pointer, and the
  subscription callback runs once per distinct pointee, performing the
  ``lookup``/``resolve`` call and installing the resulting propagation
  edges.
- **Rules 3/4/5** copy facts from source fields to destination fields; the
  ``resolve`` pair sets are installed as persistent *copy edges* (explicit
  pairs, the portable strategies) or *windows* (byte ranges, the "Offsets"
  strategy), along which every present and future fact flows.

Data plane (see :mod:`repro.core.facts`): every normalized reference is
interned to a dense integer ID, points-to sets are Python-int bitsets,
and copy edges live in an ID-indexed adjacency map, so one propagation
step is a single big-int union instead of per-fact set traffic.  On top
of that the engine performs **online cycle collapsing**: copy-edge
cycles — ubiquitous once ``resolve`` installs bidirectional field
copies — are detected lazily (a propagation that adds nothing triggers a
reachability probe back along the copy graph, à la Hardekopf–Lin's Lazy
Cycle Detection) and their sources are merged in a union-find, after
which the whole SCC holds one shared set and propagates once.  The
worklist is a priority heap ordered by ref discovery index, so
propagation roughly follows topological order of the constraint graph.
Collapsing changes neither the least fixpoint nor any Figure 3/4/6
number: SCC members provably hold identical sets at fixpoint, and all
per-reference counts (``facts``, ``edge_count``) are maintained
per *member*, not per class.

Because edges/windows/subscriptions are installed persistently and
de-duplicated, draining the worklist reaches exactly the least fixpoint of
the paper's inference rules.  The engine also implements the
context-insensitive interprocedural layer (parameter/return copies,
function pointers, library summaries — see :mod:`repro.core.interproc`)
and the Assumption-1 treatment of pointer arithmetic.

Instrumentation mirrors the paper's Figure 3: every ``lookup`` call (rule
2) and ``resolve`` call (rules 3, 4, 5) is counted, along with whether it
involved structures and whether the types failed to match; the ``lookup``
calls made *inside* ``resolve`` are not counted (footnote 7 — strategies
route them through their private ``_lookup``).  Two engine-level counters
track the collapsing machinery: ``sccs_collapsed`` (cycle-collapse
events) and ``props_saved`` (edge propagations skipped because the edge
became internal to a collapsed class).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field, fields
from heapq import heappop, heappush
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ctype.types import CType
from ..ir.objects import AbstractObject, ObjKind
from ..ir.program import Program
from ..ir.refs import FieldRef, OffsetRef, Ref
from ..ir.stmts import (
    AddrOf,
    Call,
    Copy,
    FieldAddr,
    Load,
    PtrArith,
    Stmt,
    Store,
    declared_pointee,
)
from .facts import FactBase
from .offsets import Offsets
from .strategy import CallInfo, Strategy, Window

__all__ = ["AnalysisBudgetExceeded", "EngineStats", "Result", "Engine", "analyze"]


class AnalysisBudgetExceeded(Exception):
    """Raised when the fact count exceeds the configured budget."""


@dataclass
class EngineStats:
    """Counters reproducing the paper's instrumentation (Figure 3) plus
    engine-level measurements (Figures 5 and 6)."""

    lookup_calls: int = 0
    lookup_struct_calls: int = 0
    lookup_mismatch_calls: int = 0
    resolve_calls: int = 0
    resolve_struct_calls: int = 0
    resolve_mismatch_calls: int = 0
    #: Figure-2 rule firings.  Rule 1 fires once per AddrOf statement;
    #: rules 2, 4 and 5 fire once per (statement, distinct pointee) —
    #: the granularity of the paper's inference rules — and rule 3 once
    #: per Copy statement.  All five are order-independent (determined
    #: by the least fixpoint), so they are safe to gate in baselines.
    rule1_firings: int = 0
    rule2_firings: int = 0
    rule3_firings: int = 0
    rule4_firings: int = 0
    rule5_firings: int = 0
    facts: int = 0
    copy_edges: int = 0
    windows: int = 0
    calls_bound: int = 0
    #: Copy-edge cycle-collapse events (each merges >= 2 sources).
    sccs_collapsed: int = 0
    #: Edge propagations skipped because the edge is internal to a
    #: collapsed class (the work cycle collapsing eliminated).
    props_saved: int = 0
    solve_seconds: float = 0.0

    @property
    def lookup_struct_pct(self) -> float:
        """Figure 3 column "calls to lookup ... involving structures" (%)."""
        return 100.0 * self.lookup_struct_calls / self.lookup_calls if self.lookup_calls else 0.0

    @property
    def resolve_struct_pct(self) -> float:
        return 100.0 * self.resolve_struct_calls / self.resolve_calls if self.resolve_calls else 0.0

    @property
    def lookup_mismatch_pct(self) -> float:
        """Figure 3 column "of those, types did not match" (%)."""
        return (
            100.0 * self.lookup_mismatch_calls / self.lookup_struct_calls
            if self.lookup_struct_calls
            else 0.0
        )

    @property
    def resolve_mismatch_pct(self) -> float:
        return (
            100.0 * self.resolve_mismatch_calls / self.resolve_struct_calls
            if self.resolve_struct_calls
            else 0.0
        )

    # ------------------------------------------------------------------
    # Serialization / aggregation (bench harness, JSON baselines).
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        """All counters as a flat ``field name -> value`` dict."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, float]) -> "EngineStats":
        """Rebuild stats from :meth:`as_dict` output (extra keys ignored,
        missing keys — e.g. a pre-collapse baseline — default to 0)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in names})

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Field-wise sum of two stats records (counters and seconds)."""
        return EngineStats(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    @classmethod
    def merged(cls, stats: Iterable["EngineStats"]) -> "EngineStats":
        """Field-wise sum of any number of stats records."""
        total = cls()
        for s in stats:
            total = total.merge(s)
        return total


@dataclass
class Result:
    """Outcome of one analysis run."""

    program: Program
    strategy: Strategy
    facts: FactBase
    stats: EngineStats
    #: Provenance store of a traced run (``Engine(..., trace=True)``),
    #: else None.  See :mod:`repro.obs`.
    tracer: Optional[object] = None

    def points_to(self, what) -> frozenset:
        """Points-to set of an object or reference.

        Accepts an :class:`AbstractObject` (meaning the whole top-level
        object), a raw :class:`FieldRef`, or an already-normalized
        reference.
        """
        if isinstance(what, AbstractObject):
            what = FieldRef(what, ())
        if isinstance(what, FieldRef):
            what = self.strategy.normalize(what)
        return self.facts.points_to(what)

    def points_to_names(self, what) -> Set[str]:
        """Names of pointed-to objects (handy in tests and examples)."""
        return {r.obj.name for r in self.points_to(what)}

    def corrupted_deref_sites(self):
        """Dereferences of possibly-corrupted pointers (pessimistic mode).

        When the engine ran with ``assume_valid_pointers=False``, pointer
        arithmetic yields the special ``Unknown`` value; this reports the
        source dereference statements whose pointer may hold it — the
        "flagging potential misuses of memory" application the paper
        mentions (§4.2.1).  Empty under Assumption 1.
        """
        flagged = []
        for st in self.program.deref_stmts():
            ptr = self.pointer_of_deref(st)
            if any(r.obj.name == "<unknown>" for r in self.points_to(ptr)):
                flagged.append(st)
        return flagged

    def pointer_of_deref(self, st: Stmt) -> AbstractObject:
        """The pointer object dereferenced by statement ``st``."""
        if isinstance(st, (Load, Store, FieldAddr)):
            return st.ptr
        if isinstance(st, Call) and st.indirect:
            return st.callee
        raise TypeError(f"{st!r} does not dereference a pointer")


# Callback invoked with each new pointee of a subscribed reference.
_Callback = Callable[[Ref], None]


class _WindowIndex:
    """Interval index over one object's windows: sorted by ``lo`` + bisect.

    ``matches(off)`` finds every window ``[lo, hi)`` containing ``off``
    without scanning the whole list: windows are kept sorted by ``lo``,
    a bisect bounds the candidates to those with ``lo <= off``, and a
    prefix-maximum over ``hi`` lets the right-to-left scan stop as soon
    as no remaining candidate can still cover ``off``.  Inserts are
    O(n) (rare — once per installed window); queries are O(log n + k).
    """

    __slots__ = ("los", "his", "dsts", "pmax")

    def __init__(self) -> None:
        self.los: List[int] = []
        self.his: List[int] = []
        self.dsts: List[Tuple[AbstractObject, int]] = []
        #: pmax[j] = max(his[0..j]) — the early-out bound for matches().
        self.pmax: List[int] = []

    def insert(self, lo: int, size: int, dst_obj: AbstractObject, dst_base: int) -> None:
        hi = lo + size
        i = bisect_right(self.los, lo)
        self.los.insert(i, lo)
        self.his.insert(i, hi)
        self.dsts.insert(i, (dst_obj, dst_base))
        self.pmax.insert(i, 0)
        run = self.pmax[i - 1] if i else 0
        for j in range(i, len(self.los)):
            h = self.his[j]
            if h > run:
                run = h
            self.pmax[j] = run

    def matches(self, off: int) -> List[Tuple[int, AbstractObject, int]]:
        """All ``(lo, dst_obj, dst_base)`` whose window contains ``off``."""
        out: List[Tuple[int, AbstractObject, int]] = []
        los, his, dsts, pmax = self.los, self.his, self.dsts, self.pmax
        j = bisect_right(los, off) - 1
        while j >= 0 and pmax[j] > off:
            if his[j] > off:
                d = dsts[j]
                out.append((los[j], d[0], d[1]))
            j -= 1
        return out


class Engine:
    """Run one strategy over one program to the least fixpoint."""

    def __init__(
        self,
        program: Program,
        strategy: Strategy,
        max_facts: int = 5_000_000,
        assume_valid_pointers: bool = True,
        trace: bool = False,
    ) -> None:
        self.program = program
        self.strategy = strategy
        self.max_facts = max_facts
        #: Provenance recorder (:class:`repro.obs.Tracer`) or None.  The
        #: untraced hot path pays only ``is None`` tests on the new-fact
        #: branches; the traced run additionally disables online cycle
        #: collapsing (identical least fixpoint, see
        #: :func:`repro.core.reference.traced_equals_untraced`) so that
        #: one (source ID, target ID) pair names one logical fact.
        if trace:
            from ..obs.provenance import Tracer

            self.tracer: Optional["Tracer"] = Tracer()
        else:
            self.tracer = None
        #: Current provenance context ID (0 = unattributed); only read
        #: when ``tracer`` is not None.
        self._ctx: int = 0
        #: Traced mode only: (src ID, dst ID) copy edge -> context that
        #: installed it; (src obj, lo, dst obj, dst base) window -> ctx.
        self._edge_prov: Dict[Tuple[int, int], int] = {}
        self._win_prov: Dict[Tuple[AbstractObject, int, AbstractObject, int], int] = {}
        #: Paper §4.2.1 Assumption 1.  When False, the engine takes the
        #: pessimistic alternative the paper sketches: the result of
        #: arithmetic on a (potential) pointer is the special ``Unknown``
        #: value, which can be used to flag potential misuses of memory.
        self.assume_valid_pointers = assume_valid_pointers
        self._unknown: Optional[AbstractObject] = None
        self.facts = FactBase()
        self.stats = EngineStats()
        # Priority worklist: a heap of ref IDs (the ID *is* the discovery
        # index, so pops roughly follow topological order).  ``_pending``
        # maps a class representative to its accumulated delta bitset; a
        # rep is pushed when its pending entry is created and stale heap
        # entries (drained or merged reps) are skipped on pop.
        self._heap: List[int] = []
        self._pending: Dict[int, int] = {}
        # Copy edges: representative ID -> destination IDs (originals;
        # mapped through union-find at propagation time).  ``_edge_bits``
        # dedups on the *original* (src, dst) ID pair — a bitset of dst
        # IDs per src ID — so the Figure 3 ``copy_edges`` counter is
        # identical with and without collapsing.
        self._copy_adj: Dict[int, List[int]] = {}
        self._edge_bits: Dict[int, int] = {}
        # Lazy cycle detection: (src_rep, dst_rep) pairs already probed.
        self._lcd_done: Set[Tuple[int, int]] = set()
        # Resolve results already installed, by identity (value pins the
        # result object so its id cannot be reused).
        self._installed_res: Dict[int, object] = {}
        # Windows indexed by source object (interval index per object).
        self._windows: Dict[AbstractObject, _WindowIndex] = {}
        self._window_set: Set[Tuple[AbstractObject, int, int, AbstractObject, int]] = set()
        # Subscribers, keyed by class representative (merged on collapse).
        self._subs: Dict[int, List[_Callback]] = {}
        self._bound: Set[Tuple[int, AbstractObject]] = set()
        self._norm_cache: Dict[AbstractObject, Ref] = {}
        # Import here to avoid a module cycle (interproc imports Engine types).
        from .interproc import SummaryRegistry

        self.summaries = SummaryRegistry.default()

    # ------------------------------------------------------------------
    # Normalization helpers (memoized per top-level object).
    # ------------------------------------------------------------------
    def unknown_ref(self) -> Ref:
        """The normalized reference of the ``Unknown`` pseudo-object.

        Created lazily; only exists in pessimistic
        (``assume_valid_pointers=False``) runs.
        """
        if self._unknown is None:
            from ..ctype.types import void

            self._unknown = AbstractObject("<unknown>", void, ObjKind.GLOBAL)
        return self.norm_obj(self._unknown)

    def norm_obj(self, obj: AbstractObject) -> Ref:
        ref = self._norm_cache.get(obj)
        if ref is None:
            raw = FieldRef(obj, ())
            ref = self.strategy.normalize(raw)
            self._norm_cache[obj] = ref
            if self.tracer is not None:
                self.tracer.note_normalize(raw, ref)
        return ref

    def norm_ref(self, ref: FieldRef) -> Ref:
        if not ref.path:
            return self.norm_obj(ref.obj)
        normed = self.strategy.normalize(ref)
        if self.tracer is not None:
            self.tracer.note_normalize(ref, normed)
        return normed

    # ------------------------------------------------------------------
    # Instrumented strategy calls.
    # ------------------------------------------------------------------
    def _lookup(self, tau: CType, alpha: Sequence[str], target: Ref):
        # The memo cache sits below this boundary: counters bump per
        # *call* (hit or miss), keeping Figure 3 bit-identical.
        refs, info = self.strategy.cached_lookup(tau, alpha, target)
        self.stats.lookup_calls += 1
        if info.involved_struct:
            self.stats.lookup_struct_calls += 1
            if info.mismatch:
                self.stats.lookup_mismatch_calls += 1
        if self.tracer is not None and self._ctx:
            self.tracer.set_call(self._ctx, "lookup", tau,
                                 (tuple(alpha), target), refs,
                                 info.involved_struct, info.mismatch)
        return refs

    def _resolve(self, dst: Ref, src: Ref, tau: CType):
        res, info = self.strategy.cached_resolve(dst, src, tau)
        self.stats.resolve_calls += 1
        if info.involved_struct:
            self.stats.resolve_struct_calls += 1
            if info.mismatch:
                self.stats.resolve_mismatch_calls += 1
        if self.tracer is not None and self._ctx:
            self.tracer.set_call(self._ctx, "resolve", tau, (dst, src), res,
                                 info.involved_struct, info.mismatch)
        return res

    # ------------------------------------------------------------------
    # Fact / edge / subscription plumbing (ID layer).
    # ------------------------------------------------------------------
    def _account(self, gained: int) -> None:
        self.stats.facts += gained
        if self.stats.facts > self.max_facts:
            raise AnalysisBudgetExceeded(
                f"more than {self.max_facts} facts; aborting"
            )

    def _enqueue(self, rep: int, bits: int) -> None:
        pending = self._pending
        cur = pending.get(rep)
        if cur is None:
            pending[rep] = bits
            heappush(self._heap, rep)
        else:
            pending[rep] = cur | bits

    def add_fact(self, src: Ref, dst: Ref) -> None:
        facts = self.facts
        self._add_fact_ids(facts.intern(src), facts.intern(dst))

    def _add_fact_ids(self, sid: int, did: int) -> None:
        gain, rep = self.facts.add_id(sid, did)
        if gain:
            self._account(gain)
            self._enqueue(rep, 1 << did)
            if self.tracer is not None:
                self.tracer.record_fact(sid, did, self._ctx)

    def _add_bits(self, dst_id: int, bits: int) -> int:
        """Union a delta bitset into ``dst``'s set; returns the new bits."""
        new, gain, rep = self.facts.add_bits(dst_id, bits)
        if gain:
            self._account(gain)
            self._enqueue(rep, new)
        return new

    def install_copy_edge(self, src: Ref, dst: Ref) -> None:
        """Facts at ``src`` flow to ``dst``, now and in the future."""
        if src == dst:
            return
        facts = self.facts
        sid = facts.intern(src)
        did = facts.intern(dst)
        edge_bits = self._edge_bits
        seen = edge_bits.get(sid, 0)
        bit = 1 << did
        if seen & bit:
            return
        edge_bits[sid] = seen | bit
        self.stats.copy_edges += 1
        rs = facts.find(sid)
        if rs == facts.find(did):
            # Edge internal to an already-collapsed class: the shared set
            # makes it a permanent no-op.
            return
        self._copy_adj.setdefault(rs, []).append(did)
        if self.tracer is not None:
            self._edge_prov.setdefault((sid, did), self._ctx)
        bits = facts.pts_bits(rs)
        if bits:
            new = self._add_bits(did, bits)
            if new and self.tracer is not None:
                self.tracer.record_flow(did, new, self._ctx, sid)

    def install_window(self, w: Window) -> None:
        """Byte-window copy edge (the "Offsets" resolve result)."""
        key = (w.src.obj, w.src.offset, w.size, w.dst.obj, w.dst.offset)
        if key in self._window_set:
            return
        self._window_set.add(key)
        self.stats.windows += 1
        if self.tracer is not None:
            self._win_prov.setdefault(
                (w.src.obj, w.src.offset, w.dst.obj, w.dst.offset), self._ctx
            )
        index = self._windows.get(w.src.obj)
        if index is None:
            index = self._windows[w.src.obj] = _WindowIndex()
        index.insert(w.src.offset, w.size, w.dst.obj, w.dst.offset)
        # Snapshot: window hits may add facts on refs of this same object.
        for ref in tuple(self.facts.refs_of_obj_view(w.src.obj)):
            if isinstance(ref, OffsetRef) and w.src.offset <= ref.offset < w.src.offset + w.size:
                self._window_hit(ref, w.src.offset, w.dst.obj, w.dst.offset)

    def _window_hit(
        self, src_ref: OffsetRef, lo: int, dst_obj: AbstractObject, dst_base: int
    ) -> None:
        assert isinstance(self.strategy, Offsets)
        m = dst_base + (src_ref.offset - lo)
        dst_ref = self.strategy.canon_offset_ref(OffsetRef(dst_obj, m))
        if dst_ref is None:
            return
        facts = self.facts
        sid = facts.intern(src_ref)
        bits = facts.pts_bits(sid)
        if bits:
            did = facts.intern(dst_ref)
            new = self._add_bits(did, bits)
            if new and self.tracer is not None:
                ctx = self._win_prov.get(
                    (src_ref.obj, lo, dst_obj, dst_base), 0
                )
                self.tracer.record_flow(did, new, ctx, sid)

    def install_resolve_result(self, res) -> None:
        """Install resolve output, whichever shape the strategy returned.

        Results come from the strategy's memo tables, so the same list or
        window object is handed back for every recurrence of a (dst, src,
        τ) triple; once installed, re-installing it is a guaranteed no-op
        (edges and windows are persistent and deduplicated), so the whole
        pass is skipped by object identity.  The entry pins ``res``
        against id reuse.
        """
        key = id(res)
        installed = self._installed_res
        if key in installed:
            return
        installed[key] = res
        if isinstance(res, Window):
            self.install_window(res)
        else:
            for dst, src in res:
                self.install_copy_edge(src, dst)

    def subscribe(self, ptr_ref: Ref, cb: _Callback) -> None:
        """Run ``cb`` once for each distinct pointee of ``ptr_ref``."""
        # Delivered refs are always the fact base's interned instances
        # (decode returns them), one instance per logical ref, so the
        # per-subscription dedup can key on object identity — an int
        # hash — instead of structural ref hashing.
        seen: Set[int] = set()

        def wrapped(tgt: Ref) -> None:
            k = id(tgt)
            if k not in seen:
                seen.add(k)
                cb(tgt)

        facts = self.facts
        rep = facts.find(facts.intern(ptr_ref))
        self._subs.setdefault(rep, []).append(wrapped)
        # decode() materializes a list, so the replay is safe even if the
        # callback adds facts on ptr_ref itself (a self-referential stmt).
        bits = facts.pts_bits(rep)
        if bits:
            for tgt in facts.decode(bits):
                wrapped(tgt)

    def cross_subscribe(
        self, a_ref: Ref, b_ref: Ref, fn: Callable[[Ref, Ref], None]
    ) -> None:
        """Run ``fn(a_tgt, b_tgt)`` for each pair of pointees of two refs.

        Used by library summaries such as ``memcpy`` (destination ×
        source) and ``qsort`` (comparator × base array).
        """
        a_seen: List[Ref] = []
        b_seen: List[Ref] = []

        def on_a(t: Ref) -> None:
            a_seen.append(t)
            for u in list(b_seen):
                fn(t, u)

        def on_b(u: Ref) -> None:
            b_seen.append(u)
            for t in list(a_seen):
                fn(t, u)

        self.subscribe(a_ref, on_a)
        self.subscribe(b_ref, on_b)

    # ------------------------------------------------------------------
    # Online cycle collapsing (lazy cycle detection + union-find).
    # ------------------------------------------------------------------
    def _maybe_collapse(self, src_rep: int, dst_rep: int) -> None:
        """A no-op propagation along ``src -> dst`` hints at a cycle:
        probe the copy graph for a path ``dst ->* src`` and, if one
        exists, merge every class on it (they form a copy-edge cycle and
        share one fixpoint set).  Each (src, dst) class pair is probed at
        most once."""
        key = (src_rep, dst_rep)
        done = self._lcd_done
        if key in done:
            return
        done.add(key)
        path = self._cycle_path(dst_rep, src_rep)
        if path is not None:
            self._collapse(path)

    def _cycle_path(self, start: int, goal: int) -> Optional[List[int]]:
        """DFS over class-level copy edges for a path ``start ->* goal``.

        Returns the classes on the path (including ``start`` and
        ``goal``), or None when ``goal`` is unreachable.  The search only
        expands classes whose points-to set equals the cycle candidates'
        (the probe fires when ``start``'s and ``goal``'s sets have
        converged, and every member of a copy cycle converges to that
        same set) — pruning the DFS to the candidate SCC region instead
        of the whole copy graph.  A path missed because an intermediate
        set has not converged yet is only a deferred opportunity: a later
        no-op propagation re-probes.
        """
        facts = self.facts
        find = facts.find
        pts = facts._pts
        adj = self._copy_adj
        start = find(start)
        goal = find(goal)
        if start == goal:
            return None
        want = pts[start]
        stack: List[Tuple[int, Iterable[int]]] = [(start, iter(adj.get(start, ())))]
        on_path = [start]
        visited = {start}
        while stack:
            _node, edge_iter = stack[-1]
            advanced = False
            for tid in edge_iter:
                t = find(tid)
                if t == goal:
                    on_path.append(goal)
                    return on_path
                if t not in visited:
                    visited.add(t)
                    if pts[t] != want:
                        continue
                    stack.append((t, iter(adj.get(t, ()))))
                    on_path.append(t)
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                on_path.pop()
        return None

    def _collapse(self, nodes: List[int]) -> None:
        """Merge the classes in ``nodes`` into one; move their adjacency,
        subscribers, and pending deltas onto the surviving representative
        and schedule the set difference for re-delivery."""
        facts = self.facts
        adj = self._copy_adj
        subs = self._subs
        pending = self._pending
        root = nodes[0]
        merged_any = False
        for node in nodes[1:]:
            rep, dead, gain, fresh = facts.union(root, node)
            if rep == dead:  # already one class
                root = rep
                continue
            merged_any = True
            root = rep
            if gain:
                self._account(gain)
            dead_adj = adj.pop(dead, None)
            if dead_adj:
                live = adj.get(rep)
                if live is None:
                    adj[rep] = dead_adj
                else:
                    live.extend(dead_adj)
            dead_subs = subs.pop(dead, None)
            if dead_subs:
                live_subs = subs.get(rep)
                # A fresh list: an in-flight drain iteration keeps the old.
                subs[rep] = dead_subs if live_subs is None else live_subs + dead_subs
            bits = pending.pop(dead, 0) | fresh
            if bits:
                self._enqueue(rep, bits)
        if merged_any:
            self.stats.sccs_collapsed += 1

    # ------------------------------------------------------------------
    # Statement setup (rule installation).
    # ------------------------------------------------------------------
    def _setup_stmt(self, st: Stmt) -> None:
        if isinstance(st, AddrOf):
            # Rule 1: s = (τ) &t.β
            self.stats.rule1_firings += 1
            if self.tracer is not None:
                self._ctx = self.tracer.new_ctx(1, st)
            self.add_fact(self.norm_obj(st.lhs), self.norm_ref(st.target))
            self._ctx = 0
        elif isinstance(st, FieldAddr):
            # Rule 2: s = (τ) &((*p).α)
            tau_p = declared_pointee(st.ptr)
            ptr_ref = self.norm_obj(st.ptr)
            lhs_id = self.facts.intern(self.norm_obj(st.lhs))
            ptr_id = self.facts.intern(ptr_ref)

            def on_pointee(
                tgt: Ref, tau_p=tau_p, path=st.path, lhs_id=lhs_id,
                ptr_id=ptr_id, st=st,
            ) -> None:
                intern = self.facts.intern
                add = self._add_fact_ids
                self.stats.rule2_firings += 1
                if self.tracer is not None:
                    self._ctx = self.tracer.new_ctx(
                        2, st, ((ptr_id, intern(tgt)),)
                    )
                for r in self._lookup(tau_p, path, tgt):
                    add(lhs_id, intern(r))
                self._ctx = 0

            self.subscribe(ptr_ref, on_pointee)
        elif isinstance(st, Copy):
            # Rule 3: s = (τ) t.β — sizeof(typeof(s)) bytes are copied.
            self.stats.rule3_firings += 1
            if self.tracer is not None:
                self._ctx = self.tracer.new_ctx(3, st)
            res = self._resolve(self.norm_obj(st.lhs), self.norm_ref(st.rhs), st.lhs.type)
            self.install_resolve_result(res)
            self._ctx = 0
        elif isinstance(st, Load):
            # Rule 4: s = (τ) *q
            lhs_ref = self.norm_obj(st.lhs)
            lhs_type = st.lhs.type
            ptr_ref = self.norm_obj(st.ptr)
            ptr_id = self.facts.intern(ptr_ref)

            def on_pointee(
                tgt: Ref, lhs_ref=lhs_ref, lhs_type=lhs_type,
                ptr_id=ptr_id, st=st,
            ) -> None:
                self.stats.rule4_firings += 1
                if self.tracer is not None:
                    self._ctx = self.tracer.new_ctx(
                        4, st, ((ptr_id, self.facts.intern(tgt)),)
                    )
                self.install_resolve_result(self._resolve(lhs_ref, tgt, lhs_type))
                self._ctx = 0

            self.subscribe(ptr_ref, on_pointee)
        elif isinstance(st, Store):
            # Rule 5: *p = (τ_p) t — the type p is declared to point to
            # determines how many bytes are copied (Complication 4).
            tau_p = declared_pointee(st.ptr)
            rhs_ref = self.norm_obj(st.rhs)
            ptr_ref = self.norm_obj(st.ptr)
            ptr_id = self.facts.intern(ptr_ref)

            def on_pointee(
                tgt: Ref, tau_p=tau_p, rhs_ref=rhs_ref, ptr_id=ptr_id, st=st
            ) -> None:
                self.stats.rule5_firings += 1
                if self.tracer is not None:
                    self._ctx = self.tracer.new_ctx(
                        5, st, ((ptr_id, self.facts.intern(tgt)),)
                    )
                self.install_resolve_result(self._resolve(tgt, rhs_ref, tau_p))
                self._ctx = 0

            self.subscribe(ptr_ref, on_pointee)
        elif isinstance(st, PtrArith):
            # Assumption 1: the result may point to any sub-field of the
            # outermost object containing a pointee of any operand (or,
            # for refining strategies, a narrower arith_refs set).
            lhs_id = self.facts.intern(self.norm_obj(st.lhs))
            for op in st.operands:
                op_ref = self.norm_obj(op)
                op_id = self.facts.intern(op_ref)

                def on_pointee(tgt: Ref, lhs_id=lhs_id, op_id=op_id, st=st) -> None:
                    intern = self.facts.intern
                    add = self._add_fact_ids
                    if self.tracer is not None:
                        self._ctx = self.tracer.new_ctx(
                            0, st, ((op_id, intern(tgt)),),
                            label="assumption-1 (pointer arithmetic)",
                        )
                    if not self.assume_valid_pointers:
                        add(lhs_id, intern(self.unknown_ref()))
                        self._ctx = 0
                        return
                    for r in self.strategy.arith_refs(tgt):
                        add(lhs_id, intern(r))
                    self._ctx = 0

                self.subscribe(op_ref, on_pointee)
        elif isinstance(st, Call):
            if st.indirect:
                def on_pointee(tgt: Ref, st=st) -> None:
                    if tgt.obj.kind is ObjKind.FUNCTION and self._is_object_start(tgt):
                        self._bind_call(st, tgt.obj)

                self.subscribe(self.norm_obj(st.callee), on_pointee)
            else:
                self._bind_call(st, st.callee)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {st!r}")

    @staticmethod
    def _is_object_start(ref: Ref) -> bool:
        if isinstance(ref, OffsetRef):
            return ref.offset == 0
        return ref.path == ()

    # ------------------------------------------------------------------
    # Interprocedural binding (context-insensitive).
    # ------------------------------------------------------------------
    def _bind_call(self, call: Call, fobj: AbstractObject) -> None:
        key = (id(call), fobj)
        if key in self._bound:
            return
        self._bound.add(key)
        self.stats.calls_bound += 1
        tracer = self.tracer
        info = self.program.function_for_object(fobj)
        if info is None:
            if tracer is not None:
                self._ctx = tracer.new_ctx(
                    0, call, label=f"summary:{fobj.name}"
                )
            self.summaries.apply(self, call, fobj.name)
            self._ctx = 0
            return
        for i, arg in enumerate(call.args):
            if i < len(info.params):
                param = info.params[i]
                if tracer is not None:
                    self._ctx = tracer.new_ctx(
                        0, call, label=f"rule 3 (parameter copy: {param.name})"
                    )
                res = self._resolve(self.norm_obj(param), self.norm_obj(arg), param.type)
                self.install_resolve_result(res)
            elif info.vararg is not None:
                if tracer is not None:
                    self._ctx = tracer.new_ctx(
                        0, call, label="rule 3 (vararg sink copy)"
                    )
                self.install_copy_edge(self.norm_obj(arg), self.norm_obj(info.vararg))
        if call.lhs is not None and info.retval is not None:
            if tracer is not None:
                self._ctx = tracer.new_ctx(
                    0, call, label="rule 3 (return copy)"
                )
            res = self._resolve(
                self.norm_obj(call.lhs), self.norm_obj(info.retval), call.lhs.type
            )
            self.install_resolve_result(res)
        self._ctx = 0

    # ------------------------------------------------------------------
    # The fixpoint loop.
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Process pending deltas until the worklist is empty.

        Each heap entry names a class whose accumulated delta bitset is
        flushed as one batch: copy edges receive the delta as a single
        big-int union each, windows are matched once per member offset,
        and subscribers get the decoded refs.  A propagation that adds
        nothing triggers the lazy cycle probe (:meth:`_maybe_collapse`);
        a collapse may merge the class being drained mid-batch, in which
        case the remaining work re-resolves representatives on the fly
        and over-deliveries are absorbed by bit- and seen-set dedup.
        """
        if self.tracer is not None:
            self._drain_traced()
            return
        heap = self._heap
        pending = self._pending
        facts = self.facts
        find = facts.find
        adj = self._copy_adj
        windows = self._windows
        subs = self._subs
        add_bits = self._add_bits
        while heap:
            rep = find(heappop(heap))
            delta = pending.pop(rep, 0)
            if not delta:
                continue
            edges = adj.get(rep)
            if edges:
                pts = facts._pts
                for tid in tuple(edges):
                    rt = find(tid)
                    rep = find(rep)
                    if rt == rep:
                        self.stats.props_saved += 1
                        continue
                    if not add_bits(tid, delta):
                        # No-op propagation: probe for a cycle, but only
                        # once the two sets have converged — members of a
                        # copy cycle always equalize before their final
                        # no-op, and the equality test is a single big-int
                        # compare vs. a full DFS over the copy graph.
                        rt = find(tid)
                        rep = find(rep)
                        if rt != rep and pts[rep] == pts[rt]:
                            self._maybe_collapse(rep, rt)
            rep = find(rep)
            if windows:
                canon = self.strategy.canon_offset_ref  # type: ignore[attr-defined]
                refs = facts._refs
                intern = facts.intern
                for m in tuple(facts._members[rep]):
                    ref = refs[m]
                    if type(ref) is OffsetRef:
                        index = windows.get(ref.obj)
                        if index is not None:
                            off = ref.offset
                            for lo, dobj, dbase in index.matches(off):
                                dref = canon(OffsetRef(dobj, dbase + (off - lo)))
                                if dref is not None:
                                    add_bits(intern(dref), delta)
            cbs = subs.get(rep)
            if cbs:
                delta_refs = facts.decode(delta)
                # List iteration tolerates appends; a subscriber added
                # mid-batch replays existing facts itself and its
                # per-pointee dedup absorbs the overlap.
                for cb in cbs:
                    for dst in delta_refs:
                        cb(dst)

    def _drain_traced(self) -> None:
        """The traced twin of :meth:`drain`: identical propagation minus
        the lazy cycle probe (collapsing is a pure optimization and stays
        off under tracing so the union-find is the identity and each
        ``(source ID, target ID)`` pair names one logical fact), plus a
        :meth:`~repro.obs.provenance.Tracer.record_flow` call on every
        propagation that added facts.  ``self._ctx`` is cleared before
        subscriber callbacks run: rule callbacks open their own contexts,
        and anything that does not (library-summary closures) records as
        context 0 ("unattributed")."""
        tracer = self.tracer
        heap = self._heap
        pending = self._pending
        facts = self.facts
        find = facts.find
        adj = self._copy_adj
        windows = self._windows
        subs = self._subs
        add_bits = self._add_bits
        edge_prov = self._edge_prov
        win_prov = self._win_prov
        while heap:
            rep = find(heappop(heap))
            delta = pending.pop(rep, 0)
            if not delta:
                continue
            edges = adj.get(rep)
            if edges:
                for tid in tuple(edges):
                    new = add_bits(tid, delta)
                    if new:
                        tracer.record_flow(
                            tid, new, edge_prov.get((rep, tid), 0), rep
                        )
            if windows:
                canon = self.strategy.canon_offset_ref  # type: ignore[attr-defined]
                refs = facts._refs
                intern = facts.intern
                for m in tuple(facts._members[rep]):
                    ref = refs[m]
                    if type(ref) is OffsetRef:
                        index = windows.get(ref.obj)
                        if index is not None:
                            off = ref.offset
                            for lo, dobj, dbase in index.matches(off):
                                dref = canon(OffsetRef(dobj, dbase + (off - lo)))
                                if dref is not None:
                                    did = intern(dref)
                                    new = add_bits(did, delta)
                                    if new:
                                        tracer.record_flow(
                                            did, new,
                                            win_prov.get((ref.obj, lo, dobj, dbase), 0),
                                            m,
                                        )
            cbs = subs.get(rep)
            if cbs:
                delta_refs = facts.decode(delta)
                self._ctx = 0
                for cb in cbs:
                    for dst in delta_refs:
                        cb(dst)

    def solve(self) -> Result:
        t0 = time.perf_counter()
        for st in self.program.all_stmts():
            self._setup_stmt(st)
        self.drain()
        self.stats.solve_seconds = time.perf_counter() - t0
        return Result(
            self.program, self.strategy, self.facts, self.stats,
            tracer=self.tracer,
        )


def analyze(program: Program, strategy: Strategy, **kwargs) -> Result:
    """Convenience wrapper: run ``strategy`` over ``program`` to fixpoint."""
    return Engine(program, strategy, **kwargs).solve()
