"""The "Collapse Always" instance (paper §4.3.1).

The most general and least precise portable strategy: every structure is a
single variable, so every read or write of a field is a read or write of
the whole object.  The paper's definitions:

.. code-block:: text

    normalize(s.α)          = s
    lookup(τ, α, t.β̂)       = { t }
    resolve(s.α̂, t.β̂, τ)    = { ⟨s, t⟩ }

A points-to fact ``pointsTo(s, t)`` is read as "any field of ``s`` may
point to any field of ``t``"; for the Figure 4 comparison the engine
expands such a fact to one fact per field of ``t`` via
:meth:`target_weight`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..ctype.types import CType, StructType
from ..ir.objects import AbstractObject
from ..ir.refs import FieldRef, Ref
from .fieldpaths import leaf_count
from .strategy import CallInfo, ResolveResult, Strategy

__all__ = ["CollapseAlways"]


class CollapseAlways(Strategy):
    """Collapse every structure into a single variable."""

    name = "Collapse Always"
    key = "collapse_always"
    portable = True

    def __init__(self, layout=None) -> None:
        super().__init__(layout)
        # Every ref of an object collapses to the same whole-object ref;
        # cache it per object (keys use id(obj), values pin the object).
        self._whole_cache: dict = self.shared_cache("whole")

    def _whole(self, obj: AbstractObject) -> FieldRef:
        hit = self._whole_cache.get(id(obj))
        if hit is None:
            hit = (obj, self.canon_ref(FieldRef(obj, ())))
            self._whole_cache[id(obj)] = hit
        return hit[1]

    def normalize(self, ref: FieldRef) -> Ref:
        return self._whole(ref.obj)

    def lookup(
        self, tau: CType, alpha: Sequence[str], target: Ref
    ) -> Tuple[List[Ref], CallInfo]:
        info = CallInfo(
            involved_struct=isinstance(tau, StructType)
            or isinstance(target.obj.type, StructType),
            mismatch=False,  # Collapse Always never tests types (paper §5).
        )
        return [self._whole(target.obj)], info

    def resolve(
        self, dst: Ref, src: Ref, tau: CType
    ) -> Tuple[ResolveResult, CallInfo]:
        info = CallInfo(
            involved_struct=isinstance(tau, StructType)
            or isinstance(dst.obj.type, StructType)
            or isinstance(src.obj.type, StructType),
            mismatch=False,
        )
        pair = (self._whole(dst.obj), self._whole(src.obj))
        return [pair], info

    def all_refs(self, obj: AbstractObject) -> List[Ref]:
        return [self._whole(obj)]

    def describe_call(self, call) -> str:
        base = super().describe_call(call)
        if call.kind == "lookup":
            why = "every structure is one variable, so the dereference touches the whole target object (§4.3.1)"
        else:
            why = "a copy transfers between the whole collapsed objects (§4.3.1)"
        return f"{base} — {why}"

    def target_weight(self, ref: Ref) -> int:
        return leaf_count(ref.obj.type)
