"""Reference solver: the pre-interning engine, retained for differential testing.

This module preserves the PR-1 data plane — a :class:`ReferenceFactBase`
storing points-to sets as ``dict[Ref, set[Ref]]`` and a
:class:`ReferenceEngine` draining a FIFO worklist of per-source delta
batches with *no* ref interning and *no* copy-edge cycle collapsing.  It
computes the least fixpoint of the paper's inference rules by the most
direct route, which makes it the oracle for the production engine in
:mod:`repro.core.engine`: ``tests/test_differential_reference.py`` runs
both solvers over seeded random programs and asserts identical
``points_to`` sets for every reference.

The reference engine is *correct but slow*; nothing outside the test
suite should use it.  It shares the strategies, the interprocedural
layer, and :class:`~repro.core.engine.EngineStats` with the production
engine, so any divergence localizes to the data plane (interning,
bitsets, union-find collapsing) rather than to rule semantics.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..ctype.types import CType
from ..ir.objects import AbstractObject, ObjKind
from ..ir.program import Program
from ..ir.refs import FieldRef, OffsetRef, Ref
from ..ir.stmts import (
    AddrOf,
    Call,
    Copy,
    FieldAddr,
    Load,
    PtrArith,
    Stmt,
    Store,
    declared_pointee,
)
from .engine import AnalysisBudgetExceeded, Engine, EngineStats, Result, _WindowIndex
from .offsets import Offsets
from .strategy import Strategy, Window

__all__ = [
    "ReferenceFactBase",
    "ReferenceEngine",
    "reference_analyze",
    "traced_equals_untraced",
]

_EMPTY: frozenset = frozenset()

_Callback = Callable[[Ref], None]


class ReferenceFactBase:
    """The PR-1 fact base: dict-of-sets keyed by ``Ref`` objects."""

    def __init__(self) -> None:
        self._succ: Dict[Ref, Set[Ref]] = {}
        self._by_obj: Dict[AbstractObject, Set[Ref]] = {}
        self._count = 0

    def add(self, src: Ref, dst: Ref) -> bool:
        targets = self._succ.get(src)
        if targets is None:
            targets = set()
            self._succ[src] = targets
            self._by_obj.setdefault(src.obj, set()).add(src)
        if dst in targets:
            return False
        targets.add(dst)
        self._count += 1
        return True

    def points_to(self, src: Ref) -> FrozenSet[Ref]:
        targets = self._succ.get(src)
        return frozenset(targets) if targets else _EMPTY

    def points_to_view(self, src: Ref):
        return self._succ.get(src, _EMPTY)

    def has(self, src: Ref, dst: Ref) -> bool:
        targets = self._succ.get(src)
        return targets is not None and dst in targets

    def refs_of_obj(self, obj: AbstractObject) -> FrozenSet[Ref]:
        refs = self._by_obj.get(obj)
        return frozenset(refs) if refs else _EMPTY

    def refs_of_obj_view(self, obj: AbstractObject):
        return self._by_obj.get(obj, _EMPTY)

    def sources(self) -> Iterator[Ref]:
        return iter(self._succ)

    def all_facts(self) -> Iterator[Tuple[Ref, Ref]]:
        for src, targets in self._succ.items():
            for dst in targets:
                yield src, dst

    def edge_count(self) -> int:
        return self._count

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"<ReferenceFactBase: {self._count} facts, {len(self._succ)} sources>"


class ReferenceEngine:
    """The PR-1 engine: FIFO delta batches over ``Ref``-keyed indexes."""

    def __init__(
        self,
        program: Program,
        strategy: Strategy,
        max_facts: int = 5_000_000,
        assume_valid_pointers: bool = True,
    ) -> None:
        self.program = program
        self.strategy = strategy
        self.max_facts = max_facts
        self.assume_valid_pointers = assume_valid_pointers
        self._unknown: Optional[AbstractObject] = None
        self.facts = ReferenceFactBase()
        self.stats = EngineStats()
        self._worklist: deque = deque()
        self._pending: Dict[Ref, List[Ref]] = {}
        self._copy_edges: Dict[Ref, List[Ref]] = {}
        self._edge_set: Set[Tuple[Ref, Ref]] = set()
        self._windows: Dict[AbstractObject, _WindowIndex] = {}
        self._window_set: Set[Tuple[AbstractObject, int, int, AbstractObject, int]] = set()
        self._subs: Dict[Ref, List[_Callback]] = {}
        self._bound: Set[Tuple[int, AbstractObject]] = set()
        self._norm_cache: Dict[AbstractObject, Ref] = {}
        from .interproc import SummaryRegistry

        self.summaries = SummaryRegistry.default()

    # ------------------------------------------------------------------
    def unknown_ref(self) -> Ref:
        if self._unknown is None:
            from ..ctype.types import void

            self._unknown = AbstractObject("<unknown>", void, ObjKind.GLOBAL)
        return self.norm_obj(self._unknown)

    def norm_obj(self, obj: AbstractObject) -> Ref:
        ref = self._norm_cache.get(obj)
        if ref is None:
            ref = self.strategy.normalize(FieldRef(obj, ()))
            self._norm_cache[obj] = ref
        return ref

    def norm_ref(self, ref: FieldRef) -> Ref:
        if not ref.path:
            return self.norm_obj(ref.obj)
        return self.strategy.normalize(ref)

    # ------------------------------------------------------------------
    def _lookup(self, tau: CType, alpha, target: Ref):
        refs, info = self.strategy.cached_lookup(tau, alpha, target)
        self.stats.lookup_calls += 1
        if info.involved_struct:
            self.stats.lookup_struct_calls += 1
            if info.mismatch:
                self.stats.lookup_mismatch_calls += 1
        return refs

    def _resolve(self, dst: Ref, src: Ref, tau: CType):
        res, info = self.strategy.cached_resolve(dst, src, tau)
        self.stats.resolve_calls += 1
        if info.involved_struct:
            self.stats.resolve_struct_calls += 1
            if info.mismatch:
                self.stats.resolve_mismatch_calls += 1
        return res

    # ------------------------------------------------------------------
    def add_fact(self, src: Ref, dst: Ref) -> None:
        if self.facts.add(src, dst):
            self.stats.facts += 1
            if self.stats.facts > self.max_facts:
                raise AnalysisBudgetExceeded(
                    f"more than {self.max_facts} facts; aborting"
                )
            pending = self._pending.get(src)
            if pending is None:
                self._pending[src] = [dst]
                self._worklist.append(src)
            else:
                pending.append(dst)

    def install_copy_edge(self, src: Ref, dst: Ref) -> None:
        if src == dst:
            return
        key = (src, dst)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self.stats.copy_edges += 1
        self._copy_edges.setdefault(src, []).append(dst)
        for tgt in self.facts.points_to_view(src):
            self.add_fact(dst, tgt)

    def install_window(self, w: Window) -> None:
        key = (w.src.obj, w.src.offset, w.size, w.dst.obj, w.dst.offset)
        if key in self._window_set:
            return
        self._window_set.add(key)
        self.stats.windows += 1
        index = self._windows.get(w.src.obj)
        if index is None:
            index = self._windows[w.src.obj] = _WindowIndex()
        index.insert(w.src.offset, w.size, w.dst.obj, w.dst.offset)
        for ref in tuple(self.facts.refs_of_obj_view(w.src.obj)):
            if isinstance(ref, OffsetRef) and w.src.offset <= ref.offset < w.src.offset + w.size:
                self._window_hit(ref, w.src.offset, w.dst.obj, w.dst.offset)

    def _window_hit(
        self, src_ref: OffsetRef, lo: int, dst_obj: AbstractObject, dst_base: int
    ) -> None:
        assert isinstance(self.strategy, Offsets)
        m = dst_base + (src_ref.offset - lo)
        dst_ref = self.strategy.canon_offset_ref(OffsetRef(dst_obj, m))
        if dst_ref is None:
            return
        for tgt in self.facts.points_to_view(src_ref):
            self.add_fact(dst_ref, tgt)

    def install_resolve_result(self, res) -> None:
        if isinstance(res, Window):
            self.install_window(res)
        else:
            for dst, src in res:
                self.install_copy_edge(src, dst)

    def subscribe(self, ptr_ref: Ref, cb: _Callback) -> None:
        seen: Set[Ref] = set()

        def wrapped(tgt: Ref) -> None:
            if tgt not in seen:
                seen.add(tgt)
                cb(tgt)

        self._subs.setdefault(ptr_ref, []).append(wrapped)
        for tgt in tuple(self.facts.points_to_view(ptr_ref)):
            wrapped(tgt)

    def cross_subscribe(
        self, a_ref: Ref, b_ref: Ref, fn: Callable[[Ref, Ref], None]
    ) -> None:
        a_seen: List[Ref] = []
        b_seen: List[Ref] = []

        def on_a(t: Ref) -> None:
            a_seen.append(t)
            for u in list(b_seen):
                fn(t, u)

        def on_b(u: Ref) -> None:
            b_seen.append(u)
            for t in list(a_seen):
                fn(t, u)

        self.subscribe(a_ref, on_a)
        self.subscribe(b_ref, on_b)

    # ------------------------------------------------------------------
    def _setup_stmt(self, st: Stmt) -> None:
        # Rule-firing counters mirror Engine._setup_stmt exactly (same
        # granularity, same placement); the differential test compares
        # them field-for-field.
        if isinstance(st, AddrOf):
            self.stats.rule1_firings += 1
            self.add_fact(self.norm_obj(st.lhs), self.norm_ref(st.target))
        elif isinstance(st, FieldAddr):
            tau_p = declared_pointee(st.ptr)
            lhs_ref = self.norm_obj(st.lhs)

            def on_pointee(tgt: Ref, tau_p=tau_p, path=st.path, lhs_ref=lhs_ref) -> None:
                self.stats.rule2_firings += 1
                for r in self._lookup(tau_p, path, tgt):
                    self.add_fact(lhs_ref, r)

            self.subscribe(self.norm_obj(st.ptr), on_pointee)
        elif isinstance(st, Copy):
            self.stats.rule3_firings += 1
            res = self._resolve(self.norm_obj(st.lhs), self.norm_ref(st.rhs), st.lhs.type)
            self.install_resolve_result(res)
        elif isinstance(st, Load):
            lhs_ref = self.norm_obj(st.lhs)
            lhs_type = st.lhs.type

            def on_pointee(tgt: Ref, lhs_ref=lhs_ref, lhs_type=lhs_type) -> None:
                self.stats.rule4_firings += 1
                self.install_resolve_result(self._resolve(lhs_ref, tgt, lhs_type))

            self.subscribe(self.norm_obj(st.ptr), on_pointee)
        elif isinstance(st, Store):
            tau_p = declared_pointee(st.ptr)
            rhs_ref = self.norm_obj(st.rhs)

            def on_pointee(tgt: Ref, tau_p=tau_p, rhs_ref=rhs_ref) -> None:
                self.stats.rule5_firings += 1
                self.install_resolve_result(self._resolve(tgt, rhs_ref, tau_p))

            self.subscribe(self.norm_obj(st.ptr), on_pointee)
        elif isinstance(st, PtrArith):
            lhs_ref = self.norm_obj(st.lhs)
            for op in st.operands:
                def on_pointee(tgt: Ref, lhs_ref=lhs_ref) -> None:
                    if not self.assume_valid_pointers:
                        self.add_fact(lhs_ref, self.unknown_ref())
                        return
                    for r in self.strategy.arith_refs(tgt):
                        self.add_fact(lhs_ref, r)

                self.subscribe(self.norm_obj(op), on_pointee)
        elif isinstance(st, Call):
            if st.indirect:
                def on_pointee(tgt: Ref, st=st) -> None:
                    if tgt.obj.kind is ObjKind.FUNCTION and self._is_object_start(tgt):
                        self._bind_call(st, tgt.obj)

                self.subscribe(self.norm_obj(st.callee), on_pointee)
            else:
                self._bind_call(st, st.callee)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown statement {st!r}")

    @staticmethod
    def _is_object_start(ref: Ref) -> bool:
        if isinstance(ref, OffsetRef):
            return ref.offset == 0
        return ref.path == ()

    # ------------------------------------------------------------------
    def _bind_call(self, call: Call, fobj: AbstractObject) -> None:
        key = (id(call), fobj)
        if key in self._bound:
            return
        self._bound.add(key)
        self.stats.calls_bound += 1
        info = self.program.function_for_object(fobj)
        if info is None:
            self.summaries.apply(self, call, fobj.name)
            return
        for i, arg in enumerate(call.args):
            if i < len(info.params):
                param = info.params[i]
                res = self._resolve(self.norm_obj(param), self.norm_obj(arg), param.type)
                self.install_resolve_result(res)
            elif info.vararg is not None:
                self.install_copy_edge(self.norm_obj(arg), self.norm_obj(info.vararg))
        if call.lhs is not None and info.retval is not None:
            res = self._resolve(
                self.norm_obj(call.lhs), self.norm_obj(info.retval), call.lhs.type
            )
            self.install_resolve_result(res)

    # ------------------------------------------------------------------
    def drain(self) -> None:
        worklist = self._worklist
        pending = self._pending
        copy_edges = self._copy_edges
        windows = self._windows
        subs = self._subs
        add_fact = self.add_fact
        while worklist:
            src = worklist.popleft()
            delta = pending.pop(src, None)
            if not delta:
                continue
            edges = copy_edges.get(src)
            if edges:
                for edge_dst in edges:
                    for dst in delta:
                        add_fact(edge_dst, dst)
            if type(src) is OffsetRef:
                index = windows.get(src.obj)
                if index is not None:
                    off = src.offset
                    canon = self.strategy.canon_offset_ref  # type: ignore[attr-defined]
                    for lo, dobj, dbase in index.matches(off):
                        dref = canon(OffsetRef(dobj, dbase + (off - lo)))
                        if dref is not None:
                            for dst in delta:
                                add_fact(dref, dst)
            cbs = subs.get(src)
            if cbs:
                for cb in cbs:
                    for dst in delta:
                        cb(dst)

    def solve(self) -> Result:
        t0 = time.perf_counter()
        for st in self.program.all_stmts():
            self._setup_stmt(st)
        self.drain()
        self.stats.solve_seconds = time.perf_counter() - t0
        return Result(self.program, self.strategy, self.facts, self.stats)


def reference_analyze(program: Program, strategy: Strategy, **kwargs) -> Result:
    """Run the reference solver to fixpoint (differential-test oracle)."""
    return ReferenceEngine(program, strategy, **kwargs).solve()


def traced_equals_untraced(
    program: Program, strategy: Strategy, **kwargs
) -> Tuple[Result, Result]:
    """Run the production engine untraced and traced and assert parity.

    Tracing must not perturb the analysis: it turns off online cycle
    collapsing (a pure optimization) and records provenance on the side,
    so both runs must reach the same least fixpoint with identical
    logical facts and identical gateable stats.  Raises
    ``AssertionError`` on any divergence; returns ``(untraced, traced)``
    so callers can inspect the tracer.
    """
    untraced = Engine(program, strategy, **kwargs).solve()
    traced = Engine(program, strategy, trace=True, **kwargs).solve()
    uf = set(untraced.facts.all_facts())
    tf = set(traced.facts.all_facts())
    assert uf == tf, (
        f"traced/untraced fact divergence: {len(uf ^ tf)} facts differ "
        f"(only-untraced={sorted(map(repr, uf - tf))[:5]}, "
        f"only-traced={sorted(map(repr, tf - uf))[:5]})"
    )
    skip = {"solve_seconds", "sccs_collapsed", "props_saved"}
    us = {k: v for k, v in untraced.stats.as_dict().items() if k not in skip}
    ts = {k: v for k, v in traced.stats.as_dict().items() if k not in skip}
    assert us == ts, f"traced/untraced stats divergence: {us} != {ts}"
    return untraced, traced
