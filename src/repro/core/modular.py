"""Modular bottom-up solving over the callgraph SCC DAG.

The whole-program fixpoint (:meth:`Engine.solve`) installs every
statement and drains once.  This module computes the *same* fixpoint
bottom-up: functions are grouped into strongly connected components of
an approximate callgraph, the SCC condensation is levelled so that
callees precede callers, and each SCC's statements are installed and
drained in that order.  Because the Figure-2 rules are monotone, the
staged schedule reaches exactly the least fixpoint of the full
statement set — the same argument that makes incremental re-solves
(:meth:`Engine.add_statements`) sound — so points-to sets, deref
profiles, and every order-independent counter are byte-identical to the
whole-program solve.  What the schedule buys is *summaries*: after a
function's SCC level drains, the points-to sets of its parameters and
return object are final with respect to everything below it, and are
captured as a :class:`FunctionSummary`.

With ``workers > 1`` the independent SCCs of each level are pre-solved
in parallel worker processes (``ProcessPoolExecutor``).  Each worker
solves only its slice of the program (global initializers + its SCC's
function bodies) seeded with the facts collected from lower levels, and
returns its derived facts by name.  Worker fixpoints are least
fixpoints of statement *subsets* seeded with facts already known to lie
in the full fixpoint, so by monotonicity every returned fact is in the
whole-program fixpoint.  The main process seeds them into a fresh
engine as warm-start facts, then installs *all* statements and drains —
guaranteeing the exact fixpoint regardless of callgraph approximation
or worker failures.  Any pool or pickling failure degrades to the
serial staged schedule — counted (``modular_pool_failures``) and
recorded as a WARNING diagnostic; ``REPRO_DEBUG=1`` re-raises
unexpected (non-pool, non-pickling) failures instead of degrading.

The callgraph is deliberately approximate (direct calls resolved by
name, indirect calls to every address-taken function): a missed edge
only weakens summaries and scheduling, never the result.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..diag import Diagnostic, DiagnosticSink, Severity
from ..ir.program import Program
from ..ir.refs import FieldRef, OffsetRef, Ref
from ..ir.stmts import AddrOf, Call, Copy, Stmt
from .engine import Engine, Result
from .rules import setup_stmt
from .strategy import Strategy
from .worklist import Worklist

#: Failure classes the worker-pool fallback is *designed* to absorb:
#: pool construction/teardown problems (restricted platforms, dead
#: workers, fd limits) and unpicklable payloads.  Anything else raised
#: out of pre-seeding is a programmer error in disguise, and the
#: ``REPRO_DEBUG=1`` escape hatch re-raises it instead of degrading.
_EXPECTED_POOL_FAILURES = (pickle.PicklingError, BrokenProcessPool, OSError)

__all__ = [
    "FunctionSummary",
    "ModularResult",
    "ModularSchedule",
    "approximate_callgraph",
    "scc_schedule",
    "solve_modular",
]


# ----------------------------------------------------------------------
# Callgraph approximation and SCC condensation.
# ----------------------------------------------------------------------
def approximate_callgraph(program: Program) -> Dict[str, Set[str]]:
    """Caller → callees over the *defined* functions of ``program``.

    Direct calls resolve by callee name; indirect calls conservatively
    target every address-taken defined function (a FUNCTION object that
    appears as an ``AddrOf`` target or ``Copy`` source anywhere in the
    program).  Precision here affects only summary quality and schedule
    shape — the final drain installs every statement, so the solved
    fixpoint never depends on this graph.
    """
    defined = set(program.functions)
    address_taken: Set[str] = set()
    for st in program.all_stmts():
        if isinstance(st, AddrOf):
            obj = st.target.obj
        elif isinstance(st, Copy):
            obj = st.rhs.obj
        else:
            continue
        if obj.is_function and obj.name in defined:
            address_taken.add(obj.name)

    edges: Dict[str, Set[str]] = {fn: set() for fn in defined}
    for fn, info in program.functions.items():
        for st in info.stmts:
            if not isinstance(st, Call):
                continue
            if not st.indirect and st.callee.is_function:
                if st.callee.name in defined:
                    edges[fn].add(st.callee.name)
            elif st.indirect:
                edges[fn].update(address_taken)
    return edges


@dataclass
class ModularSchedule:
    """The bottom-up plan: SCCs of the callgraph condensation, levelled
    so that every SCC's callees sit at a strictly lower level."""

    #: SCC membership, function names; indexed by SCC id.
    sccs: List[List[str]] = field(default_factory=list)
    #: SCC ids per level, level 0 first (leaves of the callgraph).
    #: SCCs within one level are mutually unreachable, hence
    #: independently solvable.
    levels: List[List[int]] = field(default_factory=list)
    #: Caller → callees edge set the schedule was derived from.
    callgraph: Dict[str, Set[str]] = field(default_factory=dict)
    #: Function name → SCC id.
    scc_of: Dict[str, int] = field(default_factory=dict)


def _tarjan(nodes: Sequence[str], edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Iterative Tarjan: SCCs of (nodes, edges), callees-first order."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = 0
    for root in nodes:
        if root in index:
            continue
        # Explicit DFS stack of (node, iterator over successors).
        work: List[Tuple[str, List[str]]] = [(root, sorted(edges.get(root, ())))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, succs = work[-1]
            advanced = False
            while succs:
                w = succs.pop()
                if w not in index:
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, sorted(edges.get(w, ()))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
            if low[v] == index[v]:
                scc: List[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == v:
                        break
                sccs.append(sorted(scc))
    return sccs


def scc_schedule(program: Program) -> ModularSchedule:
    """SCC-condense the approximate callgraph and level it bottom-up."""
    edges = approximate_callgraph(program)
    nodes = sorted(edges)
    sccs = _tarjan(nodes, edges)
    scc_of = {fn: i for i, scc in enumerate(sccs) for fn in scc}
    # level(C) = 1 + max(level of callee SCCs); Tarjan's emission order
    # already places callees first, so one forward pass suffices.
    level_of: Dict[int, int] = {}
    for i, scc in enumerate(sccs):
        lvl = 0
        for fn in scc:
            for callee in edges.get(fn, ()):
                j = scc_of[callee]
                if j != i:
                    lvl = max(lvl, level_of[j] + 1)
        level_of[i] = lvl
    levels: List[List[int]] = []
    for i in range(len(sccs)):
        lvl = level_of[i]
        while len(levels) <= lvl:
            levels.append([])
        levels[lvl].append(i)
    return ModularSchedule(sccs=sccs, levels=levels, callgraph=edges, scc_of=scc_of)


# ----------------------------------------------------------------------
# Summaries.
# ----------------------------------------------------------------------
@dataclass
class FunctionSummary:
    """Per-function points-to summary captured when the function's SCC
    level finished draining (final w.r.t. everything below it)."""

    name: str
    scc: int
    level: int
    #: Parameter object name → sorted pointee ref reprs.
    params: Dict[str, List[str]] = field(default_factory=dict)
    #: Sorted pointee ref reprs of the return object ([] for void).
    returns: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scc": self.scc,
            "level": self.level,
            "params": dict(self.params),
            "returns": list(self.returns),
        }


def _summarize(
    engine: Engine, program: Program, schedule: ModularSchedule,
    level_of_scc: Dict[int, int],
) -> Dict[str, FunctionSummary]:
    facts = engine.facts
    strategy = engine.strategy
    summaries: Dict[str, FunctionSummary] = {}
    for fn, info in program.functions.items():
        scc = schedule.scc_of.get(fn, -1)
        summ = FunctionSummary(name=fn, scc=scc, level=level_of_scc.get(scc, 0))
        for pobj in info.params:
            ref = strategy.normalize(FieldRef(pobj, ()))
            rid = facts.intern(ref)
            summ.params[pobj.name] = sorted(
                repr(t) for t in facts.decode(facts.pts_bits(facts.find(rid)))
            )
        if info.retval is not None:
            ref = strategy.normalize(FieldRef(info.retval, ()))
            rid = facts.intern(ref)
            summ.returns = sorted(
                repr(t) for t in facts.decode(facts.pts_bits(facts.find(rid)))
            )
        summaries[fn] = summ
    return summaries


# ----------------------------------------------------------------------
# Fact serialization (worker boundary).
# ----------------------------------------------------------------------
def _spec_of(ref: Ref) -> Optional[Tuple]:
    if isinstance(ref, FieldRef):
        return ("F", ref.obj.name, tuple(ref.path))
    if isinstance(ref, OffsetRef):
        return ("O", ref.obj.name, ref.offset)
    return None


def _ref_of_spec(spec: Tuple, program: Program) -> Optional[Ref]:
    kind, name, extra = spec
    obj = program.objects.lookup(name)
    if obj is None:
        # An engine-invented object (e.g. the lenient "unknown" sink)
        # that has no counterpart here; the final full drain re-derives
        # anything reachable through it.
        return None
    if kind == "F":
        return FieldRef(obj, tuple(extra))
    return OffsetRef(obj, extra)


def _facts_as_specs(engine: Engine) -> List[Tuple[Tuple, Tuple]]:
    out = []
    for src, dst in engine.facts.all_facts():
        s, d = _spec_of(src), _spec_of(dst)
        if s is not None and d is not None:
            out.append((s, d))
    return out


def _seed_specs(engine: Engine, specs: Sequence[Tuple[Tuple, Tuple]]) -> None:
    program = engine.program
    strategy = engine.strategy
    for s_spec, d_spec in specs:
        src = _ref_of_spec(s_spec, program)
        dst = _ref_of_spec(d_spec, program)
        if src is None or dst is None:
            continue
        engine.add_fact(strategy.normalize(src), strategy.normalize(dst))


# ----------------------------------------------------------------------
# Parallel worker (module-level so ProcessPoolExecutor can pickle it).
# ----------------------------------------------------------------------
_WORKER: Dict[str, object] = {}


def _worker_init(payload: bytes) -> None:
    # The strategy travels as (registry key, ABI): a live strategy
    # instance drags its normalize/layout memo caches along, and those
    # hold refs whose lazy hashes break under pickle's cycle handling.
    program, strategy_key, abi, max_facts, assume_valid = pickle.loads(payload)
    from ..ctype.layout import Layout
    from . import STRATEGY_BY_KEY

    _WORKER["program"] = program
    _WORKER["strategy"] = STRATEGY_BY_KEY[strategy_key](Layout(abi))
    _WORKER["max_facts"] = max_facts
    _WORKER["assume_valid"] = assume_valid


def _worker_solve(
    task: Tuple[List[str], List[Tuple[Tuple, Tuple]]],
) -> List[Tuple[Tuple, Tuple]]:
    """Solve one SCC batch: global inits + the named function bodies,
    warm-started from ``seed`` facts; return the derived facts by name."""
    fn_names, seeds = task
    program: Program = _WORKER["program"]  # type: ignore[assignment]
    engine = Engine(
        program,
        _WORKER["strategy"],  # type: ignore[arg-type]
        max_facts=_WORKER["max_facts"],  # type: ignore[arg-type]
        assume_valid_pointers=_WORKER["assume_valid"],  # type: ignore[arg-type]
    )
    _seed_specs(engine, seeds)
    for st in program.global_stmts:
        setup_stmt(engine, st)
    for fn in fn_names:
        info = program.functions.get(fn)
        if info is not None:
            for st in info.stmts:
                setup_stmt(engine, st)
    engine.drain()
    return _facts_as_specs(engine)


def _parallel_preseed(
    program: Program,
    strategy: Strategy,
    schedule: ModularSchedule,
    workers: int,
    max_facts: int,
    assume_valid_pointers: bool,
) -> Tuple[List[Tuple[Tuple, Tuple]], int]:
    """Pre-solve SCC batches level by level in worker processes.

    Returns (collected fact specs, number of batches fanned out).
    Raises on any pool/pickle failure; the caller falls back to serial.
    """
    from concurrent.futures import ProcessPoolExecutor

    payload = pickle.dumps(
        (program, strategy.key, strategy.layout.abi,
         max_facts, assume_valid_pointers)
    )
    collected: Dict[Tuple[Tuple, Tuple], None] = {}
    batches = 0
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init, initargs=(payload,)
    ) as pool:
        for level in schedule.levels:
            # Chunk the level's independent SCCs into at most ``workers``
            # batches so one level costs one round of the pool.
            chunks: List[List[str]] = [[] for _ in range(min(workers, len(level)))]
            for i, scc_idx in enumerate(level):
                chunks[i % len(chunks)].extend(schedule.sccs[scc_idx])
            seeds = list(collected)
            futures = [
                pool.submit(_worker_solve, (chunk, seeds))
                for chunk in chunks if chunk
            ]
            batches += len(futures)
            for fut in futures:
                for pair in fut.result():
                    collected[pair] = None
    return list(collected), batches


# ----------------------------------------------------------------------
# Driver.
# ----------------------------------------------------------------------
@dataclass
class ModularResult:
    """A whole-program :class:`Result` plus the modular artifacts."""

    result: Result
    summaries: Dict[str, FunctionSummary]
    schedule: ModularSchedule

    @property
    def facts(self):
        return self.result.facts

    @property
    def stats(self):
        return self.result.stats


def solve_modular(
    program: Program,
    strategy: Strategy,
    *,
    workers: int = 0,
    max_facts: int = 5_000_000,
    assume_valid_pointers: bool = True,
    worklist: Union[str, Worklist] = "priority",
    backend=None,
    diagnostics: Optional[DiagnosticSink] = None,
) -> ModularResult:
    """Bottom-up modular solve; exactly the whole-program fixpoint.

    ``workers > 1`` pre-solves independent SCCs in parallel processes
    (warm-start seeding; falls back to serial on any pool failure).
    """
    schedule = scc_schedule(program)
    engine = Engine(
        program,
        strategy,
        max_facts=max_facts,
        assume_valid_pointers=assume_valid_pointers,
        worklist=worklist,
        backend=backend,
        diagnostics=diagnostics,
    )
    t0 = time.perf_counter()

    batches = 0
    if workers and workers > 1 and len(program.functions) > 1:
        try:
            seeds, batches = _parallel_preseed(
                program, strategy, schedule, workers,
                max_facts, assume_valid_pointers,
            )
            _seed_specs(engine, seeds)
        except Exception as err:
            # No pool (restricted platform), unpicklable piece, or a
            # worker crash: the serial schedule below is always exact.
            # The degradation is sound but never silent — it is counted
            # and recorded as a structured WARNING so operators can see
            # why a "parallel" solve ran serially.  REPRO_DEBUG=1
            # re-raises anything that is NOT an expected pool/pickling
            # failure (i.e. a programmer error hiding behind the
            # fallback).
            batches = 0
            engine.stats.modular_pool_failures += 1
            if diagnostics is not None:
                diagnostics.emit(Diagnostic(
                    kind="modular-pool-failure",
                    message=(
                        f"parallel pre-seeding failed "
                        f"({type(err).__name__}: {err}); "
                        f"falling back to the exact serial schedule"
                    ),
                    severity=Severity.WARNING,
                    phase="analyze",
                ))
            if os.environ.get("REPRO_DEBUG") == "1" and not isinstance(
                err, _EXPECTED_POOL_FAILURES
            ):
                raise

    # Staged bottom-up install: global initializers, then each SCC level,
    # draining between levels.  Monotone rules => least fixpoint of the
    # full statement set, identical to Engine.solve().
    for st in program.global_stmts:
        setup_stmt(engine, st)
    engine.drain()
    level_of_scc: Dict[int, int] = {}
    for lvl, level in enumerate(schedule.levels):
        for scc_idx in level:
            level_of_scc[scc_idx] = lvl
            for fn in schedule.sccs[scc_idx]:
                for st in program.functions[fn].stmts:
                    setup_stmt(engine, st)
        engine.drain()
    engine._solved = True

    summaries = _summarize(engine, program, schedule, level_of_scc)
    engine.stats.summaries_computed = len(summaries)
    engine.stats.scc_parallel_batches = batches
    engine.stats.solve_seconds = time.perf_counter() - t0
    result = Result(
        program, strategy, engine.facts, engine.stats, tracer=engine.tracer
    )
    return ModularResult(result=result, summaries=summaries, schedule=schedule)
