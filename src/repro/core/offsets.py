"""The "Offsets" instance (paper §4.2.2).

The most precise instance, and the only non-portable one: it assumes a
specific layout strategy (an :class:`~repro.ctype.layout.ABI`), so its
results are safe only for that layout.  Locations are
``⟨outermost containing object, byte offset⟩`` pairs:

.. code-block:: text

    normalize(s.α)           = ⟨s, offsetof(τ_s, α)⟩        (0 if α empty)
    lookup(τ, α, t.k̂)        = { t.n̂ | n = k + offsetof(τ, α) }
    resolve(s.ĵ, t.k̂, τ)     = { ⟨s.m̂, t.n̂⟩ | m = j+i, n = k+i,
                                            i ∈ 0 .. sizeof(τ)-1 }

Because of Complications 2 and 3, resolve conceptually pairs *every byte*
of the copied window.  Materializing ``sizeof(τ)`` pairs eagerly would be
wasteful; instead :meth:`Offsets.resolve` returns a
:class:`~repro.core.strategy.Window`, which the engine matches lazily
against the facts that actually exist at source offsets — an exact
implementation of the same function (the fixpoint re-examines the window
whenever a new source fact appears).

Per the paper's footnotes 4 and 6, offsets landing inside arrays are folded
into the representative element (:meth:`Layout.canonical_offset`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..ctype.layout import LayoutError
from ..ctype.types import CType, StructType
from ..ir.objects import AbstractObject
from ..ir.refs import FieldRef, OffsetRef, Ref
from .strategy import CallInfo, ResolveResult, Strategy, Window

__all__ = ["Offsets"]


class Offsets(Strategy):
    """Byte-offset analysis under one concrete layout (non-portable)."""

    name = "Offsets"
    key = "offsets"
    portable = False

    def __init__(self, layout=None) -> None:
        super().__init__(layout)
        # canon_offset_ref is called once per (window, delta-batch) in the
        # engine's drain loop; memoize per (object, offset).  Values pin
        # the object because keys use id(obj).
        self._canon_cache: dict = self.shared_cache("canon_offset")

    # ------------------------------------------------------------------
    def normalize(self, ref: FieldRef) -> Ref:
        try:
            off = self.layout.offsetof(ref.obj.type, ref.path)
        except (LayoutError, KeyError):
            off = 0
        return self.canon_ref(
            OffsetRef(ref.obj, self.layout.canonical_offset(ref.obj.type, off))
        )

    # ------------------------------------------------------------------
    def lookup(
        self, tau: CType, alpha: Sequence[str], target: Ref
    ) -> Tuple[List[Ref], CallInfo]:
        assert isinstance(target, OffsetRef)
        info = CallInfo(
            involved_struct=isinstance(tau, StructType)
            or isinstance(target.obj.type, StructType),
            mismatch=False,  # Offsets never tests types (paper §5).
        )
        try:
            n = target.offset + self.layout.offsetof(tau, alpha)
        except (LayoutError, KeyError):
            return [], info
        ref = self.canon_offset_ref(OffsetRef(target.obj, n))
        return ([ref] if ref is not None else []), info

    # ------------------------------------------------------------------
    def resolve(
        self, dst: Ref, src: Ref, tau: CType
    ) -> Tuple[ResolveResult, CallInfo]:
        assert isinstance(dst, OffsetRef) and isinstance(src, OffsetRef)
        info = CallInfo(
            involved_struct=isinstance(tau, StructType)
            or isinstance(dst.obj.type, StructType)
            or isinstance(src.obj.type, StructType),
            mismatch=False,
        )
        try:
            size = self.layout.sizeof(tau)
        except LayoutError:
            size = 1
        return Window(dst=dst, src=src, size=max(size, 1)), info

    # ------------------------------------------------------------------
    def canon_offset_ref(self, ref: OffsetRef) -> Optional[OffsetRef]:
        """Memoized canonicalization; see :meth:`_canon_offset_ref_uncached`."""
        key = (id(ref.obj), ref.offset)
        hit = self._canon_cache.get(key)
        if hit is None:
            hit = (ref.obj, self._canon_offset_ref_uncached(ref))
            self._canon_cache[key] = hit
        return hit[1]

    def _canon_offset_ref_uncached(self, ref: OffsetRef) -> Optional[OffsetRef]:
        """Canonicalize an offset reference; ``None`` when out of bounds.

        Folds array offsets to the representative element and drops
        references beyond the outermost object's storage (an access there
        is undefined behaviour, and — per the paper's model — offsets are
        always taken within the outermost containing object).

        Heap objects are *open-ended*: their declared type is only the
        best-known view of the block (e.g. the generic header a custom
        allocator returns), and the actual allocation may be larger — the
        ``p = (struct variant *)alloc_node(size)`` idiom.  Offsets beyond
        the view keep their raw value instead of being dropped.
        """
        t = ref.obj.type
        if ref.offset < 0:
            return None
        if not ref.obj.is_heap:
            try:
                limit = max(self.layout.sizeof(t), 1)
            except LayoutError:
                limit = None
            if limit is not None and ref.offset >= limit:
                return None
        return self.canon_ref(OffsetRef(ref.obj, self.layout.canonical_offset(t, ref.offset)))

    # ------------------------------------------------------------------
    def describe_call(self, call) -> str:
        base = super().describe_call(call)
        if call.kind == "lookup":
            why = (
                "byte-offset arithmetic n = k + offsetof(τ, α) under the "
                "configured layout; array offsets fold to the "
                "representative element (§4.2.2, non-portable)"
            )
        else:
            why = (
                "a sizeof(τ)-byte window pairing every byte of the copy, "
                "matched lazily against extant source facts (§4.2.2)"
            )
        return f"{base} — {why}"

    # ------------------------------------------------------------------
    def all_refs(self, obj: AbstractObject) -> List[Ref]:
        try:
            offs = self.layout.subfield_offsets(obj.type)
        except LayoutError:
            offs = [0]
        return [self.canon_ref(OffsetRef(obj, o)) for o in offs]
