"""The paper's contribution: the tunable pointer-analysis framework.

- :class:`~repro.core.strategy.Strategy` — the (normalize, lookup, resolve)
  triple that parameterizes the framework;
- the four instances: :class:`~repro.core.collapse_always.CollapseAlways`,
  :class:`~repro.core.collapse_on_cast.CollapseOnCast`,
  :class:`~repro.core.common_initial_sequence.CommonInitialSequence`,
  :class:`~repro.core.offsets.Offsets`;
- :class:`~repro.core.engine.Engine` / :func:`~repro.core.engine.analyze` —
  the worklist fixpoint over the five inference rules;
- :data:`ALL_STRATEGIES` — factory list used by benchmarks and examples.
"""

from typing import Callable, Dict, List, Optional

from ..ctype.layout import Layout
from .collapse_always import CollapseAlways
from .collapse_on_cast import CollapseOnCast
from .common_initial_sequence import CommonInitialSequence
from .engine import AnalysisBudgetExceeded, Engine, EngineStats, Result, analyze
from .facts import FactBase
from .interproc import SummaryRegistry
from .offsets import Offsets
from .strategy import CallInfo, ResolveResult, Strategy, Window
from .strided import StridedOffsets

#: Constructors of the four instances, in the paper's precision order.
ALL_STRATEGIES: List[Callable[[Optional[Layout]], Strategy]] = [
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Offsets,
]

#: key → constructor, for CLIs and benchmarks.  Includes the strided
#: extension strategy, which is not part of the paper's four instances.
STRATEGY_BY_KEY: Dict[str, Callable[[Optional[Layout]], Strategy]] = {
    cls.key: cls for cls in ALL_STRATEGIES
}
STRATEGY_BY_KEY[StridedOffsets.key] = StridedOffsets

__all__ = [
    "ALL_STRATEGIES",
    "AnalysisBudgetExceeded",
    "CallInfo",
    "CollapseAlways",
    "CollapseOnCast",
    "CommonInitialSequence",
    "Engine",
    "EngineStats",
    "FactBase",
    "Offsets",
    "ResolveResult",
    "Result",
    "STRATEGY_BY_KEY",
    "Strategy",
    "SummaryRegistry",
    "Window",
    "analyze",
]
