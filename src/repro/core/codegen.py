"""Codegen-specialized propagation: a drain compiled per (strategy, shape).

The per-pop drains (:mod:`repro.core.worklist`,
:class:`~repro.core.backend.DiffPropBackend`) pay Python dispatch on
every hop: a method call to pop the worklist, a method call per edge
union, and a closure call per delivered pointee.  None of that dispatch
is *data* — for a given engine it is fully determined by two static
facts, the worklist policy class and whether the strategy can ever
install byte windows.  This module exploits that by *generating* the
drain as flat Python source specialized to those facts:

- the worklist pop/enqueue is unrolled into direct heap/deque and
  pending-dict operations for the known policy class (no ``pop``/
  ``enqueue`` method calls);
- ``FactBase.add_bits`` is inlined into the copy-edge loop (the bitset
  union, the gain accounting, and the first-fact registration);
- attribute and bound-method lookups are hoisted into function locals
  once per drain call;
- subscription delivery is dispatched through the *descriptors* carried
  by each subscription entry (:mod:`repro.core.rules`): the Figure-2
  rule cases become a jump table of inline branches that probe the
  engine's fused memos (``_lookup_bits``/``_resolve_done``/
  ``_refs_bits``) directly — the memo-hit path never leaves the
  generated function, and only memo misses re-enter the engine's
  slow-path methods (which also own every Figure-3 counter bump on
  that path, so counters stay byte-identical);
- difference-propagation frontiers (per edge / window match /
  subscriber list, exactly :class:`~repro.core.backend.DiffPropBackend`'s)
  suppress re-sent bits at the source.

The generated source is compiled once via :func:`compile`/``exec`` and
cached by **content key** — the source text itself — so engines (and
:class:`~repro.session.AnalysisSession` re-solves) sharing a (policy,
windows) shape share one code object, while a different shape
recompiles.  Generation is itself cached per shape, so the steady-state
cost of :func:`compiled_drain` is two dict probes.

The ``accel`` seam
------------------

:class:`AccelBackend` auto-detects an *optionally built* compiled
module (``repro.core._accel``, produced by ``tools/build_accel.py``
from this generator's output via mypyc or Cython) exporting the same
``drain(eng, edge_sent, win_sent, sub_sent)`` entrypoint, guarded by an
``ACCEL_API_VERSION`` handshake.  When the module is absent or its API
version disagrees, the backend silently falls back to the generated-
Python drain above — same fixpoint, same counters, just interpreted.
``stats.accel_active`` reports which path ran (never gated).

Like every backend, none of this can change the analysis: the
differential matrix in ``tests/test_backends.py`` and the byte-exact
``bench --check-baseline`` gate pin codegen and accel to the bigint
fixpoint.  ``trace=True`` never reaches this module (tracing forces the
bigint backend at engine construction).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, Optional, Tuple

from ..ir.refs import OffsetRef
from .worklist import FifoWorklist, PriorityWorklist

__all__ = [
    "generate_drain_source",
    "drain_key",
    "compiled_drain",
    "dispatch_novel",
    "CodegenBackend",
    "AccelBackend",
    "load_accel",
    "ACCEL_API_VERSION",
]

#: Handshake between :func:`load_accel` and a built ``_accel`` module.
#: Bump whenever the drain entrypoint signature or the subscription /
#: descriptor layout changes; a stale compiled module is then ignored
#: (fallback to generated Python) instead of miscomputing.
ACCEL_API_VERSION = 1


# ----------------------------------------------------------------------
# Source generation.
# ----------------------------------------------------------------------

#: Worklist-policy specializations the generator knows how to unroll.
#: Anything else (a user-supplied policy object) gets the "generic"
#: variant, which drives the policy through its pop/enqueue methods.
_POLICIES = ("priority", "fifo", "generic")


def _enqueue_src(policy: str, rep: str, bits: str, indent: str) -> str:
    """The inlined ``worklist.enqueue(rep, bits)`` for ``policy``."""
    if policy == "generic":
        return f"{indent}enqueue({rep}, {bits})\n"
    push = (
        f"heappush(heap, {rep})" if policy == "priority"
        else f"queue_append({rep})"
    )
    return (
        f"{indent}_pc = pending_get({rep})\n"
        f"{indent}if _pc is None:\n"
        f"{indent}    pending[{rep}] = {bits}\n"
        f"{indent}    {push}\n"
        f"{indent}else:\n"
        f"{indent}    pending[{rep}] = _pc | {bits}\n"
    )


def _pop_src(policy: str) -> str:
    """The inlined ``worklist.pop(find)`` loop head for ``policy``."""
    if policy == "generic":
        return (
            "        item = wl_pop(find)\n"
            "        if item is None:\n"
            "            return\n"
            "        rep, delta = item\n"
        )
    first = (
        "            raw = heappop(heap)\n" if policy == "priority"
        else "            raw = queue_popleft()\n"
    )
    cond = "heap" if policy == "priority" else "queue"
    return (
        f"        while {cond}:\n"
        f"{first}"
        "            delta = pending_pop(raw, 0)\n"
        "            rep = parent[raw]\n"
        "            if parent[rep] != rep:\n"
        "                rep = find(rep)\n"
        "            if rep != raw:\n"
        "                delta |= pending_pop(rep, 0)\n"
        "            if delta:\n"
        "                break\n"
        "        else:\n"
        "            return\n"
    )


def generate_drain_source(policy: str, windows: bool) -> str:
    """Flat drain source for a (worklist policy, windows-possible) shape.

    The emitted function has the fixed signature
    ``drain(eng, edge_sent, win_sent, sub_sent)`` — the three frontier
    dicts are the backend's per-engine state, passed in so the code
    object itself is engine-free and shareable.
    """
    if policy not in _POLICIES:
        raise ValueError(
            f"unknown worklist policy {policy!r}; known: {_POLICIES}"
        )
    head = [
        "def drain(eng, edge_sent, win_sent, sub_sent):\n",
        "    graph = eng.graph\n",
        "    wl = eng.worklist\n",
        "    facts = graph.facts\n",
        "    find = facts.find\n",
        "    adj = graph.copy_adj\n",
        "    subs = graph.subs\n",
        "    stats = eng.stats\n",
        "    account = eng._account\n",
        "    maybe_collapse = eng._maybe_collapse\n",
        "    lcd_done = graph.lcd_done\n",
        "    fadd_bits = facts.add_bits\n",
        "    pts = facts._pts\n",
        "    parent = facts._parent\n",
        "    refs = facts._refs\n",
        "    members = facts._members\n",
        "    register = facts._register\n",
        "    lookup_bits_get = eng._lookup_bits.get\n",
        "    resolve_done_get = eng._resolve_done.get\n",
        "    refs_bits_get = eng._refs_bits.get\n",
        "    lookup_add_bits = eng._lookup_add_bits\n",
        "    resolve_install = eng._resolve_install\n",
        "    add_refs_bits = eng._add_refs_bits\n",
        "    arith_refs = eng.strategy.arith_refs\n",
        "    edge_sent_get = edge_sent.get\n",
        "    sub_sent_get = sub_sent.get\n",
        "    adj_get = adj.get\n",
        "    subs_get = subs.get\n",
    ]
    if policy == "generic":
        head += [
            "    wl_pop = wl.pop\n",
            "    enqueue = wl.enqueue\n",
        ]
    else:
        head += [
            "    pending = wl._pending\n",
            "    pending_get = pending.get\n",
            "    pending_pop = pending.pop\n",
        ]
        if policy == "priority":
            head.append("    heap = wl._heap\n")
        else:
            head += [
                "    queue = wl._queue\n",
                "    queue_popleft = queue.popleft\n",
                "    queue_append = queue.append\n",
            ]
    if windows:
        head += [
            "    windows = graph.windows\n",
            "    windows_get = windows.get\n",
            # getattr with default: the ahead-of-time accel build uses
            # the generic+windows superset drain for *every* strategy,
            # and only the Offsets family defines canon_offset_ref
            # (windows stays empty otherwise, so canon is never called).
            "    canon = getattr(eng.strategy, 'canon_offset_ref', None)\n",
            "    intern = facts.intern\n",
            "    win_sent_get = win_sent.get\n",
            "    eng_add_bits = eng._add_bits\n",
        ]
    body = ["    while True:\n", _pop_src(policy)]
    # -- copy edges: diffprop frontier + inlined add_bits/enqueue ------
    body.append(
        "        edges = adj_get(rep)\n"
        "        if edges:\n"
        "            for tid in tuple(edges):\n"
        "                rt = parent[tid]\n"
        "                if parent[rt] != rt:\n"
        "                    rt = find(rt)\n"
        "                if rt == rep:\n"
        "                    stats.props_saved += 1\n"
        "                    continue\n"
        "                key = (rep << 21) | tid if tid < 2097152 else (rep, tid)\n"
        "                sent = edge_sent_get(key, 0)\n"
        "                send = delta & ~sent\n"
        "                if not send:\n"
        "                    stats.props_saved += 1\n"
        "                    stats.frontier_bits_suppressed += delta.bit_count()\n"
        "                    # lcd_mark's dedup probe, inlined: an already-\n"
        "                    # marked pair makes _maybe_collapse a no-op\n"
        "                    # (rep unchanged), so skip the call and find.\n"
        "                    if (rep, rt) not in lcd_done and pts[rep] == pts[rt]:\n"
        "                        maybe_collapse(rep, rt)\n"
        "                        rep = find(rep)\n"
        "                    continue\n"
        "                if send != delta:\n"
        "                    stats.frontier_bits_suppressed += (delta & sent).bit_count()\n"
        "                edge_sent[key] = sent | send\n"
        "                # facts.add_bits(tid, send), inlined (rt is tid's\n"
        "                # representative, recomputed above).\n"
        "                cur = pts[rt]\n"
        "                new = send & ~cur\n"
        "                if new:\n"
        "                    pts[rt] = cur | new\n"
        "                    gain = new.bit_count() * len(members[rt])\n"
        "                    facts._count += gain\n"
        "                    if not cur:\n"
        "                        register(rt)\n"
        "                    account(gain)\n"
        + _enqueue_src(policy, "rt", "new", "                    ")
        + "                else:\n"
        "                    if (rep, rt) not in lcd_done and pts[rep] == pts[rt]:\n"
        "                        maybe_collapse(rep, rt)\n"
        "                        rep = find(rep)\n"
        "        rep = find(rep)\n"
    )
    # -- windows (only for strategies that can install them) -----------
    if windows:
        body.append(
            "        if windows:\n"
            "            for m in tuple(members[rep]):\n"
            "                ref = refs[m]\n"
            "                if type(ref) is OffsetRef:\n"
            "                    index = windows_get(ref.obj)\n"
            "                    if index is not None:\n"
            "                        off = ref.offset\n"
            "                        for lo, dobj, dbase in index.matches(off):\n"
            "                            wkey = (m, lo, dobj, dbase)\n"
            "                            wsent = win_sent_get(wkey, 0)\n"
            "                            wsend = delta & ~wsent\n"
            "                            if not wsend:\n"
            "                                stats.frontier_bits_suppressed += delta.bit_count()\n"
            "                                continue\n"
            "                            if wsend != delta:\n"
            "                                stats.frontier_bits_suppressed += (delta & wsent).bit_count()\n"
            "                            win_sent[wkey] = wsent | wsend\n"
            "                            dref = canon(OffsetRef(dobj, dbase + (off - lo)))\n"
            "                            if dref is not None:\n"
            "                                eng_add_bits(intern(dref), wsend)\n"
        )
    # -- subscriptions: frontier + descriptor jump table ---------------
    e = _enqueue_src(policy, "landed", "new", " " * 44)
    body.append(
        "        cbs = subs_get(rep)\n"
        "        if cbs:\n"
        "            skey = id(cbs)\n"
        "            ent = sub_sent_get(skey)\n"
        "            ssent = ent[1] if ent is not None and ent[0] is cbs else 0\n"
        "            ssend = delta & ~ssent\n"
        "            if ssend != delta:\n"
        "                stats.frontier_bits_suppressed += (delta & ssent).bit_count()\n"
        "            if ssend:\n"
        "                sub_sent[skey] = (cbs, ssent | ssend)\n"
        "                items = []\n"
        "                bits = ssend\n"
        "                while bits:\n"
        "                    low = bits & -bits\n"
        "                    rid = low.bit_length() - 1\n"
        "                    items.append((rid, refs[rid]))\n"
        "                    bits ^= low\n"
        "                for entry in cbs:\n"
        "                    seen = entry[0]\n"
        "                    desc = entry[2]\n"
        "                    if desc is None:\n"
        "                        cb = entry[1]\n"
        "                        for did, dst in items:\n"
        "                            if did not in seen:\n"
        "                                seen.add(did)\n"
        "                                cb(dst)\n"
        "                        continue\n"
        "                    kind = desc[0]\n"
        "                    if kind == 4:\n"
        "                        _k, pkey, lhs_ref, lhs_type = desc\n"
        "                        for did, dst in items:\n"
        "                            if did not in seen:\n"
        "                                seen.add(did)\n"
        "                                stats.rule4_firings += 1\n"
        "                                mkey = pkey | did if did < 2097152 else (pkey, did)\n"
        "                                ment = resolve_done_get(mkey)\n"
        "                                if ment is None:\n"
        "                                    resolve_install(pkey, lhs_ref, dst, lhs_type, dst)\n"
        "                                else:\n"
        "                                    stats.resolve_calls += 1\n"
        "                                    if ment[0]:\n"
        "                                        stats.resolve_struct_calls += 1\n"
        "                                        if ment[1]:\n"
        "                                            stats.resolve_mismatch_calls += 1\n"
        "                    elif kind == 5:\n"
        "                        _k, pkey, rhs_ref, tau_p = desc\n"
        "                        for did, dst in items:\n"
        "                            if did not in seen:\n"
        "                                seen.add(did)\n"
        "                                stats.rule5_firings += 1\n"
        "                                mkey = pkey | did if did < 2097152 else (pkey, did)\n"
        "                                ment = resolve_done_get(mkey)\n"
        "                                if ment is None:\n"
        "                                    resolve_install(pkey, dst, rhs_ref, tau_p, dst)\n"
        "                                else:\n"
        "                                    stats.resolve_calls += 1\n"
        "                                    if ment[0]:\n"
        "                                        stats.resolve_struct_calls += 1\n"
        "                                        if ment[1]:\n"
        "                                            stats.resolve_mismatch_calls += 1\n"
        "                    elif kind == 2:\n"
        "                        _k, lhs_id, pkey, tau_p, path = desc\n"
        "                        for did, dst in items:\n"
        "                            if did not in seen:\n"
        "                                seen.add(did)\n"
        "                                stats.rule2_firings += 1\n"
        "                                mkey = pkey | did if did < 2097152 else (pkey, did)\n"
        "                                ment = lookup_bits_get(mkey)\n"
        "                                if ment is None:\n"
        "                                    lookup_add_bits(lhs_id, pkey, tau_p, path, dst)\n"
        "                                else:\n"
        "                                    stats.lookup_calls += 1\n"
        "                                    if ment[1]:\n"
        "                                        stats.lookup_struct_calls += 1\n"
        "                                        if ment[2]:\n"
        "                                            stats.lookup_mismatch_calls += 1\n"
        "                                    lbits = ment[0]\n"
        "                                    if lbits:\n"
        "                                        new, gain, landed = fadd_bits(lhs_id, lbits)\n"
        "                                        if gain:\n"
        "                                            account(gain)\n"
        + e
        + "                    else:  # kind == 6: pointer arithmetic, optimistic\n"
        "                        lhs_id = desc[1]\n"
        "                        for did, dst in items:\n"
        "                            if did not in seen:\n"
        "                                seen.add(did)\n"
        "                                arefs = arith_refs(dst)\n"
        "                                rent = refs_bits_get(id(arefs))\n"
        "                                if rent is not None and rent[0] is arefs:\n"
        "                                    abits = rent[1]\n"
        "                                    if abits:\n"
        "                                        new, gain, landed = fadd_bits(lhs_id, abits)\n"
        "                                        if gain:\n"
        "                                            account(gain)\n"
        + e
        + "                                else:\n"
        "                                    add_refs_bits(lhs_id, arefs)\n"
    )
    return "".join(head) + "".join(body)


# ----------------------------------------------------------------------
# Compile cache.
# ----------------------------------------------------------------------

#: Shape -> generated source (generation cache).
_SOURCE_CACHE: Dict[Tuple[str, bool], str] = {}
#: Source text -> compiled drain function (the content-key cache: two
#: shapes that happen to generate identical source share a code object).
_COMPILED: Dict[str, Callable] = {}


def drain_key(eng) -> Tuple[str, bool]:
    """The specialization key for ``eng``: (policy name, windows shape).

    The policy name is the exact worklist class ("generic" for a policy
    the generator does not know, driven through its methods); the
    windows flag is whether the strategy can ever install byte windows
    (only the Offsets family defines ``canon_offset_ref``) — a static
    property, so a windows-free strategy gets a drain with the whole
    windows block elided rather than a dead runtime check.
    """
    wl = type(eng.worklist)
    if wl is PriorityWorklist:
        policy = "priority"
    elif wl is FifoWorklist:
        policy = "fifo"
    else:
        policy = "generic"
    return policy, hasattr(eng.strategy, "canon_offset_ref")


def compiled_drain(key: Tuple[str, bool]) -> Callable:
    """The compiled drain for a shape key (cached at both layers)."""
    src = _SOURCE_CACHE.get(key)
    if src is None:
        src = _SOURCE_CACHE[key] = generate_drain_source(*key)
    fn = _COMPILED.get(src)
    if fn is None:
        ns = {
            "heappop": heappop,
            "heappush": heappush,
            "OffsetRef": OffsetRef,
        }
        code = compile(
            src,
            f"<codegen-drain:{key[0]}:{'windows' if key[1] else 'plain'}>",
            "exec",
        )
        exec(code, ns)  # noqa: S102 - compiling our own generated source
        fn = _COMPILED[src] = ns["drain"]
    return fn


# ----------------------------------------------------------------------
# Descriptor dispatch for external callers (numpy fused rounds).
# ----------------------------------------------------------------------

def dispatch_novel(eng, entry, items) -> None:
    """Deliver decoded ``(ID, ref)`` items to one subscription entry,
    all known to be novel (absent from the entry's seen-set).

    The numpy backend's fused rounds compute novelty as a bitmask
    difference over the whole pending batch, so the per-item seen-set
    membership probe is already decided; this helper performs the same
    descriptor dispatch as the generated drains' jump table (identical
    counters, memo probes, and slow-path delegation), minus the probe.
    The seen-set is still updated — it stays the source of truth for
    every other drain variant.
    """
    seen = entry[0]
    desc = entry[2]
    stats = eng.stats
    if desc is None:
        cb = entry[1]
        for did, dst in items:
            seen.add(did)
            cb(dst)
        return
    kind = desc[0]
    if kind == 4:
        _k, pkey, lhs_ref, lhs_type = desc
        resolve_done_get = eng._resolve_done.get
        for did, dst in items:
            seen.add(did)
            stats.rule4_firings += 1
            mkey = pkey | did if did < 2097152 else (pkey, did)
            ment = resolve_done_get(mkey)
            if ment is None:
                eng._resolve_install(pkey, lhs_ref, dst, lhs_type, dst)
            else:
                stats.resolve_calls += 1
                if ment[0]:
                    stats.resolve_struct_calls += 1
                    if ment[1]:
                        stats.resolve_mismatch_calls += 1
    elif kind == 5:
        _k, pkey, rhs_ref, tau_p = desc
        resolve_done_get = eng._resolve_done.get
        for did, dst in items:
            seen.add(did)
            stats.rule5_firings += 1
            mkey = pkey | did if did < 2097152 else (pkey, did)
            ment = resolve_done_get(mkey)
            if ment is None:
                eng._resolve_install(pkey, dst, rhs_ref, tau_p, dst)
            else:
                stats.resolve_calls += 1
                if ment[0]:
                    stats.resolve_struct_calls += 1
                    if ment[1]:
                        stats.resolve_mismatch_calls += 1
    elif kind == 2:
        _k, lhs_id, pkey, tau_p, path = desc
        lookup_bits_get = eng._lookup_bits.get
        facts = eng.facts
        account = eng._account
        enqueue = eng._enqueue
        for did, dst in items:
            seen.add(did)
            stats.rule2_firings += 1
            mkey = pkey | did if did < 2097152 else (pkey, did)
            ment = lookup_bits_get(mkey)
            if ment is None:
                eng._lookup_add_bits(lhs_id, pkey, tau_p, path, dst)
            else:
                stats.lookup_calls += 1
                if ment[1]:
                    stats.lookup_struct_calls += 1
                    if ment[2]:
                        stats.lookup_mismatch_calls += 1
                lbits = ment[0]
                if lbits:
                    new, gain, landed = facts.add_bits(lhs_id, lbits)
                    if gain:
                        account(gain)
                        enqueue(landed, new)
    else:  # kind == 6: pointer arithmetic, optimistic mode
        lhs_id = desc[1]
        arith_refs = eng.strategy.arith_refs
        refs_bits_get = eng._refs_bits.get
        facts = eng.facts
        account = eng._account
        enqueue = eng._enqueue
        for did, dst in items:
            seen.add(did)
            arefs = arith_refs(dst)
            rent = refs_bits_get(id(arefs))
            if rent is not None and rent[0] is arefs:
                abits = rent[1]
                if abits:
                    new, gain, landed = facts.add_bits(lhs_id, abits)
                    if gain:
                        account(gain)
                        enqueue(landed, new)
            else:
                eng._add_refs_bits(lhs_id, arefs)


# ----------------------------------------------------------------------
# Backends.
# ----------------------------------------------------------------------

class CodegenBackend:
    """Propagation through the generated, shape-specialized drain.

    Holds the same per-engine frontier state as
    :class:`~repro.core.backend.DiffPropBackend` (the generated code
    embeds the identical difference-propagation logic); the compiled
    function itself is shared across engines via the module-level
    content-key cache.
    """

    name = "codegen"

    def __init__(self) -> None:
        self._edge_sent: Dict = {}
        self._win_sent: Dict = {}
        self._sub_sent: Dict = {}
        self._fn: Optional[Callable] = None

    def drain(self, eng) -> None:
        fn = self._fn
        if fn is None:
            # The shape (worklist class, strategy capability) is fixed
            # for an engine's lifetime, so resolve the specialization
            # once per backend instance (= once per engine).
            fn = self._fn = compiled_drain(drain_key(eng))
        fn(eng, self._edge_sent, self._win_sent, self._sub_sent)


_accel_module = None
_accel_checked = False


def load_accel():
    """The optionally built compiled drain module, or None.

    Probes ``repro.core._accel`` (built by ``tools/build_accel.py``)
    once and caches the outcome; a module with a mismatched
    ``ACCEL_API_VERSION`` is treated as absent.  Tests monkeypatch this
    function to exercise both sides of the seam without a compiler.
    """
    global _accel_module, _accel_checked
    if not _accel_checked:
        mod = None
        try:
            from . import _accel as mod  # type: ignore[attr-defined] # noqa: PLC0415
        except Exception:  # pragma: no cover - depends on a built module
            mod = None
        if mod is not None and getattr(
            mod, "ACCEL_API_VERSION", None
        ) != ACCEL_API_VERSION:  # pragma: no cover - stale build
            mod = None
        _accel_module = mod
        _accel_checked = True
    return _accel_module


class AccelBackend(CodegenBackend):
    """The accel seam: compiled drain module if built, codegen if not.

    The compiled module exports the same
    ``drain(eng, edge_sent, win_sent, sub_sent)`` entrypoint the
    generator emits (it *is* the generator's "generic"+windows superset
    output, compiled ahead of time), so the two paths are behaviorally
    interchangeable; ``stats.accel_active`` records which one ran.
    """

    name = "accel"

    def drain(self, eng) -> None:
        mod = load_accel()
        if mod is not None:
            eng.stats.accel_active = 1
            mod.drain(eng, self._edge_sent, self._win_sent, self._sub_sent)
            return
        super().drain(eng)
