"""Library-function summaries for the context-insensitive call layer.

The paper handles calls to library functions "by providing summaries of
the potential pointer assignments in each library function" (§5, using the
summaries of [WL95]).  We do the same for the libc subset our benchmark
suite exercises.  A summary is a callback that installs propagation edges
on the engine when a call to an *undefined* (extern) function is bound.

Allocation functions (``malloc`` and friends) never reach this layer: the
front end rewrites them into address-of assignments on allocation-site
pseudo-variables (paper §2), so the analysis sees ``p = &malloc_i``.

Unknown externals get the default summary: the return value may point to
whatever the pointer arguments point to (a standard, mildly optimistic
treatment — an unknown library routine returning one of its arguments —
chosen because all externs in the shipped suite are explicitly
summarized).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from ..ir.refs import Ref
from ..ir.stmts import Call

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["SummaryRegistry"]

SummaryFn = Callable[["Engine", Call], None]


def _ret_gets_arg(which: int) -> SummaryFn:
    """Return value aliases argument ``which`` (strcpy, strchr, fgets, ...)."""

    def summary(engine: "Engine", call: Call) -> None:
        if call.lhs is None or which >= len(call.args):
            return
        engine.install_copy_edge(
            engine.norm_obj(call.args[which]), engine.norm_obj(call.lhs)
        )

    return summary


def _noop(engine: "Engine", call: Call) -> None:
    """No pointer effects (printf, free, memset, atoi, ...)."""


def _memcpy(engine: "Engine", call: Call) -> None:
    """``memcpy(dst, src, n)`` — copy facts between the pointed-to blocks.

    The byte count is rarely a static constant, so the copy is treated as
    covering the whole destination object: for each (destination pointee,
    source pointee) pair, a resolve-style copy with the destination
    object's declared type as the copied type.  This is the library-call
    analogue of rule 5 and reuses the strategy's ``resolve``.
    """
    if len(call.args) < 2:
        return
    dst_arg, src_arg = call.args[0], call.args[1]

    def on_pair(d: Ref, s: Ref) -> None:
        res, _info = engine.strategy.resolve(d, s, d.obj.type)
        engine.install_resolve_result(res)

    engine.cross_subscribe(engine.norm_obj(dst_arg), engine.norm_obj(src_arg), on_pair)
    if call.lhs is not None:
        engine.install_copy_edge(engine.norm_obj(dst_arg), engine.norm_obj(call.lhs))


def _qsort(engine: "Engine", call: Call) -> None:
    """``qsort(base, n, size, cmp)`` — the comparator receives pointers
    into the array ``base`` points to."""
    if len(call.args) < 4:
        return
    base_arg, cmp_arg = call.args[0], call.args[3]

    def on_pair(f: Ref, t: Ref) -> None:
        from ..ir.objects import ObjKind

        if f.obj.kind is not ObjKind.FUNCTION:
            return
        info = engine.program.function_for_object(f.obj)
        if info is None:
            return
        for param in info.params[:2]:
            for r in engine.strategy.cached_all_refs(t.obj):
                engine.add_fact(engine.norm_obj(param), r)

    engine.cross_subscribe(engine.norm_obj(cmp_arg), engine.norm_obj(base_arg), on_pair)


def _bsearch(engine: "Engine", call: Call) -> None:
    """``bsearch(key, base, n, size, cmp)`` — like qsort, plus the result
    points into the array."""
    if len(call.args) < 5:
        return
    key_arg, base_arg, cmp_arg = call.args[0], call.args[1], call.args[4]

    def on_pair(f: Ref, t: Ref) -> None:
        from ..ir.objects import ObjKind

        if f.obj.kind is not ObjKind.FUNCTION:
            return
        info = engine.program.function_for_object(f.obj)
        if info is None:
            return
        for param, src in zip(info.params[:2], (key_arg, base_arg)):
            engine.install_copy_edge(engine.norm_obj(src), engine.norm_obj(param))

    engine.cross_subscribe(engine.norm_obj(cmp_arg), engine.norm_obj(base_arg), on_pair)
    if call.lhs is not None:
        engine.install_copy_edge(engine.norm_obj(base_arg), engine.norm_obj(call.lhs))


def _default(engine: "Engine", call: Call) -> None:
    """Unknown extern: the result may alias any pointer argument."""
    if call.lhs is None:
        return
    lhs_ref = engine.norm_obj(call.lhs)
    for arg in call.args:
        engine.install_copy_edge(engine.norm_obj(arg), lhs_ref)


class SummaryRegistry:
    """Name → summary mapping, with a default for unknown externs."""

    def __init__(self) -> None:
        self._table: Dict[str, SummaryFn] = {}
        self._default: SummaryFn = _default

    def register(self, name: str, fn: SummaryFn) -> None:
        self._table[name] = fn

    def apply(self, engine: "Engine", call: Call, name: str) -> None:
        self._table.get(name, self._default)(engine, call)

    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "SummaryRegistry":
        """The stock libc summary table used by the benchmark suite."""
        reg = cls()
        ret0 = _ret_gets_arg(0)
        for name in (
            "strcpy", "strncpy", "strcat", "strncat", "memset", "memchr",
            "strchr", "strrchr", "strstr", "strpbrk", "strtok", "fgets",
            "gets", "index", "rindex",
        ):
            reg.register(name, ret0)
        for name in ("memcpy", "memmove", "bcopy"):
            reg.register(name, _memcpy)
        reg.register("qsort", _qsort)
        reg.register("bsearch", _bsearch)
        for name in (
            "printf", "fprintf", "sprintf", "snprintf", "vprintf", "puts",
            "putchar", "putc", "fputc", "fputs", "fwrite", "fread", "free",
            "exit", "abort", "atexit", "atoi", "atol", "atof", "strtol",
            "strtoul", "strtod", "strcmp", "strncmp", "strcasecmp",
            "memcmp", "strlen", "strspn", "strcspn", "isalpha", "isdigit",
            "isspace", "isupper", "islower", "toupper", "tolower", "abs",
            "labs", "rand", "srand", "time", "clock", "getchar", "getc",
            "fgetc", "ungetc", "fclose", "fflush", "fseek", "ftell",
            "rewind", "feof", "ferror", "perror", "remove", "rename",
            "scanf", "fscanf", "sscanf", "assert", "qsort_r", "longjmp",
            "setjmp", "signal", "raise", "system", "sqrt", "pow", "floor",
            "ceil", "fabs", "log", "exp", "sin", "cos", "tan",
        ):
            reg.register(name, _noop)
        for name in ("fopen", "freopen", "tmpfile", "fdopen", "opendir"):
            # Stream handles: a fresh unnamed block per call is what malloc
            # handling would do; the suite never dereferences FILE*, so the
            # result is simply left pointing at nothing.
            reg.register(name, _noop)
        reg.register("getenv", _noop)
        return reg
