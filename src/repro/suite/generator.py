"""Seeded random C-program generator.

Used for stress testing, scaling benchmarks, and property-based testing.
Given a :class:`GenConfig` and a seed, :func:`generate_program` emits a
self-contained C translation unit (parsable by the front end) containing:

- a family of struct types, some sharing common initial sequences with
  one another (so the "Common Initial Sequence" strategy has something to
  exploit) and some not;
- global variables of scalar, pointer, and struct types;
- a straight-line ``main`` performing address-of assignments, field
  reads/writes, loads/stores through pointers, struct block copies, and —
  with configurable probability — casts between struct types;
- optionally, helper functions called from ``main``.

Generation is deterministic for a given seed.  In the default
configuration the generator never emits pointer arithmetic or loops, so
the straight-line semantics can be executed exactly by
:mod:`repro.testing.interpreter`, which the property tests use as a
soundness oracle.

With ``adversarial=True`` the generator deliberately leaves that
executable subset and stresses the never-crash guarantee instead:
unions, pointer arithmetic, casts between incompatible scalars, deeply
nested and recursive struct types, zero-field structs, function
pointers, indirect and varargs-ish calls.  Adversarial programs are for
the crash-fuzz campaign (:mod:`repro.suite.fuzz`) — lenient mode must
analyze them without an unhandled exception, strict mode must either
succeed or raise a structured diagnostic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["GenConfig", "ADVERSARIAL", "generate_program"]


@dataclass(frozen=True)
class GenConfig:
    """Tunable knobs for the generator."""

    n_structs: int = 4
    max_fields: int = 4
    n_scalars: int = 6
    n_pointers: int = 6
    n_struct_vars: int = 4
    n_statements: int = 40
    cast_probability: float = 0.3
    #: Probability that a new struct reuses a prefix of an earlier one
    #: (creating a common initial sequence).
    cis_probability: float = 0.5
    n_helper_functions: int = 0
    #: Stress mode: also emit unions, pointer arithmetic, incompatible
    #: scalar casts, recursive/zero-field structs, function pointers and
    #: varargs calls.  Programs stay parsable but leave the subset the
    #: concrete interpreter can execute.
    adversarial: bool = False
    #: Probability (adversarial mode) that a statement slot draws from
    #: the adversarial construct pool instead of the benign one.
    adversarial_probability: float = 0.4


_SCALAR_TYPES = ["int", "long", "char", "double"]


@dataclass
class _Struct:
    name: str
    #: (field name, field type) with type either a scalar keyword,
    #: "int *", or "struct X".
    fields: List[Tuple[str, str]]


class _Gen:
    def __init__(self, cfg: GenConfig, seed: int) -> None:
        self.cfg = cfg
        self.rng = random.Random(seed)
        self.structs: List[_Struct] = []
        self.scalars: List[str] = []
        self.pointers: List[str] = []       # int * variables
        self.struct_vars: List[Tuple[str, _Struct]] = []
        self.struct_ptrs: List[Tuple[str, _Struct]] = []
        self.lines: List[str] = []
        # Adversarial-mode state.
        self.unions: List[_Struct] = []
        self.union_vars: List[Tuple[str, _Struct]] = []
        self.doubles: List[str] = []
        self.voidptrs: List[str] = []
        self.fptrs: List[str] = []          # int *(*)(int *) variables
        self.has_varargs_helper = False
        self.has_recursive_struct = False

    # ------------------------------------------------------------------
    def gen_structs(self) -> None:
        for i in range(self.cfg.n_structs):
            fields: List[Tuple[str, str]] = []
            if self.structs and self.rng.random() < self.cfg.cis_probability:
                donor = self.rng.choice(self.structs)
                take = self.rng.randint(1, len(donor.fields))
                fields = list(donor.fields[:take])
            want = self.rng.randint(max(len(fields), 1), self.cfg.max_fields)
            while len(fields) < want:
                k = len(fields)
                kind = self.rng.random()
                if kind < 0.5:
                    fields.append((f"f{k}", "int *"))
                elif kind < 0.9:
                    fields.append((f"f{k}", self.rng.choice(_SCALAR_TYPES)))
                elif self.structs:
                    inner = self.rng.choice(self.structs)
                    fields.append((f"f{k}", f"struct {inner.name}"))
                else:
                    fields.append((f"f{k}", "int"))
            self.structs.append(_Struct(f"S{i}", fields))

    def gen_adversarial_types(self) -> None:
        """Unions, a self-referential list struct, and a zero-field struct."""
        rng = self.rng
        n_unions = rng.randint(1, 2)
        for i in range(n_unions):
            fields: List[Tuple[str, str]] = [("u0", "int *"), ("u1", "long")]
            if self.structs and rng.random() < 0.7:
                inner = rng.choice(self.structs)
                fields.append(("u2", f"struct {inner.name}"))
            if rng.random() < 0.5:
                fields.append(("u3", "double"))
            self.unions.append(_Struct(f"U{i}", fields))
        self.has_recursive_struct = True
        self.structs.append(
            _Struct("Rec", [("next", "struct Rec *"), ("payload", "int *")])
        )
        if rng.random() < 0.6:
            self.structs.append(_Struct("Zero", []))

    def emit_structs(self) -> None:
        if self.has_recursive_struct:
            self.lines.append("struct Rec;")
        for s in self.structs:
            self.lines.append(f"struct {s.name} {{")
            for fname, ftype in s.fields:
                if ftype.endswith("*"):
                    self.lines.append(f"    {ftype}{fname};")
                else:
                    self.lines.append(f"    {ftype} {fname};")
            self.lines.append("};")
        for u in self.unions:
            self.lines.append(f"union {u.name} {{")
            for fname, ftype in u.fields:
                if ftype.endswith("*"):
                    self.lines.append(f"    {ftype}{fname};")
                else:
                    self.lines.append(f"    {ftype} {fname};")
            self.lines.append("};")

    def emit_globals(self) -> None:
        for i in range(self.cfg.n_scalars):
            name = f"g{i}"
            self.scalars.append(name)
            self.lines.append(f"int {name};")
        for i in range(self.cfg.n_pointers):
            name = f"p{i}"
            self.pointers.append(name)
            self.lines.append(f"int *{name};")
        for i in range(self.cfg.n_struct_vars):
            s = self.rng.choice(self.structs)
            name = f"sv{i}"
            self.struct_vars.append((name, s))
            self.lines.append(f"struct {s.name} {name};")
            pname = f"sp{i}"
            self.struct_ptrs.append((pname, s))
            self.lines.append(f"struct {s.name} *{pname};")
        if self.cfg.adversarial:
            self.emit_adversarial_globals()

    def emit_adversarial_globals(self) -> None:
        for i, u in enumerate(self.unions):
            name = f"uv{i}"
            self.union_vars.append((name, u))
            self.lines.append(f"union {u.name} {name};")
        for i in range(2):
            name = f"d{i}"
            self.doubles.append(name)
            self.lines.append(f"double {name};")
        for i in range(2):
            name = f"vp{i}"
            self.voidptrs.append(name)
            self.lines.append(f"void *{name};")
        self.fptrs.append("fp0")
        self.lines.append("int *(*fp0)(int *);")

    # ------------------------------------------------------------------
    def _int_ptr_fields(self, s: _Struct) -> List[str]:
        return [f for f, t in s.fields if t == "int *"]

    def _stmt(self) -> Optional[str]:
        """One random statement over the declared variables."""
        rng = self.rng
        kind = rng.randrange(8)
        if kind == 0:
            # p = &scalar
            return f"{rng.choice(self.pointers)} = &{rng.choice(self.scalars)};"
        if kind == 1:
            # struct field write: sv.f = &g  (int* fields only)
            name, s = rng.choice(self.struct_vars)
            fields = self._int_ptr_fields(s)
            if not fields:
                return None
            return f"{name}.{rng.choice(fields)} = &{rng.choice(self.scalars)};"
        if kind == 2:
            # p = sv.f
            name, s = rng.choice(self.struct_vars)
            fields = self._int_ptr_fields(s)
            if not fields:
                return None
            return f"{rng.choice(self.pointers)} = {name}.{rng.choice(fields)};"
        if kind == 3:
            # sp = &sv  (maybe with a cast to a different struct type)
            pname, ps = rng.choice(self.struct_ptrs)
            vname, vs = rng.choice(self.struct_vars)
            if vs is ps:
                return f"{pname} = &{vname};"
            if rng.random() < self.cfg.cast_probability:
                return f"{pname} = (struct {ps.name} *)&{vname};"
            return None
        if kind == 4:
            # field through pointer: sp->f = &g / p = sp->f
            pname, s = rng.choice(self.struct_ptrs)
            fields = self._int_ptr_fields(s)
            if not fields:
                return None
            f = rng.choice(fields)
            if rng.random() < 0.5:
                return f"{pname}->{f} = &{rng.choice(self.scalars)};"
            return f"{rng.choice(self.pointers)} = {pname}->{f};"
        if kind == 5:
            # struct block copy, maybe across types via cast
            (an, as_), (bn, bs) = rng.choice(self.struct_vars), rng.choice(self.struct_vars)
            if an == bn:
                return None
            if as_ is bs:
                return f"{an} = {bn};"
            if rng.random() < self.cfg.cast_probability:
                return f"{an} = *(struct {as_.name} *)&{bn};"
            return None
        if kind == 6:
            # *p = &g through an int** temp is too exotic; plain copy:
            a, b = rng.choice(self.pointers), rng.choice(self.pointers)
            if a == b:
                return None
            return f"{a} = {b};"
        # load/store through struct pointer dereference of whole struct
        pname, s = rng.choice(self.struct_ptrs)
        vname, vs = rng.choice(self.struct_vars)
        if vs is s:
            return f"*{pname} = {vname};"
        return None

    # ------------------------------------------------------------------
    def _adv_stmt(self) -> Optional[str]:
        """One statement from the adversarial construct pool."""
        rng = self.rng
        kind = rng.randrange(12)
        if kind == 0:
            # Pointer arithmetic (Assumption-1 smearing).
            a, b = rng.choice(self.pointers), rng.choice(self.pointers)
            return f"{a} = {b} + {rng.randint(1, 4)};"
        if kind == 1:
            return (f"{rng.choice(self.pointers)} = "
                    f"&{rng.choice(self.scalars)} + {rng.randint(0, 3)};")
        if kind == 2:
            # Casts between incompatible scalars (pointer <-> integer).
            if rng.random() < 0.5:
                return (f"{rng.choice(self.scalars)} = "
                        f"(int)(long){rng.choice(self.pointers)};")
            return (f"{rng.choice(self.pointers)} = "
                    f"(int *)(long){rng.choice(self.scalars)};")
        if kind == 3:
            # Union member traffic.
            if not self.union_vars:
                return None
            name, u = rng.choice(self.union_vars)
            choice = rng.randrange(3)
            if choice == 0:
                return f"{name}.u0 = &{rng.choice(self.scalars)};"
            if choice == 1:
                return f"{rng.choice(self.pointers)} = {name}.u0;"
            return f"{name}.u1 = (long){name}.u0;"
        if kind == 4:
            # Function pointers: take, copy, call indirectly.
            if not self.fptrs:
                return None
            fp = rng.choice(self.fptrs)
            choice = rng.randrange(3)
            if choice == 0:
                return f"{fp} = adv_id;" if rng.random() < 0.5 else f"{fp} = &adv_id;"
            if choice == 1:
                return f"{rng.choice(self.pointers)} = {fp}({rng.choice(self.pointers)});"
            return f"{rng.choice(self.pointers)} = (*{fp})(&{rng.choice(self.scalars)});"
        if kind == 5:
            # Varargs-ish call mixing pointers and scalars.
            return (f"adv_sum(2, {rng.choice(self.pointers)}, "
                    f"&{rng.choice(self.scalars)});")
        if kind == 6:
            # void* laundering.
            if not self.voidptrs:
                return None
            vp = rng.choice(self.voidptrs)
            if rng.random() < 0.5:
                return f"{vp} = {rng.choice(self.pointers)};"
            return f"{rng.choice(self.pointers)} = (int *){vp};"
        if kind == 7:
            # Recursive list: link and walk.
            choice = rng.randrange(3)
            if choice == 0:
                return "rp0 = &r0;"
            if choice == 1:
                return "rp0->next = rp0;"
            return f"{rng.choice(self.pointers)} = rp0->next->payload;"
        if kind == 8:
            # Cast a union (or struct) to an unrelated struct type.
            pname, ps = rng.choice(self.struct_ptrs)
            if self.union_vars and rng.random() < 0.5:
                uname, _ = rng.choice(self.union_vars)
                return f"{pname} = (struct {ps.name} *)&{uname};"
            vname, _ = rng.choice(self.struct_vars)
            return f"{pname} = (struct {ps.name} *)&{vname};"
        if kind == 9:
            # Byte-offset pointer forging through char*.
            pname, _ = rng.choice(self.struct_ptrs)
            return (f"{rng.choice(self.pointers)} = "
                    f"(int *)((char *){pname} + {rng.randint(0, 8)});")
        if kind == 10:
            # Float/int traffic.
            if not self.doubles:
                return None
            if rng.random() < 0.5:
                return f"{rng.choice(self.doubles)} = (double){rng.choice(self.scalars)};"
            return f"{rng.choice(self.scalars)} = (int){rng.choice(self.doubles)};"
        # Ternary with a cast in one arm.
        a, b = rng.choice(self.pointers), rng.choice(self.pointers)
        vp = rng.choice(self.voidptrs) if self.voidptrs else b
        return f"{a} = {rng.choice(self.scalars)} ? {b} : (int *){vp};"

    def emit_main(self) -> None:
        self.lines.append("int main(void) {")
        emitted = 0
        attempts = 0
        adversarial = self.cfg.adversarial
        while emitted < self.cfg.n_statements and attempts < self.cfg.n_statements * 10:
            attempts += 1
            if adversarial and self.rng.random() < self.cfg.adversarial_probability:
                st = self._adv_stmt()
            else:
                st = self._stmt()
            if st is not None:
                self.lines.append("    " + st)
                emitted += 1
        self.lines.append("    return 0;")
        self.lines.append("}")

    def emit_helpers(self) -> None:
        for i in range(self.cfg.n_helper_functions):
            s = self.rng.choice(self.structs)
            fields = self._int_ptr_fields(s)
            if not fields:
                continue
            f = self.rng.choice(fields)
            self.lines.append(
                f"int *get{i}(struct {s.name} *q) {{ return q->{f}; }}"
            )
        if self.cfg.adversarial:
            self.lines.append("int *adv_id(int *q) { return q; }")
            self.lines.append("int adv_sum(int n, ...) { return n; }")
            self.has_varargs_helper = True

    # ------------------------------------------------------------------
    def run(self) -> str:
        self.gen_structs()
        if self.cfg.adversarial:
            self.gen_adversarial_types()
        self.emit_structs()
        self.emit_globals()
        if self.cfg.adversarial:
            self.lines.append("struct Rec r0;")
            self.lines.append("struct Rec *rp0;")
        self.emit_helpers()
        self.emit_main()
        return "\n".join(self.lines) + "\n"


#: Stock adversarial configuration used by the fuzz harness and CI smoke.
ADVERSARIAL = GenConfig(adversarial=True, n_helper_functions=2, n_statements=60)


def generate_program(seed: int, cfg: Optional[GenConfig] = None) -> str:
    """Generate one deterministic random C program."""
    return _Gen(cfg or GenConfig(), seed).run()
