"""Benchmark suite: the 20-program registry and the random generator."""

from .generator import ADVERSARIAL, GenConfig, generate_program
from .registry import (
    SUITE,
    BenchmarkProgram,
    by_name,
    casting_programs,
    load_source,
    nocast_programs,
    program_dir,
)

__all__ = [
    "ADVERSARIAL",
    "BenchmarkProgram",
    "GenConfig",
    "SUITE",
    "by_name",
    "casting_programs",
    "generate_program",
    "load_source",
    "nocast_programs",
    "program_dir",
]
