"""The benchmark-program registry.

The paper evaluates on 20 C programs: GNU utilities, SPEC benchmarks, and
the Landi and Austin benchmark suites, 8 of which use structures only at
their declared types and 12 of which involve structure casting (Figure 3).
Those historical sources are not redistributable here, so the suite ships
20 self-contained stand-ins, written to exercise the same pointer/structure
idioms at smaller scale (see DESIGN.md §4 for the substitution argument):

- the *no-cast* group uses structures, arrays, heap lists, and function
  pointers, always at their declared types;
- the *casting* group exercises generic node headers downcast to concrete
  variants (common-initial-sequence friendly), byte buffers reinterpreted
  as records (CIS-hostile), block copies between struct types, tagged
  unions, custom allocators, and in-struct pointer arithmetic.

Each entry records which group it belongs to, mirroring Figure 3's
partition; the benchmark harness iterates this registry to regenerate
every table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List

__all__ = ["BenchmarkProgram", "SUITE", "casting_programs", "nocast_programs",
           "program_dir", "load_source", "by_name"]


@dataclass(frozen=True)
class BenchmarkProgram:
    """Metadata for one suite program."""

    name: str
    filename: str
    casting: bool
    #: Which historical benchmark family the stand-in imitates.
    family: str
    description: str


SUITE: List[BenchmarkProgram] = [
    # ------------------------------------------------------------- no cast
    BenchmarkProgram(
        "allroots", "allroots.c", False, "Landi",
        "polynomial root finder: arrays of coefficients, pointers into arrays",
    ),
    BenchmarkProgram(
        "fixoutput", "fixoutput.c", False, "Austin",
        "text filter: character buffers and string-library traffic",
    ),
    BenchmarkProgram(
        "anagram", "anagram.c", False, "Austin",
        "anagram finder: hash table of word structs, heap allocation",
    ),
    BenchmarkProgram(
        "ks", "ks.c", False, "Austin",
        "Kernighan-Schweikert graph partitioner: linked node/net structs",
    ),
    BenchmarkProgram(
        "ul", "ul.c", False, "Landi",
        "do-underlining filter: line buffers and mode tables",
    ),
    BenchmarkProgram(
        "ft", "ft.c", False, "Austin",
        "minimum spanning tree: heap-allocated vertices and edge lists",
    ),
    BenchmarkProgram(
        "compress", "compress.c", False, "SPEC",
        "LZW compressor: code tables, no structure casting",
    ),
    BenchmarkProgram(
        "football", "football.c", False, "Landi",
        "league table: array of team structs, in-place insertion sort",
    ),
    # ------------------------------------------------------------- casting
    BenchmarkProgram(
        "bc", "bc.c", True, "GNU",
        "calculator: AST nodes with a common header downcast per tag "
        "(the paper's worst case for Collapse Always)",
    ),
    BenchmarkProgram(
        "less177", "less177.c", True, "GNU",
        "pager: generic doubly-linked buffers cast to typed views",
    ),
    BenchmarkProgram(
        "flex247", "flex247.c", True, "GNU",
        "scanner generator: state/rule records built from a byte-blob "
        "allocator",
    ),
    BenchmarkProgram(
        "twig", "twig.c", True, "Landi",
        "tree pattern matcher: variant tree nodes sharing initial fields",
    ),
    BenchmarkProgram(
        "li", "li.c", True, "SPEC",
        "lisp interpreter: cons cells / symbols / numbers cast via a "
        "generic object header",
    ),
    BenchmarkProgram(
        "ansitape", "ansitape.c", True, "Landi",
        "tape archiver: record headers reinterpreted from raw tape blocks",
    ),
    BenchmarkProgram(
        "assembler", "assembler.c", True, "Landi",
        "two-pass assembler: symbol/opcode entries through a generic "
        "hash table",
    ),
    BenchmarkProgram(
        "simulator", "simulator.c", True, "Landi",
        "machine simulator: instruction words decoded by casting",
    ),
    BenchmarkProgram(
        "loader", "loader.c", True, "Landi",
        "object-file loader: section records parsed from byte buffers",
    ),
    BenchmarkProgram(
        "lex315", "lex315.c", True, "Landi",
        "lexer: token variants with common initial sequence, value unions",
    ),
    BenchmarkProgram(
        "gzip", "gzip.c", True, "SPEC",
        "compressor: huffman tables carved out of a shared arena",
    ),
    BenchmarkProgram(
        "eqntott", "eqntott.c", True, "SPEC",
        "truth-table generator: product terms copied between record types",
    ),
]


def program_dir() -> Path:
    """Directory holding the suite's C sources (benchmarks/c_programs)."""
    here = Path(__file__).resolve()
    # src/repro/suite/registry.py -> repo root -> benchmarks/c_programs
    for parent in here.parents:
        cand = parent / "benchmarks" / "c_programs"
        if cand.is_dir():
            return cand
    raise FileNotFoundError("benchmarks/c_programs directory not found")


def load_source(prog: BenchmarkProgram) -> str:
    """Read one suite program's C source."""
    return (program_dir() / prog.filename).read_text()


def by_name(name: str) -> BenchmarkProgram:
    for p in SUITE:
        if p.name == name:
            return p
    raise KeyError(f"no suite program named {name!r}")


def casting_programs() -> List[BenchmarkProgram]:
    """The 12 programs involving structure casting (Figures 4-6)."""
    return [p for p in SUITE if p.casting]


def nocast_programs() -> List[BenchmarkProgram]:
    """The 8 programs without structure casting (Figure 3, top block)."""
    return [p for p in SUITE if not p.casting]
