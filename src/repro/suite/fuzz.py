"""Crash-fuzz harness for the never-crash guarantee.

Drives :mod:`repro.suite.generator` (normally in adversarial mode)
through the whole pipeline — parse, typebuild, normalize, solve under
every registered strategy — and checks the robustness contract:

- **lenient mode** (``strict=False``) must *never* raise: every
  unsupported construct degrades to a sound conservative approximation
  and is recorded as a diagnostic;
- **strict mode** must either succeed or raise a structured
  :class:`~repro.diag.FrontendError` (carrying a diagnostic with source
  coordinates) — never a bare ``TypeError``/``RecursionError``/etc.

Any violation is a bug.  The CLI prints the offending seed *and* the
generated source so the failure can be replayed and checked into
``tests/corpus/``::

    python -m repro.suite.fuzz --seeds 0:200 --adversarial

``tests/test_degradation.py`` reuses :func:`check_source` for the
checked-in crash corpus, and CI runs a fixed-seed smoke campaign.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core import STRATEGY_BY_KEY
from ..core.backend import BACKENDS
from ..ctype.layout import ILP32, Layout
from ..diag import FrontendError
from ..session import AnalysisSession
from .generator import ADVERSARIAL, GenConfig, generate_program

__all__ = [
    "FuzzFailure",
    "check_multi_tu_source",
    "check_source",
    "run_campaign",
    "main",
]


@dataclass
class FuzzFailure:
    """One contract violation: where it happened and the traceback."""

    name: str
    mode: str               # "lenient" or "strict"
    stage: str              # strategy key, or "frontend"
    exc: BaseException
    source: str
    seed: Optional[int] = None

    def __str__(self) -> str:
        where = f"seed {self.seed}" if self.seed is not None else self.name
        return (f"{where} [{self.mode}/{self.stage}]: "
                f"{type(self.exc).__name__}: {self.exc}")


def _strategies(keys: Optional[Sequence[str]] = None):
    keys = list(keys) if keys else sorted(STRATEGY_BY_KEY)
    return [(k, STRATEGY_BY_KEY[k]) for k in keys]


def check_source(
    source: str,
    name: str = "<fuzz>",
    strategy_keys: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[FuzzFailure]:
    """Check one program against the robustness contract; [] means clean.

    ``backend`` selects the propagation backend for every solve — the
    never-crash guarantee holds for all of them.
    """
    failures: List[FuzzFailure] = []

    # Lenient: no exception of any kind, anywhere.
    stage = "frontend"
    try:
        session = AnalysisSession.from_c(source, name=name, strict=False)
        for key, cls in _strategies(strategy_keys):
            stage = key
            session.solve(cls(Layout(ILP32)), backend=backend)
    except Exception as exc:  # noqa: BLE001 - the contract is "no exception"
        failures.append(FuzzFailure(name, "lenient", stage, exc, source, seed))

    # Strict: success, or a structured FrontendError.
    stage = "frontend"
    try:
        session = AnalysisSession.from_c(source, name=name, strict=True)
        for key, cls in _strategies(strategy_keys):
            stage = key
            session.solve(cls(Layout(ILP32)), backend=backend)
    except FrontendError:
        pass  # structured failure is a legal strict outcome
    except Exception as exc:  # noqa: BLE001
        failures.append(FuzzFailure(name, "strict", stage, exc, source, seed))
    return failures


def check_multi_tu_source(
    source: str,
    name: str = "<fuzz>",
    strategy_keys: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    parts: int = 3,
) -> List[FuzzFailure]:
    """Multi-TU robustness + equivalence contract; [] means clean.

    Splits the generated program at function boundaries
    (:func:`repro.link.split_translation_units`), then checks:

    - **lenient linking never raises**, whatever the input;
    - when the program splits and parses strictly, the **linked**
      analysis is fact-identical to analyzing the **concatenated**
      TUs, under every strategy.

    A program the splitter cannot distribute (:class:`SplitError`) or
    that does not parse strictly is not a failure — the single-TU
    contract (:func:`check_source`) already covers it.
    """
    from ..link import (
        SplitError, concat_sources, link_sources, split_translation_units,
    )

    failures: List[FuzzFailure] = []
    try:
        tus = split_translation_units(source, name="fuzz.c", parts=parts)
    except SplitError:
        return failures
    except FrontendError:
        return failures  # does not parse strictly; out of scope here
    except Exception as exc:  # noqa: BLE001 - splitter must fail structurally
        failures.append(FuzzFailure(name, "strict", "split", exc, source, seed))
        return failures

    # Lenient linking: no exception of any kind.
    try:
        AnalysisSession.from_sources(tus, name="fuzz.c", strict=False)
    except Exception as exc:  # noqa: BLE001
        failures.append(FuzzFailure(name, "lenient", "link", exc, source, seed))

    # Equivalence: linked == concatenated, every strategy.
    stage = "link"
    try:
        linked = AnalysisSession.from_sources(tus, name="fuzz.c", strict=True)
        concat = AnalysisSession.from_c(
            concat_sources(tus), name="fuzz.c", strict=True
        )
        for key, cls in _strategies(strategy_keys):
            stage = key
            lr = linked.solve(cls(Layout(ILP32)))
            cr = concat.solve(cls(Layout(ILP32)))
            lf = sorted(map(repr, lr.facts.all_facts()))
            cf = sorted(map(repr, cr.facts.all_facts()))
            if lf != cf:
                failures.append(FuzzFailure(
                    name, "strict", f"{key}:linked!=concat",
                    AssertionError(
                        f"{len(lf)} linked vs {len(cf)} concatenated facts"
                    ),
                    source, seed,
                ))
    except FrontendError:
        pass  # regenerated TUs may hit a strict limit; that is legal
    except Exception as exc:  # noqa: BLE001
        failures.append(FuzzFailure(name, "strict", stage, exc, source, seed))
    return failures


def run_campaign(
    seeds: Sequence[int],
    cfg: Optional[GenConfig] = None,
    strategy_keys: Optional[Sequence[str]] = None,
    stop_after: int = 5,
    verbose: bool = False,
    backend: Optional[str] = None,
    multi_tu: bool = False,
) -> List[FuzzFailure]:
    """Fuzz every seed; stop early after ``stop_after`` failures.

    ``multi_tu=True`` additionally splits each generated program at
    function boundaries and checks the linking contract
    (:func:`check_multi_tu_source`).
    """
    cfg = cfg or ADVERSARIAL
    failures: List[FuzzFailure] = []
    for seed in seeds:
        src = generate_program(seed, cfg)
        found = check_source(
            src, name=f"<fuzz:{seed}>", strategy_keys=strategy_keys, seed=seed,
            backend=backend,
        )
        if multi_tu:
            found.extend(check_multi_tu_source(
                src, name=f"<fuzz:{seed}>", strategy_keys=strategy_keys,
                seed=seed,
            ))
        failures.extend(found)
        if verbose and found:
            for f in found:
                print(f"FAIL {f}", file=sys.stderr)
        if len(failures) >= stop_after:
            break
    return failures


def _parse_seed_range(text: str) -> List[int]:
    if ":" in text:
        lo, hi = text.split(":", 1)
        return list(range(int(lo), int(hi)))
    return [int(text)]


def main(argv: Optional[List[str]] = None) -> int:
    p = argparse.ArgumentParser(
        prog="python -m repro.suite.fuzz",
        description="Fuzz the analysis pipeline for never-crash violations.",
    )
    p.add_argument(
        "--seeds", default="0:100", metavar="LO:HI",
        help="seed range (half-open) or a single seed (default: 0:100)",
    )
    p.add_argument(
        "--adversarial", action="store_true",
        help="use the adversarial generator config (unions, pointer "
        "arithmetic, recursive structs, function pointers, ...)",
    )
    p.add_argument(
        "--strategy", action="append", default=[],
        choices=sorted(STRATEGY_BY_KEY), metavar="KEY",
        help="restrict to specific strategies (repeatable; default: all)",
    )
    p.add_argument(
        "--stop-after", type=int, default=5,
        help="stop after this many failures (default: 5)",
    )
    p.add_argument(
        "--backend", choices=sorted(BACKENDS), default=None,
        help="propagation backend for every solve "
        "(default: $REPRO_BACKEND or 'bigint')",
    )
    p.add_argument(
        "--multi-tu", action="store_true",
        help="also split each generated program at function boundaries "
        "and check the linking contract: lenient linking never raises, "
        "linked == concatenated facts under every strategy",
    )
    args = p.parse_args(argv)

    seeds = _parse_seed_range(args.seeds)
    cfg = ADVERSARIAL if args.adversarial else GenConfig()
    failures = run_campaign(
        seeds, cfg, strategy_keys=args.strategy or None,
        stop_after=args.stop_after, verbose=True, backend=args.backend,
        multi_tu=args.multi_tu,
    )
    mode = "adversarial" if args.adversarial else "default"
    if not failures:
        print(f"fuzz: {len(seeds)} seed(s), {mode} config, "
              f"{len(args.strategy or STRATEGY_BY_KEY)} strategies: all clean")
        return 0
    for f in failures:
        print(f"\n=== {f} ===", file=sys.stderr)
        traceback.print_exception(
            type(f.exc), f.exc, f.exc.__traceback__, limit=12, file=sys.stderr
        )
        print("--- offending source ---", file=sys.stderr)
        print(f.source, file=sys.stderr)
    print(f"fuzz: {len(failures)} failure(s)", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
