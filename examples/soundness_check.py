#!/usr/bin/env python3
"""Demonstrate the soundness oracle on generated programs.

The library ships a seeded random C generator and a concrete byte-level
interpreter.  Together they form a testing harness for the fundamental
property of the paper's framework: every address a real execution stores
must appear in the analysis' points-to sets ("a safe approximation
(superset)", paper §1).

This script generates a few cast-heavy programs, executes them
concretely, and checks all four strategies against the concrete facts —
printing the concrete ground truth next to each strategy's answer for
one location, so you can see the over-approximation at work.

Usage:
    python examples/soundness_check.py [seed]
"""

import sys

from repro import ALL_STRATEGIES, analyze
from repro.frontend import program_from_c
from repro.suite import GenConfig, generate_program
from repro.testing import check_soundness, concrete_facts, run_straightline


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    cfg = GenConfig(cast_probability=0.8, cis_probability=0.7, n_statements=30)

    src = generate_program(seed, cfg)
    program = program_from_c(src, name=f"generated-{seed}")
    machine = run_straightline(program)
    facts = concrete_facts(machine)

    print(f"generated program (seed={seed}): {program.summary()}")
    print(f"concrete execution stored {len(facts)} complete pointer(s)\n")

    sample = None
    for strategy_cls in ALL_STRATEGIES:
        result = analyze(program, strategy_cls())
        violations = check_soundness(result, machine)
        status = "SOUND" if not violations else f"{len(violations)} VIOLATIONS"
        print(f"{strategy_cls().name:25s}: {result.facts.edge_count():4d} facts — {status}")
        if violations:
            for v in violations[:3]:
                print(f"    {v}")
        if sample is None and facts:
            sample = facts[0]

    if sample is not None:
        src_obj, off, dst_obj, doff = sample
        print(f"\nexample location: {src_obj.name}+{off} "
              f"(concretely holds &{dst_obj.name}+{doff})")
        from repro.ctype.layout import ILP32, Layout
        from repro.ir.refs import FieldRef

        path = Layout(ILP32).offset_to_path(src_obj.type, off) or ()
        for strategy_cls in ALL_STRATEGIES:
            result = analyze(program, strategy_cls())
            pts = sorted(map(repr, result.points_to(FieldRef(src_obj, path))))
            print(f"  {strategy_cls().key:25s} says: {pts}")


if __name__ == "__main__":
    main()
