#!/usr/bin/env python3
"""Audit a C program's structure casts for portability hazards.

The paper's central warning: the "Offsets" analysis is only safe for one
concrete layout, while the portable instances are safe everywhere.  This
tool surfaces the places where that difference is observable:

1. dereference sites whose points-to sets differ between the Common
   Initial Sequence algorithm (portable truth) and the Offsets algorithm
   under two different ABIs (ILP32 vs LP64) — code whose behaviour may
   silently depend on the platform's struct layout;
2. the overall casting profile of the program (how many lookup/resolve
   calls involved structure casts at all).

Usage:
    python examples/cast_audit.py lex315          # suite program
    python examples/cast_audit.py path/to/file.c
"""

import sys
from pathlib import Path

from repro import ILP32, LP64, CommonInitialSequence, Layout, Offsets, analyze
from repro.frontend import program_from_c
from repro.suite.registry import SUITE, load_source


def load(target: str) -> str:
    for bp in SUITE:
        if bp.name == target:
            return load_source(bp)
    return Path(target).read_text()


def site_sets(result, layout=None):
    """(pointer name, line) -> frozenset of pointed-to locations.

    Locations are rendered as ``object.field.path`` so that results from
    different ABIs are comparable: for the Offsets strategy, each byte
    offset is mapped back to the field it names under that ABI (or kept
    as ``+N`` when it corresponds to no declared field).
    """
    from repro.ir.refs import OffsetRef

    out = {}
    for st in result.program.deref_stmts():
        ptr = result.pointer_of_deref(st)
        key = (ptr.name, st.line)
        locs = set()
        for r in result.points_to(ptr):
            if isinstance(r, OffsetRef) and layout is not None:
                path = layout.offset_to_path(r.obj.type, r.offset)
                if path is None:
                    locs.add(f"{r.obj.name}+{r.offset}")
                else:
                    locs.add(".".join((r.obj.name,) + path))
            else:
                locs.add(repr(r))
        out[key] = frozenset(locs)
    return out


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "less177"
    source = load(target)

    results = {}
    for label, strategy in (
        ("portable (CIS)", CommonInitialSequence()),
        ("offsets/ilp32", Offsets(Layout(ILP32))),
        ("offsets/lp64", Offsets(Layout(LP64))),
    ):
        program = program_from_c(source, name=target)
        results[label] = analyze(program, strategy)

    stats = results["portable (CIS)"].stats
    calls = stats.lookup_calls + stats.resolve_calls
    struct = stats.lookup_struct_calls + stats.resolve_struct_calls
    mism = stats.lookup_mismatch_calls + stats.resolve_mismatch_calls
    print(f"=== cast audit: {target} ===")
    print(f"lookup/resolve calls:        {calls}")
    print(f"  involving structures:      {struct}")
    print(f"  with type mismatch (cast): {mism}")
    print()

    cis = site_sets(results["portable (CIS)"])
    o32 = site_sets(results["offsets/ilp32"], Layout(ILP32))
    o64 = site_sets(results["offsets/lp64"], Layout(LP64))

    abi_sensitive = [k for k in o32 if o32[k] != o64.get(k, frozenset())]
    if abi_sensitive:
        print(f"ABI-sensitive dereferences (Offsets results differ between "
              f"ILP32 and LP64 — not portable): {len(abi_sensitive)} of {len(o32)}")
        for name, line in sorted(abi_sensitive, key=lambda k: (k[1] or 0))[:5]:
            only32 = sorted(o32[(name, line)] - o64[(name, line)])[:6]
            only64 = sorted(o64[(name, line)] - o32[(name, line)])[:6]
            print(f"  line {line}: *{name}")
            print(f"    only under ilp32: {only32}")
            print(f"    only under lp64:  {only64}")
    else:
        print("No ABI-sensitive dereferences found: the Offsets results "
              "coincide under ILP32 and LP64.")
    print()

    widened = [k for k in cis if len(cis[k]) > len(o32.get(k, frozenset()))]
    print(f"Dereferences where portability costs precision "
          f"(|CIS| > |Offsets|): {len(widened)} of {len(cis)}")
    for name, line in sorted(widened, key=lambda k: (k[1] or 0))[:8]:
        print(f"  line {line}: *{name}: portable sees "
              f"{len(cis[(name, line)])} targets vs "
              f"{len(o32[(name, line)])} under ILP32: "
              f"{sorted(cis[(name, line)])[:6]}")


if __name__ == "__main__":
    main()
