#!/usr/bin/env python3
"""Drive the analysis service end to end, in one process.

The service ships as three composable layers — ``ServiceApp`` (pure
request handlers), ``ServiceServer`` (the threading HTTP adapter), and
``ServiceClient`` (a stdlib urllib wrapper).  This walkthrough boots a
real server on an ephemeral port with :func:`repro.service.start_server`
and then talks to it exactly like an external tenant would:

1. create a session from C source (one parse, pooled server-side);
2. query points-to sets, aliasing, and the call graph;
3. grow the program with an incremental JSON delta and re-query —
   the re-solve is delta-only, and repeated queries hit the server's
   solve cache;
4. show the structured-diagnostics error model on a hostile input;
5. scrape ``/metrics`` and shut down.

Everything here uses only the stdlib HTTP client; any language's HTTP
library can do the same.  Full API reference: ``docs/service.md``.

Usage:
    python examples/service_client.py
"""

from repro.service import ServiceConfig, start_server
from repro.service.client import ServiceClient, ServiceClientError

SOURCE = """\
struct pair { int *first; int *second; };
struct pair pr;
int x, y, z, *p;

void take(struct pair *pp) { pp->second = &z; }

void main(void) {
    pr.first = &x;
    p = pr.first;
    take(&pr);
}
"""


def main() -> None:
    config = ServiceConfig(port=0, pool_size=4)  # ephemeral port, 4 slots
    with start_server(config) as handle:
        print(f"server up at {handle.url}")
        client = ServiceClient(handle.url)

        # -- 1. create a session ---------------------------------------
        doc = client.create_session(SOURCE, name="pair.c")
        sid = doc["session"]["id"]
        print(f"session {sid}: {doc['session']['statements']} statements, "
              f"{doc['session']['objects']} objects")

        # -- 2. query it ----------------------------------------------
        pts = client.points_to(sid, "p")
        print(f"p -> {pts['names']}")

        alias = client.may_alias(sid, "p", "pr.first")
        print(f"may_alias(p, pr.first) = {alias['may_alias']}")

        cg = client.call_graph(sid)
        print(f"call graph: {cg['edges']}")

        # -- 3. grow it incrementally ---------------------------------
        # The delta wire format is the paper's normalized assignment
        # forms as JSON; this is `p = &y` inside main.
        delta = client.add_statements(
            sid, [{"form": "addrof", "lhs": "p", "target": "y"}],
            function="main",
        )
        print(f"delta applied: {delta['added']} statement(s), "
              f"{delta['engines_resolved']} engine(s) re-solved")
        print(f"p -> {client.points_to(sid, 'p')['names']}  (after delta)")

        # -- 4. hostile input: structured 4xx, never a 500 ------------
        try:
            client.create_session("int broken = ;", name="broken.c")
        except ServiceClientError as err:
            diag = err.diagnostics[0]
            print(f"hostile input -> HTTP {err.status} [{err.kind}]: "
                  f"{diag['kind']} in phase {diag['phase']}")

        # -- 5. observability -----------------------------------------
        server = client.metrics()["server"]
        print(f"metrics: {server['solves']} solve(s), "
              f"{server['solve_cache_hits']} solve-cache hit(s), "
              f"{server['sessions_live']} session(s) live, "
              f"{server['evictions']} eviction(s)")
    print("server shut down cleanly")


if __name__ == "__main__":
    main()
