#!/usr/bin/env python3
"""Downstream client demo: MOD/REF sets and the call graph.

The paper's motivation for precise points-to information is that it
feeds later analyses (slicing, side-effect analysis).  This example runs
the MOD/REF client under the coarsest and the most precise portable
strategy and shows how much tighter the side-effect sets get — the
end-to-end payoff of field sensitivity.

Usage:
    python examples/modref_client.py ks      # suite program
    python examples/modref_client.py file.c
"""

import sys
from pathlib import Path

from repro import CollapseAlways, CommonInitialSequence, analyze
from repro.clients import build_call_graph, mod_ref
from repro.frontend import program_from_c
from repro.suite.registry import SUITE, load_source


def load(target: str) -> str:
    for bp in SUITE:
        if bp.name == target:
            return load_source(bp)
    return Path(target).read_text()


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "ks"
    source = load(target)

    program = program_from_c(source, name=target)
    coarse = analyze(program, CollapseAlways())
    fine = analyze(program_from_c(source, name=target), CommonInitialSequence())

    cg = build_call_graph(fine)
    print(f"=== {target}: call graph ===")
    for fn in sorted(cg.edges):
        print(f"  {fn} -> {sorted(cg.edges[fn])}")
    unresolved = cg.unresolved_indirect_sites()
    if unresolved:
        print(f"  unresolved indirect sites: {unresolved}")
    print()

    mr_coarse = mod_ref(coarse)
    mr_fine = mod_ref(fine)
    print(f"{'function':20s} {'MOD (collapse)':>15s} {'MOD (CIS)':>10s} "
          f"{'REF (collapse)':>15s} {'REF (CIS)':>10s}")
    total_c = total_f = 0
    for fn in sorted(coarse.program.functions):
        mc, mf = len(mr_coarse.mod_of(fn)), len(mr_fine.mod_of(fn))
        rc, rf = len(mr_coarse.ref_of(fn)), len(mr_fine.ref_of(fn))
        total_c += mc + rc
        total_f += mf + rf
        print(f"{fn:20s} {mc:15d} {mf:10d} {rc:15d} {rf:10d}")
    if total_f:
        print(f"\nfield-sensitive MOD/REF is "
              f"{total_c / total_f:.2f}x smaller overall")


if __name__ == "__main__":
    main()
