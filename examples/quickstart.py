#!/usr/bin/env python3
"""Quickstart: analyze the paper's motivating example.

The introduction of the paper shows why field-sensitivity matters:

    struct S { int *s1; int *s2; } s;
    s.s1 = &x;
    s.s2 = &y;
    p = s.s1;

A structure-collapsing analysis concludes p may point to {x, y}; a
field-sensitive one proves p points only to x.  This script runs both
and prints the difference.

Run:  python examples/quickstart.py
"""

from repro import CollapseAlways, CommonInitialSequence, analyze_c

SOURCE = """
struct S { int *s1; int *s2; } s;
int x, y, *p;

void main(void) {
    s.s1 = &x;
    s.s2 = &y;
    p = s.s1;
}
"""


def main() -> None:
    for strategy in (CollapseAlways(), CommonInitialSequence()):
        result = analyze_c(SOURCE, strategy)
        p = result.program.objects.lookup("p")
        names = sorted(result.points_to_names(p))
        print(f"{strategy.name:25s}: p may point to {names}")

    # Field-level queries work too:
    result = analyze_c(SOURCE, CommonInitialSequence())
    from repro.ir.refs import FieldRef

    s = result.program.objects.lookup("s")
    for field in ("s1", "s2"):
        names = sorted(result.points_to_names(FieldRef(s, (field,))))
        print(f"{'':25s}  s.{field} -> {names}")


if __name__ == "__main__":
    main()
