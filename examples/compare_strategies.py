#!/usr/bin/env python3
"""Compare all four instances of the framework on one C file.

For a given C source file (or a benchmark-suite program name), run the
four algorithms — Collapse Always, Collapse on Cast, Common Initial
Sequence, Offsets — and report for each:

- analysis time and number of points-to facts (Figures 5/6 metrics),
- average points-to set size per dereferenced pointer (Figure 4 metric),
- the lookup/resolve instrumentation (Figure 3 columns).

Usage:
    python examples/compare_strategies.py bc          # suite program
    python examples/compare_strategies.py path/to.c   # your own file
"""

import sys
from pathlib import Path

from repro import ALL_STRATEGIES, analyze
from repro.clients import deref_stats
from repro.frontend import program_from_c
from repro.suite.registry import SUITE, load_source


def load(target: str) -> str:
    for bp in SUITE:
        if bp.name == target:
            return load_source(bp)
    return Path(target).read_text()


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "twig"
    source = load(target)

    print(f"=== {target} ===")
    header = (
        f"{'algorithm':25s} {'time':>8s} {'facts':>7s} {'avg |pts|':>10s} "
        f"{'struct%':>8s} {'cast%':>7s}"
    )
    print(header)
    print("-" * len(header))
    for cls in ALL_STRATEGIES:
        program = program_from_c(source, name=target)
        result = analyze(program, cls())
        stats = result.stats
        ds = deref_stats(result)
        calls = stats.lookup_calls + stats.resolve_calls
        struct = stats.lookup_struct_calls + stats.resolve_struct_calls
        mism = stats.lookup_mismatch_calls + stats.resolve_mismatch_calls
        struct_pct = 100.0 * struct / calls if calls else 0.0
        mism_pct = 100.0 * mism / struct if struct else 0.0
        print(
            f"{cls().name:25s} {stats.solve_seconds * 1000:6.1f}ms "
            f"{result.facts.edge_count():7d} {ds.average:10.2f} "
            f"{struct_pct:8.1f} {mism_pct:7.1f}"
        )

    print()
    print("Worst dereference sites under Common Initial Sequence:")
    program = program_from_c(source, name=target)
    result = analyze(program, ALL_STRATEGIES[2]())
    ds = deref_stats(result)
    for site in sorted(ds.sites, key=lambda s: -s.set_size)[:5]:
        print(f"  line {site.line}: *{site.pointer_name} -> {site.set_size} targets")


if __name__ == "__main__":
    main()
