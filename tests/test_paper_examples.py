"""End-to-end tests of every worked example in the paper.

Each test runs real C source through the front end and the engine and
checks the points-to results the paper derives by hand.
"""

from conftest import pts, pts_names, run

from repro import (
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Offsets,
)

INTRO = """
struct S { int *s1; int *s2; } s;
int x, y, *p;
void main(void) {
    s.s1 = &x;
    s.s2 = &y;
    p = s.s1;
}
"""


class TestIntroExample:
    """Paper §1: the motivating example."""

    def test_collapse_always_imprecise(self):
        r = run(INTRO, CollapseAlways())
        assert pts_names(r, "p") == ["x", "y"]

    def test_field_sensitive_precise(self, field_strategy):
        r = run(INTRO, field_strategy)
        assert pts_names(r, "p") == ["x"]

    def test_struct_fields_tracked(self, field_strategy):
        r = run(INTRO, field_strategy)
        from repro.ir.refs import FieldRef

        s = r.program.objects.lookup("s")
        assert r.points_to_names(FieldRef(s, ("s1",))) == {"x"}
        assert r.points_to_names(FieldRef(s, ("s2",))) == {"y"}


class TestSection3Normalized:
    """Paper §3: the hand-normalized version with explicit temporaries."""

    SRC = """
    struct S { int *s1; int *s2; } s;
    int x, y, *p, **tmp1, **tmp2;
    void main(void) {
        tmp1 = &s.s1;
        tmp2 = &s.s2;
        *tmp1 = &x;
        *tmp2 = &y;
        p = s.s1;
    }
    """

    def test_three_step_derivation(self, field_strategy):
        r = run(self.SRC, field_strategy)
        assert pts_names(r, "p") == ["x"]
        # tmp1 and tmp2 point to *different fields* of s.
        assert pts(r, "tmp1") != pts(r, "tmp2")


class TestProblem1:
    """Paper §4.1 Problem 1: a pointer to a struct points to its first field."""

    SRC = """
    struct S { int *s1; } s, *p;
    int x, *q, *r;
    void main(void) {
        p = &s;
        q = &x;
        *p = *(struct S*)&q;
        r = s.s1;
    }
    """

    def test_first_field_inference(self, field_strategy):
        r = run(self.SRC, field_strategy)
        assert pts_names(r, "r") == ["x"]

    def test_collapse_always_also_sound(self):
        r = run(self.SRC, CollapseAlways())
        assert "x" in pts_names(r, "r")

    def test_first_field_pointer_as_struct_pointer(self, field_strategy):
        # The converse direction: &s.s1 cast to struct S* reaches s.s1.
        src = """
        struct S { int *s1; } s, *p;
        int x, *r;
        void main(void) {
            p = (struct S *)&s.s1;
            (*p).s1 = &x;
            r = s.s1;
        }
        """
        r = run(src, field_strategy)
        assert pts_names(r, "r") == ["x"]


class TestProblem2:
    """Paper §4.1 Problem 2: dereference under a mismatched declared type."""

    SRC = """
    struct S { int *s1; int s2; char *s3; } *p;
    struct T { int *t1; int *t2; char *t3; } t;
    char **c;
    int x; char ch;
    void main(void) {
        t.t3 = &ch;
        t.t2 = &x;
        p = (struct S *)&t;
        c = &((*p).s3);
    }
    """

    def test_mismatched_deref_is_safe(self, field_strategy):
        r = run(self.SRC, field_strategy)
        c_pts = pts(r, "c")
        # (*p).s3 may or may not be t.t3 (the second fields have
        # non-compatible types) — the analysis must include t.t3.
        assert any("t3" in x or "t+8" in x for x in c_pts), c_pts

    def test_offsets_is_exact(self):
        r = run(self.SRC, Offsets())
        assert pts(r, "c") == ["t+8"]

    def test_cis_conservative_after_mismatch(self):
        r = run(self.SRC, CommonInitialSequence())
        # s2 (int) and t2 (int*) are incompatible, so s3 is beyond the
        # common initial sequence: both t.t2 and t.t3 are candidates.
        assert pts(r, "c") == ["t.t2", "t.t3"]


class TestProblem3:
    """Paper §4.1 Problem 3: block copy between different struct types."""

    SRC = """
    struct S { int *s1; int s2; char *s3; } s;
    struct T { int *t1; int *t2; char *t3; } t;
    int x, y; char ch;
    int *a; char *b;
    void main(void) {
        t.t1 = &x;
        t.t2 = &y;
        t.t3 = &ch;
        s = *(struct S *)&t;
        a = s.s1;
        b = s.s3;
    }
    """

    def test_corresponding_first_field_copied(self, field_strategy):
        r = run(self.SRC, field_strategy)
        assert "x" in pts_names(r, "a")

    def test_offsets_copies_exactly(self):
        r = run(self.SRC, Offsets())
        assert pts_names(r, "a") == ["x"]
        assert pts_names(r, "b") == ["ch"]


class TestCoCLookupExample:
    """Paper §4.3.2's worked lookup example."""

    SRC = """
    struct S { int s1; char s2; } *p, *q;
    struct T { struct S t1; int t2; char t3; } t;
    char *x, *y;
    void main(void) {
        p = &t.t1;
        x = &(*p).s2;
        q = (struct S *)&t.t2;
        y = &(*q).s2;
    }
    """

    def test_matching_nested_type(self):
        r = run(self.SRC, CollapseOnCast())
        assert pts(r, "x") == ["t.t1.s2"]

    def test_mismatch_suffix(self):
        r = run(self.SRC, CollapseOnCast())
        assert pts(r, "y") == ["t.t2", "t.t3"]


class TestCISLookupExample:
    """Paper §4.3.3's worked lookup example."""

    SRC = """
    struct S { int s1; int s2; int s3; } *p;
    struct T { int t1; int t2; char t3; int t4; } t;
    int *x, *y;
    void main(void) {
        p = (struct S *)&t;
        x = (int*)&(*p).s2;
        y = (int*)&(*p).s3;
    }
    """

    def test_s2_in_cis(self):
        r = run(self.SRC, CommonInitialSequence())
        assert pts(r, "x") == ["t.t2"]

    def test_s3_beyond_cis(self):
        r = run(self.SRC, CommonInitialSequence())
        assert pts(r, "y") == ["t.t3", "t.t4"]

    def test_coc_less_precise_here(self):
        r = run(self.SRC, CollapseOnCast())
        assert pts(r, "x") == ["t.t1", "t.t2", "t.t3", "t.t4"]


class TestComplication1:
    """Paper §4.2.1: access beyond the bounds of a nested struct."""

    SRC = """
    struct V { int *v1; char *v2; int *v3; } v;
    struct R { int *r1; char *r2; } r;
    struct W { int *w1; struct R r; int *w3; } w;
    int a, b, c; char ch;
    int *out;
    void main(void) {
        w.r.r1 = &a;
        w.r.r2 = &ch;
        w.w3 = &b;
        v = *(struct V *)&w.r;
        out = v.v3;
    }
    """

    def test_out_of_bounds_field_reached(self, field_strategy):
        # v.v3 corresponds to w.w3, outside w.r's bounds.
        r = run(self.SRC, field_strategy)
        assert "b" in pts_names(r, "out")


class TestComplication2:
    """Paper §4.2.1: a double can hold two pointers' worth of bits."""

    SRC = """
    struct R { int *r1; int *r2; } r;
    struct R r2v;
    double d;
    int x, y;
    int *ox, *oy;
    void main(void) {
        r.r1 = &x;
        r.r2 = &y;
        d = *(double *)&r;
        r2v = *(struct R *)&d;
        ox = r2v.r1;
        oy = r2v.r2;
    }
    """

    def test_addresses_recoverable_from_double(self, any_strategy):
        r = run(self.SRC, any_strategy)
        assert "x" in pts_names(r, "ox")
        assert "y" in pts_names(r, "oy")

    def test_offsets_exact_recovery(self):
        r = run(self.SRC, Offsets())
        assert pts_names(r, "ox") == ["x"]
        assert pts_names(r, "oy") == ["y"]


class TestComplication4:
    """Paper §4.2.1: the LHS type determines how many bytes are copied."""

    SRC = """
    struct R { int *r1; int *r2; char *r3; } r;
    struct S { int *s1; int *s2; int *s3; } s;
    struct T { int *t1; int *t2; } *p;
    int a, b, c;
    int *o1, *o2, *o3;
    void main(void) {
        s.s1 = &a;
        s.s2 = &b;
        s.s3 = &c;
        p = (struct T *)&r;
        *p = *(struct T *)&s;
        o1 = r.r1;
        o2 = r.r2;
        o3 = r.r3;
    }
    """

    def test_only_two_fields_copied_offsets(self):
        r = run(self.SRC, Offsets())
        assert pts_names(r, "o1") == ["a"]
        assert pts_names(r, "o2") == ["b"]
        # r.r3 must NOT receive &c: only sizeof(struct T) bytes move.
        assert pts_names(r, "o3") == []

    def test_only_two_fields_copied_cis(self):
        r = run(self.SRC, CommonInitialSequence())
        assert pts_names(r, "o1") == ["a"]
        assert pts_names(r, "o2") == ["b"]
        assert pts_names(r, "o3") == []


class TestPointerArithmetic:
    """Paper §4.2.1: arithmetic smears across the outermost object."""

    SRC = """
    struct G { int *g1; int *g2; int *g3; } g;
    int a, b, c;
    int **p, **q;
    void main(void) {
        g.g1 = &a;
        g.g2 = &b;
        g.g3 = &c;
        p = &g.g1;
        q = (int **)((char *)p + 4);
    }
    """

    def test_arith_result_may_point_anywhere_in_object(self, field_strategy):
        r = run(self.SRC, field_strategy)
        q_pts = pts(r, "q")
        assert len(q_pts) == 3, q_pts  # all three fields of g

    def test_arith_does_not_leak_to_other_objects(self, field_strategy):
        r = run(self.SRC, field_strategy)
        assert all(x.startswith("g") for x in pts(r, "q"))
