"""Unit tests for the normalized field-path machinery."""

from repro.core.fieldpaths import (
    leaf_count,
    normalize_path,
    normalized_positions,
    positions_at_or_after,
    prefix_candidates,
    truncate_at_union,
    type_at,
)
from repro.ctype.types import (
    Field,
    StructType,
    UnionType,
    array_of,
    char,
    int_t,
    ptr,
)


def mk(tag, *fields):
    return StructType(tag).define([Field(n, t) for n, t in fields])


INNER = mk("Inner", ("a", int_t), ("b", int_t))
OUTER = mk("Outer", ("i", INNER), ("c", char))
DEEP = mk("Deep", ("o", OUTER), ("z", int_t))


class TestNormalizePath:
    def test_scalar_object_unchanged(self):
        assert normalize_path(int_t, ()) == ()

    def test_struct_descends_to_first_field(self):
        assert normalize_path(INNER, ()) == ("a",)

    def test_nested_struct_descends_recursively(self):
        assert normalize_path(OUTER, ()) == ("i", "a")
        assert normalize_path(DEEP, ()) == ("o", "i", "a")

    def test_inner_struct_field(self):
        assert normalize_path(OUTER, ("i",)) == ("i", "a")

    def test_non_first_field_unchanged(self):
        assert normalize_path(OUTER, ("c",)) == ("c",)
        assert normalize_path(INNER, ("b",)) == ("b",)

    def test_idempotent(self):
        p = normalize_path(DEEP, ())
        assert normalize_path(DEEP, p) == p

    def test_array_of_structs_transparent(self):
        arr_struct = mk("AS", ("hdr", char), ("body", array_of(INNER, 4)))
        assert normalize_path(arr_struct, ("body",)) == ("body", "a")

    def test_union_stops_descent(self):
        u = UnionType("U").define([Field("s", INNER), Field("n", int_t)])
        holder = mk("H", ("u", u), ("t", int_t))
        # The union collapses: paths into it truncate at the union.
        assert normalize_path(holder, ("u",)) == ("u",)
        assert normalize_path(holder, ("u", "s")) == ("u",)
        assert normalize_path(holder, ("u", "s", "b")) == ("u",)

    def test_union_as_object_type(self):
        u = UnionType("U2").define([Field("x", int_t)])
        assert normalize_path(u, ("x",)) == ()


class TestTruncateAtUnion:
    def test_no_union_passthrough(self):
        assert truncate_at_union(OUTER, ("i", "b")) == ("i", "b")

    def test_cut_at_union(self):
        u = UnionType("U3").define([Field("s", INNER)])
        holder = mk("H3", ("pre", int_t), ("u", u))
        assert truncate_at_union(holder, ("u", "s", "a")) == ("u",)


class TestNormalizedPositions:
    def test_flat(self):
        assert normalized_positions(INNER) == [("a",), ("b",)]

    def test_nested(self):
        # Outer itself, i, and i.a all normalize to ("i","a").
        assert normalized_positions(OUTER) == [("i", "a"), ("i", "b"), ("c",)]

    def test_scalar(self):
        assert normalized_positions(int_t) == [()]

    def test_union_single_position(self):
        u = UnionType("U4").define([Field("s", INNER), Field("n", int_t)])
        assert normalized_positions(u) == [()]

    def test_count_matches_leaves_for_plain_structs(self):
        assert len(normalized_positions(DEEP)) == leaf_count(DEEP) == 4
        assert normalized_positions(DEEP) == [
            ("o", "i", "a"), ("o", "i", "b"), ("o", "c"), ("z",)
        ]


class TestPositionsAtOrAfter:
    def test_from_start(self):
        assert positions_at_or_after(OUTER, ("i", "a")) == [
            ("i", "a"), ("i", "b"), ("c",)
        ]

    def test_from_middle(self):
        assert positions_at_or_after(OUTER, ("i", "b")) == [("i", "b"), ("c",)]

    def test_from_last(self):
        assert positions_at_or_after(OUTER, ("c",)) == [("c",)]

    def test_unknown_position_conservative(self):
        assert positions_at_or_after(OUTER, ("zzz",)) == normalized_positions(OUTER)

    def test_array_member_includes_whole_array(self):
        # Footnote 5: followingFields of a field within an array includes
        # all fields within that array.
        s = mk("Arr", ("h", int_t), ("body", array_of(INNER, 3)), ("t", int_t))
        pos = positions_at_or_after(s, ("body", "b"))
        assert ("body", "a") in pos
        assert ("t",) in pos


class TestPrefixCandidates:
    def test_first_field_chain(self):
        cands = prefix_candidates(DEEP, ("o", "i", "a"))
        paths = [p for p, _t in cands]
        assert paths == [(), ("o",), ("o", "i"), ("o", "i", "a")]
        types = [t for _p, t in cands]
        assert types[0] is DEEP and types[1] is OUTER
        assert types[2] is INNER and types[3] is int_t

    def test_non_first_field_only_itself(self):
        cands = prefix_candidates(OUTER, ("c",))
        assert [p for p, _t in cands] == [("c",)]

    def test_middle_field(self):
        cands = prefix_candidates(OUTER, ("i", "b"))
        assert [p for p, _t in cands] == [("i", "b")]


class TestLeafCount:
    def test_scalar(self):
        assert leaf_count(int_t) == 1

    def test_struct(self):
        assert leaf_count(OUTER) == 3

    def test_array_counts_once(self):
        s = mk("L", ("a", array_of(INNER, 10)))
        assert leaf_count(s) == 2

    def test_union_counts_once(self):
        u = UnionType("LU").define([Field("s", INNER), Field("n", int_t)])
        assert leaf_count(u) == 1


class TestTypeAt:
    def test_walks_nested(self):
        assert type_at(DEEP, ("o", "i", "b")) is int_t
        assert type_at(DEEP, ("o",)) is OUTER

    def test_through_array(self):
        s = mk("TA", ("xs", array_of(ptr(char), 4)))
        assert repr(type_at(s, ("xs",))) == "char*"
