"""The incremental differential gate (ISSUE acceptance criterion).

For EVERY benchmark-suite program and ALL FOUR framework instances:
solve a program with ~a third of its statements held out, grow it back
via :meth:`AnalysisSession.add_statements` (incremental re-solve from
the new deltas only), and require *exact* equality with a from-scratch
solve of the whole program —

- the points-to relation (every fact, every per-ref query),
- per-dereference set sizes (the Figure 4 metric),
- every order-independent counter (Figure 3 instrumentation, rule
  firings, facts/edges/windows/calls-bound).

Soundness of the comparison: the analysis is flow-insensitive, so any
statement subset is a valid program and the fixpoint depends only on
the statement *set* — holding out statements and re-adding them merely
reorders the seeding, which monotonicity makes irrelevant.  The
excluded counters (``_UNGATED_STATS``) are exactly the propagation-
order-dependent ones plus the session counters that *describe* the
incremental path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro import ALL_STRATEGIES, AnalysisSession, analyze
from repro.bench.harness import _UNGATED_STATS, load_program
from repro.clients.derefstats import deref_stats
from repro.ir.program import Program
from repro.ir.stmts import Stmt
from repro.suite.registry import SUITE

#: Hold out every third statement (at least one per non-trivial list).
HOLD_EVERY = 3


@pytest.fixture(scope="module")
def suite_programs():
    """Parse each suite program once for the whole module.

    Tests mutate the program (hold out, then re-add statements) but
    always restore the full statement set before finishing, so sharing
    is safe across parametrized cases.
    """
    return {bp.name: load_program(bp) for bp in SUITE}


def _split(stmts: List[Stmt]) -> Tuple[List[Stmt], List[Stmt]]:
    kept: List[Stmt] = []
    held: List[Stmt] = []
    for i, st in enumerate(stmts):
        (held if i % HOLD_EVERY == HOLD_EVERY - 1 else kept).append(st)
    return kept, held


def _hold_out(program: Program) -> List[Tuple[Optional[str], List[Stmt]]]:
    """Remove ~1/3 of the statements; returns (scope, stmts) batches."""
    batches: List[Tuple[Optional[str], List[Stmt]]] = []
    kept, held = _split(program.global_stmts)
    if held:
        program.global_stmts[:] = kept
        batches.append((None, held))
    for name, info in program.functions.items():
        kept, held = _split(info.stmts)
        if held:
            info.stmts[:] = kept
            batches.append((name, held))
    return batches


def _deref_profile(result):
    ds = deref_stats(result)
    return sorted(
        (s.line, s.pointer_name, s.set_size) for s in ds.sites
    ), ds.average, ds.maximum


def _gated(stats) -> dict:
    return {k: v for k, v in stats.as_dict().items() if k not in _UNGATED_STATS}


@pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
@pytest.mark.parametrize("bp", SUITE, ids=lambda bp: bp.name)
def test_incremental_resolve_equals_from_scratch(bp, cls, suite_programs):
    program = suite_programs[bp.name]
    total_before = program.stmt_count()
    batches = _hold_out(program)
    assert batches, f"{bp.name}: nothing held out (program too small?)"
    held_count = sum(len(stmts) for _fn, stmts in batches)

    session = AnalysisSession(program)
    incremental = session.solve(cls())
    for fn, stmts in batches:
        session.add_statements(stmts, function=fn)
    # The program is whole again (append-at-end order); the session
    # engine has been re-drained once per batch.
    assert program.stmt_count() == total_before
    assert incremental.stats.incremental_solves == len(batches)
    assert incremental.stats.delta_stmts == held_count

    scratch = analyze(program, cls())

    assert set(incremental.facts.all_facts()) == set(scratch.facts.all_facts())
    assert incremental.facts.edge_count() == scratch.facts.edge_count()
    for src in scratch.facts.sources():
        assert incremental.facts.points_to(src) == scratch.facts.points_to(src)
    assert _deref_profile(incremental) == _deref_profile(scratch)
    assert _gated(incremental.stats) == _gated(scratch.stats)


@pytest.mark.parametrize("cls", ALL_STRATEGIES, ids=lambda c: c.key)
def test_incremental_with_fifo_worklist(cls, suite_programs):
    """The incremental path is policy-independent too: a FIFO-drained
    session grown incrementally equals a priority-drained scratch solve."""
    program = suite_programs[SUITE[0].name]
    batches = _hold_out(program)
    session = AnalysisSession(program)
    incremental = session.solve(cls(), worklist="fifo")
    for fn, stmts in batches:
        session.add_statements(stmts, function=fn)
    scratch = analyze(program, cls())
    assert set(incremental.facts.all_facts()) == set(scratch.facts.all_facts())
    assert _gated(incremental.stats) == _gated(scratch.stats)
