"""Execute every fenced ``python`` block in the Markdown docs.

The documentation is part of the tested surface: each ```` ```python ````
block in ``README.md`` and ``docs/*.md`` is executed, cumulatively per
file (later blocks see names bound by earlier ones, like a reader typing
the page into one REPL).  A block whose code is deliberately incomplete
(pseudo-code, undefined placeholder names) opts out with an HTML comment
on the line directly above the fence::

    <!-- no-run -->
    ```python
    engine.summaries.register("my_function", my_summary)
    ```

Blocks run with the repository root as the working directory so relative
paths like ``benchmarks/c_programs/twig.c`` resolve.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, NamedTuple

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md"] + sorted(
    (REPO_ROOT / "docs").glob("*.md")
)

NO_RUN = "<!-- no-run -->"


class Snippet(NamedTuple):
    path: Path
    line: int        # 1-based line of the opening fence
    code: str
    run: bool


def extract_snippets(path: Path) -> List[Snippet]:
    snippets: List[Snippet] = []
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == "```python":
            run = not (i > 0 and lines[i - 1].strip() == NO_RUN)
            start = i + 1
            i += 1
            body: List[str] = []
            while i < len(lines) and lines[i].strip() != "```":
                body.append(lines[i])
                i += 1
            snippets.append(Snippet(path, start, "\n".join(body), run))
        i += 1
    return snippets


def test_docs_exist_and_have_snippets():
    assert all(p.exists() for p in DOC_FILES)
    runnable = [
        s for p in DOC_FILES for s in extract_snippets(p) if s.run
    ]
    # README quickstart + observability walkthrough at minimum.
    assert len(runnable) >= 5


@pytest.fixture()
def docs_env(monkeypatch):
    """Repo-root cwd and protection of process-global registries."""
    monkeypatch.chdir(REPO_ROOT)
    from repro.core import STRATEGY_BY_KEY

    snapshot = dict(STRATEGY_BY_KEY)
    yield
    STRATEGY_BY_KEY.clear()
    STRATEGY_BY_KEY.update(snapshot)


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_docs_snippets_execute(doc, docs_env, capsys, tmp_path):
    snippets = extract_snippets(doc)
    if not any(s.run for s in snippets):
        pytest.skip(f"{doc.name} has no runnable python blocks")
    namespace: dict = {"__name__": "__docs__", "tmp_path": tmp_path}
    for s in snippets:
        if not s.run:
            continue
        code = compile(s.code, f"{doc.name}:{s.line}", "exec")
        try:
            exec(code, namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{doc.relative_to(REPO_ROOT)} block at line {s.line} "
                f"raised {type(exc).__name__}: {exc}"
            )
    capsys.readouterr()  # swallow demo prints
