"""Tests for the DOT/JSON export client."""

import json

from repro import CommonInitialSequence, analyze_c
from repro.clients import call_graph_dot, facts_json, points_to_dot

SRC = """
struct S { int *a; } s;
int x;
void helper(void) { s.a = &x; }
void other(void) { }
void main(void) {
    void (*fp)(void) = other;
    helper();
    fp();
}
"""


def result():
    return analyze_c(SRC, CommonInitialSequence())


class TestPointsToDot:
    def test_valid_digraph(self):
        dot = points_to_dot(result())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_contains_facts(self):
        dot = points_to_dot(result())
        assert '"s.a" -> "x"' in dot

    def test_temps_hidden_by_default(self):
        dot = points_to_dot(result())
        assert "%t" not in dot

    def test_custom_filter(self):
        dot = points_to_dot(result(), include=lambda obj: obj.name == "s")
        assert '"s.a" -> "x"' in dot
        assert "fp" not in dot

    def test_heap_nodes_elliptical(self):
        src = "int *p; void main(void) { p = (int*)malloc(4); }"
        dot = points_to_dot(analyze_c(src, CommonInitialSequence()))
        assert "shape=ellipse" in dot

    def test_quoting(self):
        dot = points_to_dot(result(), title='a"b')
        assert 'a\\"b' in dot


class TestCallGraphDot:
    def test_direct_edge_solid(self):
        dot = call_graph_dot(result())
        assert '"main" -> "helper";' in dot

    def test_indirect_edge_dashed(self):
        dot = call_graph_dot(result())
        assert '"main" -> "other" [style=dashed];' in dot


class TestFactsJson:
    def test_round_trips(self):
        payload = json.loads(facts_json(result()))
        assert payload["strategy"] == "common_initial_sequence"
        assert payload["portable"] is True
        assert payload["facts"]["s.a"] == ["x"]
        assert payload["edge_count"] >= len(payload["facts"])

    def test_deterministic(self):
        assert facts_json(result()) == facts_json(result())

    def test_include_temps(self):
        small = json.loads(facts_json(result()))
        big = json.loads(facts_json(result(), include_temps=True))
        assert len(big["facts"]) > len(small["facts"])

    def test_diffable_between_strategies(self):
        from repro import CollapseAlways

        a = json.loads(facts_json(analyze_c(SRC, CollapseAlways())))
        b = json.loads(facts_json(analyze_c(SRC, CommonInitialSequence())))
        assert a["strategy"] != b["strategy"]
        assert a["facts"] != b["facts"]
