"""Tests for the parallel bench harness collection pass, the
``python -m repro.bench`` CLI, and the JSON baseline writer."""

import io
import json

import pytest

from repro.bench.__main__ import build_parser, main
from repro.bench.harness import (
    FIGURE3_KEYS,
    STRATEGY_ORDER,
    append_history,
    collect_results,
    compare_to_baseline,
    history_path,
    figure3,
    figure4,
    figure6,
    format_figure3,
    format_figure4,
    run_all,
    write_baseline,
)
from repro.suite.registry import by_name

# Two small casting programs keep the collection pass fast.
SMOKE = [by_name("twig"), by_name("bc")]


def _strip_timing(data):
    """Collection results minus the (non-deterministic) solve times."""
    out = {}
    for key, rec in data.items():
        d = dict(rec.__dict__)
        d.pop("solve_seconds")
        d["stats"] = {k: v for k, v in d["stats"].items() if k != "solve_seconds"}
        out[key] = d
    return out


class TestCollectionPass:
    def test_serial_matches_parallel(self):
        serial = collect_results(repeats=1, jobs=1, programs=SMOKE)
        parallel = collect_results(repeats=1, jobs=2, programs=SMOKE)
        assert _strip_timing(serial) == _strip_timing(parallel)

    def test_figures_trim_the_work(self):
        only6 = collect_results(repeats=1, jobs=1, programs=SMOKE, figures=("6",))
        # No figure 3 -> every record belongs to a casting program and
        # covers exactly the four strategies.
        assert {key for (_name, key) in only6} == set(STRATEGY_ORDER)
        only3 = collect_results(
            repeats=1, jobs=1, programs=[by_name("ul")], figures=("3",)
        )
        assert {key for (_name, key) in only3} == set(FIGURE3_KEYS)

    def test_figures_assemble_from_shared_data(self):
        data = collect_results(repeats=1, jobs=1, programs=SMOKE)
        rows3 = figure3(data)
        assert [r.name for r in rows3] == ["twig", "bc"]  # sorted by LOC
        rows4 = figure4(data)
        assert {r.name for r in rows4} == {"twig", "bc"}
        for r in rows4:
            assert set(r.averages) == set(STRATEGY_ORDER)
        rows6 = figure6(data)
        for r in rows6:
            assert r.normalized()["offsets"] == pytest.approx(1.0)
        # The formatted tables render without error.
        assert "twig" in format_figure3(rows3)
        assert "bc" in format_figure4(rows4)

    def test_standalone_figures_still_work(self):
        # Without a shared pass the figures collect their own data.
        rows = figure6(collect_results(repeats=1, jobs=1, programs=SMOKE))
        assert len(rows) == 2


class TestRunAll:
    def test_run_all_prints_requested_figures(self):
        buf = io.StringIO()
        data = run_all(out=buf, repeats=1, jobs=1, programs=SMOKE,
                       figures=("4", "6"))
        text = buf.getvalue()
        assert "Figure 4" in text and "Figure 6" in text
        assert "Figure 3" not in text and "Figure 5" not in text
        assert ("bc", "offsets") in data


class TestBenchCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.repeats == 3 and args.jobs is None
        assert args.write_baseline is None

    def test_main_smoke(self, capsys):
        rc = main(["--repeats", "1", "--jobs", "1",
                   "--programs", "twig", "--figures", "4,6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "twig" in out

    def test_main_rejects_unknown_program(self, capsys):
        assert main(["--programs", "nope"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_main_rejects_bad_figure(self, capsys):
        assert main(["--figures", "7"]) == 2
        assert "--figures" in capsys.readouterr().err


class TestBaselineWriter:
    def test_write_baseline_schema(self, tmp_path):
        data = collect_results(repeats=1, jobs=1, programs=[by_name("twig")])
        path = tmp_path / "BENCH_engine.json"
        write_baseline(str(path), data, repeats=1, wall_seconds=1.5)
        doc = json.loads(path.read_text())
        assert doc["schema"] == 2
        assert doc["strategy_order"] == STRATEGY_ORDER
        assert doc["backends"] == ["bigint"]
        assert doc["wall_seconds"] == 1.5
        prog = doc["programs"]["twig"]
        assert prog["casting"] is True
        assert set(prog["strategies"]) == set(STRATEGY_ORDER)
        offsets = prog["strategies"]["offsets"]
        assert offsets["edges"] > 0
        assert offsets["stats"]["facts"] == offsets["edges"]
        assert offsets["stats"]["backend"] == "bigint"
        # Single-backend pass: no per-backend breakdown keys.
        assert "solve_seconds_by_backend" not in offsets
        # Totals are EngineStats field sums — spot-check one counter.
        assert doc["totals"]["stats"]["facts"] == sum(
            s["stats"]["facts"] for s in prog["strategies"].values()
        )
        assert doc["totals"]["measurements"] == len(data)

    def test_write_baseline_multi_backend(self, tmp_path):
        data = collect_results(
            repeats=1, jobs=1, programs=[by_name("twig")],
            backends=("bigint", "diffprop"),
        )
        path = tmp_path / "BENCH_engine.json"
        write_baseline(str(path), data, repeats=1)
        doc = json.loads(path.read_text())
        assert doc["schema"] == 2
        assert doc["backends"] == ["bigint", "diffprop"]
        offsets = doc["programs"]["twig"]["strategies"]["offsets"]
        per_backend = offsets["solve_seconds_by_backend"]
        assert set(per_backend) == {"bigint", "diffprop"}
        # The primary backend's timing is the v1 solve_seconds field.
        assert offsets["solve_seconds"] == per_backend["bigint"]
        totals = doc["totals"]["min_solve_seconds_sum_by_backend"]
        assert set(totals) == {"bigint", "diffprop"}

    def test_main_writes_baseline(self, tmp_path, capsys):
        path = tmp_path / "base.json"
        rc = main(["--repeats", "1", "--jobs", "1", "--programs", "twig",
                   "--figures", "6", "--write-baseline", str(path)])
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["repeats"] == 1
        assert set(doc["programs"]) == {"twig"}


class TestTimingHistory:
    def test_history_path_naming(self, tmp_path):
        assert history_path("BENCH_engine.json").name == "BENCH_history.jsonl"
        assert history_path(str(tmp_path / "base.json")).name == (
            "base_history.jsonl"
        )
        assert history_path(str(tmp_path / "base.json")).parent == tmp_path

    def test_append_accumulates_records(self, tmp_path):
        data = collect_results(repeats=1, jobs=1, programs=[by_name("twig")])
        base = tmp_path / "BENCH_engine.json"
        write_baseline(str(base), data, repeats=1)
        hist = append_history(str(base), data, repeats=1, wall_seconds=2.5)
        assert hist == tmp_path / "BENCH_history.jsonl"
        append_history(str(base), data, repeats=1)
        lines = [json.loads(ln) for ln in hist.read_text().splitlines()]
        assert len(lines) == 2
        first = lines[0]
        assert first["repeats"] == 1
        assert first["measurements"] == len(data)
        assert first["wall_seconds"] == 2.5
        assert first["min_solve_seconds_sum"] == pytest.approx(
            sum(r.solve_seconds for r in data.values()), abs=1e-5
        )
        assert set(first["min_solve_seconds_by_program"]) == {"twig"}
        assert set(first["min_solve_seconds_sum_by_backend"]) == {"bigint"}
        # The trajectory never touches the precision gate's schema.
        assert json.loads(base.read_text())["schema"] == 2

    def test_main_appends_history_beside_baseline(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        for _ in range(2):
            rc = main(["--repeats", "1", "--jobs", "1", "--programs", "twig",
                       "--figures", "6", "--write-baseline", str(base)])
            assert rc == 0
        hist = tmp_path / "base_history.jsonl"
        assert hist.exists()
        assert len(hist.read_text().splitlines()) == 2
        assert "timing record appended" in capsys.readouterr().err

    def test_multi_backend_history_splits_sums(self, tmp_path):
        data = collect_results(
            repeats=1, jobs=1, programs=[by_name("twig")],
            backends=("bigint", "diffprop"),
        )
        base = tmp_path / "BENCH_engine.json"
        hist = append_history(str(base), data, repeats=1)
        rec = json.loads(hist.read_text())
        assert set(rec["min_solve_seconds_sum_by_backend"]) == {
            "bigint", "diffprop"
        }


class TestBaselineChecker:
    def test_matching_run_passes(self, tmp_path):
        data = collect_results(repeats=1, jobs=1, programs=[by_name("twig")])
        path = tmp_path / "base.json"
        write_baseline(str(path), data, repeats=1)
        ok, report = compare_to_baseline(str(path), data)
        assert ok
        assert "0 mismatches" in report
        assert "timing (informational)" in report

    def test_precision_drift_fails(self, tmp_path):
        data = collect_results(repeats=1, jobs=1, programs=[by_name("twig")])
        path = tmp_path / "base.json"
        write_baseline(str(path), data, repeats=1)
        doc = json.loads(path.read_text())
        doc["programs"]["twig"]["strategies"]["offsets"]["edges"] += 1
        doc["programs"]["twig"]["strategies"]["offsets"]["stats"]["facts"] += 1
        path.write_text(json.dumps(doc))
        ok, report = compare_to_baseline(str(path), data)
        assert not ok
        assert "edges" in report and "stats.facts" in report

    def test_timing_drift_does_not_fail(self, tmp_path):
        data = collect_results(repeats=1, jobs=1, programs=[by_name("twig")])
        path = tmp_path / "base.json"
        write_baseline(str(path), data, repeats=1)
        doc = json.loads(path.read_text())
        for rec in doc["programs"]["twig"]["strategies"].values():
            rec["solve_seconds"] *= 100
            rec["stats"]["solve_seconds"] *= 100
        doc["totals"]["min_solve_seconds_sum"] *= 100
        path.write_text(json.dumps(doc))
        ok, _report = compare_to_baseline(str(path), data)
        assert ok

    def test_missing_measurement_fails(self, tmp_path):
        data = collect_results(repeats=1, jobs=1, programs=SMOKE)
        path = tmp_path / "base.json"
        write_baseline(str(path), data, repeats=1)
        twig_only = {k: v for k, v in data.items() if k[0] == "twig"}
        ok, report = compare_to_baseline(str(path), twig_only)
        assert not ok
        assert "missing from run" in report

    def test_main_check_baseline_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "base.json"
        rc = main(["--repeats", "1", "--jobs", "1", "--programs", "twig",
                   "--figures", "6", "--write-baseline", str(path),
                   "--check-baseline", str(path)])
        assert rc == 0
        assert "0 mismatches" in capsys.readouterr().err
        doc = json.loads(path.read_text())
        doc["programs"]["twig"]["strategies"]["offsets"]["edges"] += 7
        path.write_text(json.dumps(doc))
        rc = main(["--repeats", "1", "--jobs", "1", "--programs", "twig",
                   "--figures", "6", "--check-baseline", str(path)])
        assert rc == 1
