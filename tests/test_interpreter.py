"""Unit tests for the concrete byte-level interpreter (soundness oracle)."""

import pytest

from repro.frontend import program_from_c
from repro.testing import UnsupportedStatement, check_soundness, concrete_facts, run_straightline
from repro.testing.interpreter import PtrVal


def facts_as_names(machine):
    return {
        (src.name, soff, dst.name, doff)
        for src, soff, dst, doff in concrete_facts(machine)
    }


class TestBasicExecution:
    def test_address_of(self):
        prog = program_from_c("int x, *p; void main(void) { p = &x; }")
        m = run_straightline(prog)
        p = prog.objects.lookup("p")
        x = prog.objects.lookup("x")
        assert m.read_ptr(p, 0) == PtrVal(x, 0)

    def test_copy_chain(self):
        prog = program_from_c(
            "int x, *p, *q, *r; void main(void) { p = &x; q = p; r = q; }"
        )
        m = run_straightline(prog)
        r = prog.objects.lookup("r")
        assert m.read_ptr(r, 0).obj.name == "x"

    def test_store_and_load(self):
        prog = program_from_c(
            "int x, *p, **pp, *out;"
            "void main(void) { pp = &p; *pp = &x; out = *pp; }"
        )
        m = run_straightline(prog)
        out = prog.objects.lookup("out")
        assert m.read_ptr(out, 0).obj.name == "x"

    def test_field_write_via_store(self):
        prog = program_from_c(
            "struct S { int *a; int *b; } s; int x;"
            "void main(void) { s.b = &x; }"
        )
        m = run_straightline(prog)
        s = prog.objects.lookup("s")
        assert m.read_ptr(s, 4) is not None
        assert m.read_ptr(s, 4).obj.name == "x"
        assert m.read_ptr(s, 0) is None

    def test_struct_block_copy_moves_pointers(self):
        prog = program_from_c(
            "struct S { int *a; int *b; } s, t; int x, y;"
            "void main(void) { s.a = &x; s.b = &y; t = s; }"
        )
        m = run_straightline(prog)
        t = prog.objects.lookup("t")
        assert m.read_ptr(t, 0).obj.name == "x"
        assert m.read_ptr(t, 4).obj.name == "y"

    def test_uninitialized_deref_is_noop(self):
        prog = program_from_c(
            "int *p, x; void main(void) { x = *p; }"
        )
        m = run_straightline(prog)  # must not raise
        assert m.read_ptr(prog.objects.lookup("p"), 0) is None

    def test_flow_sensitivity_of_oracle(self):
        # The interpreter IS flow-sensitive: the last write wins, unlike
        # the flow-insensitive analysis (which keeps both).
        prog = program_from_c(
            "int x, y, *p; void main(void) { p = &x; p = &y; }"
        )
        m = run_straightline(prog)
        assert m.read_ptr(prog.objects.lookup("p"), 0).obj.name == "y"


class TestPointerSplicing:
    def test_partial_overwrite_destroys_pointer(self):
        # Copying only half of a pointer's bytes must not read back as a
        # complete pointer (the paper's Complication 3 model).
        prog = program_from_c(
            "struct H { short h1; short h2; } h;"
            "int x, *p; char *c;"
            "void main(void) { p = &x; }"
        )
        m = run_straightline(prog)
        p = prog.objects.lookup("p")
        h = prog.objects.lookup("h")
        # Manually splice: copy 2 of p's 4 bytes into h.
        m.copy_bytes(h, 0, p, 0, 2)
        assert m.read_ptr(h, 0) is None

    def test_whole_pointer_survives_byte_copy(self):
        prog = program_from_c("int x, *p; void main(void) { p = &x; }")
        m = run_straightline(prog)
        p = prog.objects.lookup("p")
        h = prog.objects.lookup("x")  # reuse x's 4 bytes as scratch
        m.copy_bytes(h, 0, p, 0, 4)
        assert m.read_ptr(h, 0).obj.name == "x"

    def test_double_absorbs_two_pointers(self):
        # Complication 2 end-to-end: struct R -> double -> struct R.
        prog = program_from_c(
            "struct R { int *r1; int *r2; } r, r2v; double d; int x, y;"
            "void main(void) {"
            "  r.r1 = &x; r.r2 = &y;"
            "  d = *(double *)&r;"
            "  r2v = *(struct R *)&d;"
            "}"
        )
        m = run_straightline(prog)
        r2v = prog.objects.lookup("r2v")
        assert m.read_ptr(r2v, 0).obj.name == "x"
        assert m.read_ptr(r2v, 4).obj.name == "y"


class TestConcreteFacts:
    def test_reports_all_pointers(self):
        prog = program_from_c(
            "struct S { int *a; int *b; } s; int x, y;"
            "void main(void) { s.a = &x; s.b = &y; }"
        )
        m = run_straightline(prog)
        names = facts_as_names(m)
        assert ("s", 0, "x", 0) in names
        assert ("s", 4, "y", 0) in names

    def test_unsupported_statement(self):
        prog = program_from_c(
            "int a, b, c; void main(void) { c = a + b; }"
        )
        with pytest.raises(UnsupportedStatement):
            run_straightline(prog)

    def test_unsupported_statement_pinpoints_site(self):
        prog = program_from_c(
            "int a, *p, x;\n"
            "void main(void) {\n"
            "    p = &x;\n"
            "    a = a + 1;\n"
            "}"
        )
        with pytest.raises(UnsupportedStatement) as exc_info:
            run_straightline(prog)
        err = exc_info.value
        assert err.index is not None
        assert err.line == 4
        assert f"stmt #{err.index}" in str(err)
        assert "(line 4)" in str(err)
        assert err.stmt is not None


class TestCheckSoundness:
    def test_reports_missing_fact(self):
        from repro import CommonInitialSequence, analyze

        prog = program_from_c("int x, *p; void main(void) { p = &x; }")
        result = analyze(prog, CommonInitialSequence())
        m = run_straightline(prog)
        assert check_soundness(result, m) == []
        # Corrupt the result by clearing facts: violation must surface.
        result.facts._pts = [0] * len(result.facts._pts)
        result.facts._by_obj.clear()
        violations = check_soundness(result, m)
        assert violations and "p" in violations[0]
