"""The never-crash contract: corpus regression + adversarial property.

Two guarantees, checked for every registered strategy instance:

- **lenient mode** (``strict=False``) analyzes *anything* the parser
  can be pointed at without an unhandled exception, degrading each
  unsupported construct to a sound conservative approximation and
  recording a structured diagnostic for it;
- **strict mode** either succeeds, or raises a
  :class:`~repro.diag.FrontendError` carrying a diagnostic (and, except
  for whole-file parse errors, source coordinates) — never a bare
  ``RecursionError``/``TypeError``/``KeyError``.

The corpus under ``tests/corpus/`` pins inputs that once violated (or
were designed to violate) this; the hypothesis properties run the
adversarial generator against it.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import STRATEGY_BY_KEY
from repro.ctype.layout import ILP32, Layout
from repro.diag import DiagnosticSink, FrontendError, Severity
from repro.session import AnalysisSession
from repro.suite import ADVERSARIAL, GenConfig, generate_program
from repro.suite.fuzz import check_source, run_campaign

CORPUS = pathlib.Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS.glob("*.c"))

#: Expected lenient-mode diagnostic kinds per corpus file.  Files not
#: listed must analyze cleanly (no diagnostics) in both modes.
EXPECTED_KINDS = {
    "recursive_by_value.c": {"recursive-type"},
    "mutually_recursive.c": {"recursive-type"},
    "member_on_non_struct.c": {"member-on-non-struct"},
    "unknown_identifier.c": {"unknown-identifier"},
    "unknown_member.c": {"unknown-member"},
    "parse_error.c": {"parse-error"},
    "unsupported_type.c": {"unsupported-type"},
    "unbalanced_conditional.c": {"unsupported-directive", "unbalanced-conditional"},
}

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _solve_all(session: AnalysisSession) -> None:
    for key in sorted(STRATEGY_BY_KEY):
        session.solve(STRATEGY_BY_KEY[key](Layout(ILP32)))


# ----------------------------------------------------------------------
# Corpus regression.
# ----------------------------------------------------------------------
class TestCorpus:
    def test_corpus_is_nonempty(self):
        assert len(CORPUS_FILES) >= 10

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=lambda p: p.name
    )
    def test_contract(self, path):
        failures = check_source(path.read_text(), name=path.name)
        assert not failures, "\n".join(map(str, failures))

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=lambda p: p.name
    )
    def test_lenient_diagnostic_kinds(self, path):
        session = AnalysisSession.from_c(
            path.read_text(), name=path.name, strict=False
        )
        _solve_all(session)
        expected = EXPECTED_KINDS.get(path.name, set())
        assert set(session.diagnostics.kinds()) == expected

    @pytest.mark.parametrize(
        "name", sorted(EXPECTED_KINDS), ids=str
    )
    def test_strict_raises_structured(self, name):
        src = (CORPUS / name).read_text()
        with pytest.raises(FrontendError) as exc_info:
            AnalysisSession.from_c(src, name=name, strict=True)
        err = exc_info.value
        assert err.diagnostic.kind in EXPECTED_KINDS[name]
        assert err.severity >= Severity.ERROR
        # Every strict error names the input; all but whole-file parse
        # errors also carry line:column coordinates.
        assert err.loc.file == name
        if err.kind != "parse-error":
            assert err.loc.known, f"no coordinates on {err.diagnostic.one_line()}"
            assert err.loc.line and err.loc.line > 0

    def test_lenient_diagnostics_have_locations(self):
        src = (CORPUS / "member_on_non_struct.c").read_text()
        session = AnalysisSession.from_c(
            src, name="member_on_non_struct.c", strict=False
        )
        for d in session.diagnostics:
            assert d.loc.known
            assert d.loc.file == "member_on_non_struct.c"


# ----------------------------------------------------------------------
# The recursive-by-value regression in detail (the fuzz campaign's
# headline catch: field-path expansion diverged on the cyclic type).
# ----------------------------------------------------------------------
class TestRecursiveByValue:
    SRC = "struct A { struct A a; int *p; };\nstruct A g; int x;\n" \
          "int main(void) { g.p = &x; return 0; }\n"

    def test_strict_rejects_with_coordinates(self):
        with pytest.raises(FrontendError) as exc_info:
            AnalysisSession.from_c(self.SRC, name="rec.c", strict=True)
        assert exc_info.value.kind == "recursive-type"
        assert exc_info.value.loc.line == 1

    def test_lenient_degrades_field_and_still_analyzes(self):
        session = AnalysisSession.from_c(self.SRC, name="rec.c", strict=False)
        _solve_all(session)
        assert set(session.diagnostics.kinds()) == {"recursive-type"}
        # The surviving supported part of the program is still analyzed.
        from repro.ir.refs import FieldRef

        g = session.program.objects.lookup("g")
        result = session.solve(
            STRATEGY_BY_KEY["common_initial_sequence"](Layout(ILP32))
        )
        targets = {r.obj.name for r in result.points_to(FieldRef(g, ("p",)))}
        assert "x" in targets

    def test_layout_engine_guards_handbuilt_cycle(self):
        from repro.ctype.layout import LayoutError
        from repro.ctype.types import Field, StructType, int_t

        cyclic = StructType(tag="A")
        cyclic.define([Field("self", cyclic, None), Field("x", int_t, None)])
        with pytest.raises(LayoutError):
            Layout(ILP32).sizeof(cyclic)


# ----------------------------------------------------------------------
# Properties over the adversarial generator.
# ----------------------------------------------------------------------
class TestAdversarialProperties:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(**SETTINGS)
    def test_never_crashes(self, seed):
        src = generate_program(seed, ADVERSARIAL)
        failures = check_source(src, name=f"<adv:{seed}>", seed=seed)
        assert not failures, "\n".join(map(str, failures)) + "\n" + src

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(**SETTINGS)
    def test_lenient_matches_strict_when_strict_accepts(self, seed):
        """On programs strict mode accepts, lenient is the identity.

        Both modes lower to the same statements, so every points-to set
        agrees — lenient degradation only ever *adds* behavior on inputs
        strict mode rejects.
        """
        src = generate_program(seed, GenConfig(n_statements=25))
        strict_sess = AnalysisSession.from_c(src, name="s.c", strict=True)
        lenient_sess = AnalysisSession.from_c(src, name="s.c", strict=False)
        assert len(lenient_sess.diagnostics) == 0
        strategy = STRATEGY_BY_KEY["common_initial_sequence"]
        strict_res = strict_sess.solve(strategy(Layout(ILP32)))
        lenient_res = lenient_sess.solve(strategy(Layout(ILP32)))
        for obj in strict_sess.program.objects.all_objects():
            other = lenient_sess.program.objects.lookup(obj.name)
            if other is None:
                continue
            assert strict_res.points_to_names(obj) == \
                lenient_res.points_to_names(other), obj.name


# ----------------------------------------------------------------------
# Harness plumbing.
# ----------------------------------------------------------------------
class TestHarness:
    def test_run_campaign_smoke(self):
        assert run_campaign(range(2), ADVERSARIAL) == []

    def test_check_source_reports_violations(self, monkeypatch):
        # Break an internal layer on purpose: the harness must catch the
        # crash in lenient mode and attribute it to a stage.
        from repro.core import engine as engine_mod

        def boom(self, *a, **k):
            raise ZeroDivisionError("injected")

        monkeypatch.setattr(engine_mod.Engine, "solve", boom)
        failures = check_source("int x; int main(void) { return 0; }")
        assert failures
        assert any(f.mode == "lenient" for f in failures)
        assert any(isinstance(f.exc, ZeroDivisionError) for f in failures)

    def test_diagnostics_surface_in_metrics(self):
        from repro.obs.metrics import metrics

        src = (CORPUS / "unknown_member.c").read_text()
        session = AnalysisSession.from_c(src, strict=False)
        result = session.solve(
            STRATEGY_BY_KEY["collapse_always"](Layout(ILP32))
        )
        rec = metrics(result)
        assert rec["diagnostics"]["total"] == len(session.diagnostics)
        assert "unknown-member" in rec["diagnostics"]["by_kind"]

    def test_sink_severity_helpers(self):
        sink = DiagnosticSink()
        sink.report("demo", "note", severity=Severity.NOTE)
        sink.report("demo", "fatal", severity=Severity.FATAL)
        assert sink.has_fatal
        assert sink.worst().severity is Severity.FATAL
        assert sink.kinds() == {"demo": 2}
        assert sink.severities() == {"NOTE": 1, "FATAL": 1}
