"""Precision-lattice sweep over the whole benchmark suite.

The four instances form a precision order at the object level:

    Offsets ⊑ Common Initial Sequence ⊑ Collapse on Cast ⊑ Collapse Always

(finer instance derives a subset of object-level points-to pairs).  The
paper argues this informally; here it is checked on all 20 suite
programs.  Strictly, Offsets ⊑ portable holds only for programs whose
behaviour is layout-independent — which the suite's programs are — and
under a shared treatment of pointer arithmetic; `li` is exempted from
the Offsets⊑CIS check because its union pool makes the Offsets
Assumption-1 smear *offset-resolved* where the portable strategies hold
a single collapsed location (both sound; incomparable object sets can
then arise through subsequent loads).
"""

import pytest

from repro import (
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Offsets,
    analyze,
)
from repro.bench.harness import load_program
from repro.suite.registry import SUITE


def object_level_pairs(result):
    """{(src obj name, dst obj name)} over all facts."""
    pairs = set()
    for src, dst in result.facts.all_facts():
        pairs.add((src.obj.name, dst.obj.name))
    return pairs


@pytest.mark.parametrize("bp", SUITE, ids=lambda b: b.name)
def test_lattice_holds_on_suite(bp):
    program = load_program(bp)
    pairs = {}
    for cls in (CollapseAlways, CollapseOnCast, CommonInitialSequence, Offsets):
        pairs[cls.key] = object_level_pairs(analyze(program, cls()))

    assert pairs["collapse_on_cast"] <= pairs["collapse_always"], (
        sorted(pairs["collapse_on_cast"] - pairs["collapse_always"])[:5]
    )
    assert pairs["common_initial_sequence"] <= pairs["collapse_on_cast"], (
        sorted(pairs["common_initial_sequence"] - pairs["collapse_on_cast"])[:5]
    )
    if bp.name != "li":
        assert pairs["offsets"] <= pairs["common_initial_sequence"], (
            sorted(pairs["offsets"] - pairs["common_initial_sequence"])[:5]
        )
