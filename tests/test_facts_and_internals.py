"""Unit tests for the fact base and engine internals (edges, windows,
subscriptions, cross-subscriptions, memoized normalization)."""

import pytest

from repro.core import CollapseOnCast, Offsets
from repro.core.engine import Engine
from repro.core.facts import FactBase
from repro.core.strategy import Window
from repro.ctype.types import Field, StructType, int_t, ptr
from repro.frontend import program_from_c
from repro.ir.objects import ObjectFactory
from repro.ir.program import Program
from repro.ir.refs import FieldRef, OffsetRef


@pytest.fixture
def objs():
    return ObjectFactory()


def fr(obj, *path):
    return FieldRef(obj, tuple(path))


class TestFactBase:
    def test_add_and_query(self, objs):
        fb = FactBase()
        a = objs.global_var("a", ptr(int_t))
        b = objs.global_var("b", int_t)
        assert fb.add(fr(a), fr(b)) is True
        assert fb.add(fr(a), fr(b)) is False  # duplicate
        assert fb.points_to(fr(a)) == frozenset({fr(b)})
        assert fb.has(fr(a), fr(b))
        assert not fb.has(fr(b), fr(a))

    def test_edge_count(self, objs):
        fb = FactBase()
        a = objs.global_var("a", ptr(int_t))
        b = objs.global_var("b", int_t)
        c = objs.global_var("c", int_t)
        fb.add(fr(a), fr(b))
        fb.add(fr(a), fr(c))
        assert fb.edge_count() == 2
        assert len(fb) == 2

    def test_refs_of_obj(self, objs):
        fb = FactBase()
        s = StructType("S").define([Field("x", ptr(int_t)), Field("y", ptr(int_t))])
        a = objs.global_var("a", s)
        b = objs.global_var("b", int_t)
        fb.add(fr(a, "x"), fr(b))
        fb.add(fr(a, "y"), fr(b))
        assert fb.refs_of_obj(a) == frozenset({fr(a, "x"), fr(a, "y")})
        assert fb.refs_of_obj(b) == frozenset()

    def test_all_facts_and_pretty(self, objs):
        fb = FactBase()
        a = objs.global_var("a", ptr(int_t))
        b = objs.global_var("b", int_t)
        fb.add(fr(a), fr(b))
        assert list(fb.all_facts()) == [(fr(a), fr(b))]
        assert "a -> {b}" in fb.pretty()

    def test_pretty_limit(self, objs):
        fb = FactBase()
        t = objs.global_var("t", int_t)
        for i in range(5):
            src = objs.global_var(f"v{i}", ptr(int_t))
            fb.add(fr(src), fr(t))
        assert "..." in fb.pretty(limit=2)


class TestEngineEdges:
    def _engine(self, strategy=None):
        program = Program()
        return Engine(program, strategy or CollapseOnCast()), program

    def test_copy_edge_propagates_existing_and_future(self):
        engine, program = self._engine()
        a = program.objects.global_var("a", ptr(int_t))
        b = program.objects.global_var("b", ptr(int_t))
        x = program.objects.global_var("x", int_t)
        y = program.objects.global_var("y", int_t)
        engine.add_fact(fr(a), fr(x))
        engine.install_copy_edge(fr(a), fr(b))
        # Existing fact propagated immediately.
        assert engine.facts.has(fr(b), fr(x))
        # Future facts flow along the edge once the worklist drains.
        engine.add_fact(fr(a), fr(y))
        engine.drain()
        assert engine.facts.has(fr(b), fr(y))

    def test_copy_edge_self_loop_ignored(self):
        engine, program = self._engine()
        a = program.objects.global_var("a", ptr(int_t))
        engine.install_copy_edge(fr(a), fr(a))
        assert engine.stats.copy_edges == 0

    def test_copy_edge_deduplicated(self):
        engine, program = self._engine()
        a = program.objects.global_var("a", ptr(int_t))
        b = program.objects.global_var("b", ptr(int_t))
        engine.install_copy_edge(fr(a), fr(b))
        engine.install_copy_edge(fr(a), fr(b))
        assert engine.stats.copy_edges == 1

    def test_window_propagation(self):
        strategy = Offsets()
        engine, program = self._engine(strategy)
        s = StructType("W").define([Field("p", ptr(int_t)), Field("q", ptr(int_t))])
        a = program.objects.global_var("a", s)
        b = program.objects.global_var("b", s)
        x = program.objects.global_var("x", int_t)
        engine.add_fact(OffsetRef(a, 4), OffsetRef(x, 0))
        engine.install_window(Window(dst=OffsetRef(b, 0), src=OffsetRef(a, 0), size=8))
        assert engine.facts.has(OffsetRef(b, 4), OffsetRef(x, 0))

    def test_window_respects_bounds(self):
        strategy = Offsets()
        engine, program = self._engine(strategy)
        s = StructType("W2").define([Field("p", ptr(int_t)), Field("q", ptr(int_t))])
        small = StructType("W3").define([Field("p", ptr(int_t))])
        a = program.objects.global_var("a2", s)
        b = program.objects.global_var("b2", small)
        x = program.objects.global_var("x2", int_t)
        engine.add_fact(OffsetRef(a, 4), OffsetRef(x, 0))
        # Copy 8 bytes into a 4-byte object: offset 4 is out of bounds.
        engine.install_window(Window(dst=OffsetRef(b, 0), src=OffsetRef(a, 0), size=8))
        assert not engine.facts.has(OffsetRef(b, 4), OffsetRef(x, 0))

    def test_subscription_replay_and_dedup(self):
        engine, program = self._engine()
        p = program.objects.global_var("p", ptr(int_t))
        x = program.objects.global_var("x", int_t)
        calls = []
        engine.add_fact(fr(p), fr(x))
        engine.subscribe(fr(p), calls.append)
        assert calls == [fr(x)]
        # Same target delivered twice -> callback runs once.
        engine.subscribe(fr(p), calls.append)
        assert len(calls) == 2  # one per subscription, not per delivery

    def test_cross_subscribe_pairs(self):
        engine, program = self._engine()
        a = program.objects.global_var("a", ptr(int_t))
        b = program.objects.global_var("b", ptr(int_t))
        x = program.objects.global_var("x", int_t)
        y = program.objects.global_var("y", int_t)
        pairs = []
        engine.cross_subscribe(fr(a), fr(b), lambda u, v: pairs.append((u, v)))
        engine.add_fact(fr(a), fr(x))
        engine.drain()
        engine.add_fact(fr(b), fr(y))
        engine.drain()
        assert (fr(x), fr(y)) in pairs

    def test_budget(self):
        engine, program = self._engine()
        engine.max_facts = 1
        a = program.objects.global_var("a", ptr(int_t))
        x = program.objects.global_var("x", int_t)
        y = program.objects.global_var("y", int_t)
        engine.add_fact(fr(a), fr(x))
        from repro.core.engine import AnalysisBudgetExceeded

        with pytest.raises(AnalysisBudgetExceeded):
            engine.add_fact(fr(a), fr(y))

    def test_norm_cache(self):
        engine, program = self._engine()
        a = program.objects.global_var("a", ptr(int_t))
        r1 = engine.norm_obj(a)
        r2 = engine.norm_obj(a)
        assert r1 is r2 or r1 == r2


class TestResultHelpers:
    def test_points_to_variants(self):
        from repro import CommonInitialSequence, analyze

        prog = program_from_c(
            "struct S { int *a; } s; int x; void main(void) { s.a = &x; }"
        )
        r = analyze(prog, CommonInitialSequence())
        s = prog.objects.lookup("s")
        # Object, raw FieldRef, and pre-normalized ref all work.
        assert r.points_to_names(FieldRef(s, ("a",))) == {"x"}
        norm = r.strategy.normalize(FieldRef(s, ("a",)))
        assert r.points_to(norm) == r.points_to(FieldRef(s, ("a",)))

    def test_pointer_of_deref_type_error(self):
        from repro import CommonInitialSequence, analyze
        from repro.ir.stmts import Copy

        prog = program_from_c("int a, b; void main(void) { a = b; }")
        r = analyze(prog, CommonInitialSequence())
        st = next(iter(prog.functions["main"].stmts))
        assert isinstance(st, Copy)
        with pytest.raises(TypeError):
            r.pointer_of_deref(st)
