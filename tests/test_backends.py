"""Propagation-backend equivalence: every backend, one fixpoint.

The backend layer (:mod:`repro.core.backend`) may change *how* deltas
are pushed — per-pop big-int unions, difference-propagation frontiers,
round-based dense closure — but never *what* the analysis computes.
This file pins that contract:

- a differential matrix over the whole benchmark suite — every program,
  every strategy, every registered backend — against the dict-based
  reference solver (facts, per-ref queries, deref profile, and the
  order-independent counters must all be identical);
- forced-path tests for the numpy backend's internal kernels (dense
  rounds on tiny graphs, the matmul closure) and its fallback rules
  (numpy unavailable, graph below the dense threshold);
- the selection seams: ``Engine(backend=...)``, session caching,
  ``REPRO_BACKEND``, the ``--backend`` CLI flag, and ``trace=True``
  forcing bigint with a recorded diagnostic;
- a fixed-seed adversarial lenient-mode fuzz pass through each backend
  (the never-crash contract is backend-independent).
"""

from __future__ import annotations

import pytest

from repro import CommonInitialSequence, analyze, program_from_c
from repro.clients.derefstats import deref_stats
from repro.core import STRATEGY_BY_KEY
from repro.core.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_VAR,
    BigintBackend,
    NumpyBackend,
    backend_name,
    resolve_backend,
)
from repro.core.engine import Engine
from repro.core.reference import reference_analyze
from repro.diag import DiagnosticSink
from repro.session import AnalysisSession
from repro.suite.fuzz import run_campaign
from repro.suite.registry import SUITE, load_source

#: Stats fields that legitimately differ between backends / the
#: reference solver (how the fixpoint was reached, not what it is).
_HOW_STATS = {
    "solve_seconds", "sccs_collapsed", "props_saved",
    "backend", "dense_rounds", "accel_active",
    "frontier_bits_suppressed",
    "incremental_solves", "delta_stmts", "reused_graph_refs",
}

STRATEGY_KEYS = sorted(STRATEGY_BY_KEY)
BACKEND_KEYS = sorted(BACKENDS)


def _gated(stats) -> dict:
    return {k: v for k, v in stats.as_dict().items() if k not in _HOW_STATS}


# ---------------------------------------------------------------------------
# The differential matrix: suite x strategies x backends vs. reference.
# ---------------------------------------------------------------------------

_programs: dict = {}
_references: dict = {}


def _program(name: str):
    prog = _programs.get(name)
    if prog is None:
        bp = next(p for p in SUITE if p.name == name)
        prog = _programs[name] = program_from_c(load_source(bp), name=name)
    return prog


def _reference(name: str, key: str):
    ref = _references.get((name, key))
    if ref is None:
        ref = _references[(name, key)] = reference_analyze(
            _program(name), STRATEGY_BY_KEY[key]()
        )
    return ref


@pytest.mark.parametrize("backend", BACKEND_KEYS)
@pytest.mark.parametrize("key", STRATEGY_KEYS)
@pytest.mark.parametrize("name", [bp.name for bp in SUITE])
def test_suite_matrix_matches_reference(name, key, backend) -> None:
    """Every (program, strategy, backend) cell equals the reference."""
    ref = _reference(name, key)
    res = analyze(_program(name), STRATEGY_BY_KEY[key](), backend=backend)
    assert res.stats.backend == backend
    assert set(res.facts.all_facts()) == set(ref.facts.all_facts())
    assert res.facts.edge_count() == ref.facts.edge_count()
    assert deref_stats(res).average == deref_stats(ref).average
    assert _gated(res.stats) == _gated(ref.stats)


def test_backends_agree_on_per_ref_queries() -> None:
    """Per-ref decode path: spot-check the largest suite program."""
    ref = _reference("bc", "common_initial_sequence")
    for backend in BACKEND_KEYS:
        res = analyze(
            _program("bc"), CommonInitialSequence(), backend=backend
        )
        for src in ref.facts.sources():
            assert res.facts.points_to(src) == ref.facts.points_to(src)


# ---------------------------------------------------------------------------
# Numpy backend internals: forced kernels and fallback rules.
# ---------------------------------------------------------------------------

_CYCLE_SRC = """
struct S { int *p; int *q; };
int x, y;
struct S a, b, c;
void main(void) {
    int **pp;
    a.p = &x;
    b = a; a = c; c = b;   /* copy cycle a -> b -> c -> a */
    pp = &a.q; *pp = &y;
}
"""


def _cycle_program():
    return program_from_c(_CYCLE_SRC, name="cycle.c")


def test_numpy_forced_dense_rounds() -> None:
    """min_dense_refs=0 forces dense rounds even on a tiny program."""
    program = _cycle_program()
    base = analyze(program, CommonInitialSequence(), backend="bigint")
    res = analyze(
        program, CommonInitialSequence(),
        backend=NumpyBackend(min_dense_refs=0),
    )
    assert res.stats.dense_rounds > 0
    assert set(res.facts.all_facts()) == set(base.facts.all_facts())


def test_numpy_forced_matmul_kernel() -> None:
    """dense_kernel_edges=0 routes the closure through the matmul."""
    program = _cycle_program()
    base = analyze(program, CommonInitialSequence(), backend="bigint")
    res = analyze(
        program, CommonInitialSequence(),
        backend=NumpyBackend(min_dense_refs=0, dense_kernel_edges=0),
    )
    assert res.stats.dense_rounds > 0
    assert set(res.facts.all_facts()) == set(base.facts.all_facts())


def test_numpy_eagerly_collapses_copy_cycles() -> None:
    """The dense snapshot merges whole copy SCCs (the LCD twin)."""
    res = analyze(
        _cycle_program(), CommonInitialSequence(),
        backend=NumpyBackend(min_dense_refs=0),
    )
    assert res.stats.sccs_collapsed > 0


def test_numpy_falls_back_without_numpy(monkeypatch) -> None:
    """available_numpy() -> None: whole drain runs on diffprop."""
    import repro.core.backend as backend_mod

    monkeypatch.setattr(backend_mod, "available_numpy", lambda: None)
    program = _cycle_program()
    base = analyze(program, CommonInitialSequence(), backend="bigint")
    res = analyze(program, CommonInitialSequence(), backend="numpy")
    assert res.stats.dense_rounds == 0          # the fallback signal
    assert res.stats.backend == "numpy"         # still reports selection
    assert set(res.facts.all_facts()) == set(base.facts.all_facts())


def test_numpy_falls_back_below_dense_threshold() -> None:
    """Tiny graphs never pay dense-round overhead (default threshold)."""
    res = analyze(_cycle_program(), CommonInitialSequence(), backend="numpy")
    assert res.stats.dense_rounds == 0


# ---------------------------------------------------------------------------
# Difference propagation observable behavior.
# ---------------------------------------------------------------------------


def test_diffprop_suppresses_frontier_bits() -> None:
    """On a real program the frontiers must actually suppress work."""
    res = analyze(_program("bc"), CommonInitialSequence(), backend="diffprop")
    assert res.stats.frontier_bits_suppressed > 0


def test_incremental_resolve_per_backend() -> None:
    """add_statements re-solves match a from-scratch grown solve."""
    from repro.ir.refs import FieldRef
    from repro.ir.stmts import AddrOf

    for backend in BACKEND_KEYS:
        session = AnalysisSession.from_c(
            "int x, y, *p;\nvoid main(void) { p = &x; }",
            backend=backend,
        )
        res = session.solve(CommonInitialSequence())
        objs = session.program.objects
        p, y = objs.lookup("p"), objs.lookup("y")
        session.add_statements([AddrOf(p, FieldRef(y, ()))], function="main")
        assert res.points_to_names(p) == {"x", "y"}
        assert res.stats.incremental_solves == 1


# ---------------------------------------------------------------------------
# Selection seams.
# ---------------------------------------------------------------------------


def test_backend_name_resolution(monkeypatch) -> None:
    monkeypatch.delenv(ENV_VAR, raising=False)
    assert backend_name(None) == DEFAULT_BACKEND
    assert backend_name("diffprop") == "diffprop"
    assert backend_name(BigintBackend()) == "bigint"
    monkeypatch.setenv(ENV_VAR, "diffprop")
    assert backend_name(None) == "diffprop"
    assert resolve_backend(None).name == "diffprop"
    with pytest.raises(KeyError):
        backend_name("no-such-backend")


def test_env_var_selects_engine_backend(monkeypatch) -> None:
    monkeypatch.setenv(ENV_VAR, "diffprop")
    res = analyze(_cycle_program(), CommonInitialSequence())
    assert res.stats.backend == "diffprop"


def test_session_caches_per_backend() -> None:
    session = AnalysisSession.from_c("int x, *p;\nvoid main(void) { p = &x; }")
    a = session.solve(CommonInitialSequence(), backend="bigint")
    b = session.solve(CommonInitialSequence(), backend="diffprop")
    assert a is not b
    assert a is session.solve(CommonInitialSequence(), backend="bigint")
    assert a.stats.backend == "bigint" and b.stats.backend == "diffprop"


def test_trace_forces_bigint_with_diagnostic() -> None:
    sink = DiagnosticSink()
    program = _cycle_program()
    eng = Engine(
        program, CommonInitialSequence(), trace=True,
        backend="numpy", diagnostics=sink,
    )
    assert eng.backend.name == "bigint"
    assert eng.stats.backend == "bigint"
    kinds = [d.kind for d in sink]
    assert "backend-forced-bigint" in kinds
    # An explicit bigint request under tracing stays silent.
    sink2 = DiagnosticSink()
    Engine(program, CommonInitialSequence(), trace=True,
           backend="bigint", diagnostics=sink2)
    assert not [d for d in sink2 if d.kind == "backend-forced-bigint"]


def test_cli_backend_flag(tmp_path, capsys) -> None:
    from repro.__main__ import main

    src = tmp_path / "t.c"
    src.write_text("int x, *p;\nvoid main(void) { p = &x; }\n")
    for backend in BACKEND_KEYS:
        assert main([str(src), "--backend", backend, "-q", "p"]) == 0
        assert "'x'" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Never-crash, per backend.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKEND_KEYS)
def test_adversarial_fuzz_smoke_per_backend(backend) -> None:
    """Fixed-seed adversarial campaign: no contract violations."""
    failures = run_campaign(range(12), strategy_keys=None, backend=backend)
    assert failures == [], "\n".join(str(f) for f in failures)
