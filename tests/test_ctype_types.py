"""Unit tests for the C type representation."""

import pytest

from repro.ctype.types import (
    Field,
    FloatType,
    IntType,
    StructType,
    UnionType,
    array_of,
    char,
    double_t,
    func,
    int_t,
    is_aggregate,
    is_pointerlike,
    is_scalar,
    ptr,
    strip_quals,
    uint,
    void,
)


class TestScalars:
    def test_int_kinds(self):
        assert repr(int_t) == "int"
        assert repr(uint) == "unsigned int"
        assert repr(IntType("long long", False)) == "unsigned long long"

    def test_bad_int_kind_rejected(self):
        with pytest.raises(ValueError):
            IntType("quad")

    def test_bad_float_kind_rejected(self):
        with pytest.raises(ValueError):
            FloatType("half")

    def test_scalar_predicates(self):
        assert is_scalar(int_t)
        assert is_scalar(ptr(int_t))
        assert is_scalar(double_t)
        assert not is_scalar(void)

    def test_quals_round_trip(self):
        ci = int_t.with_quals(["const"])
        assert ci.quals == ("const",)
        assert int_t.quals == ()  # original untouched
        assert strip_quals(ci).quals == ()

    def test_with_quals_identity_when_unchanged(self):
        assert int_t.with_quals([]) is int_t


class TestDerived:
    def test_pointer_repr(self):
        assert repr(ptr(ptr(char))) == "char**"

    def test_array(self):
        a = array_of(int_t, 10)
        assert a.length == 10
        assert repr(a) == "int[10]"
        assert repr(array_of(int_t)) == "int[]"
        assert is_aggregate(a)

    def test_function(self):
        f = func(int_t, ptr(char), varargs=True)
        assert f.ret is int_t
        assert f.varargs
        assert "..." in repr(f)

    def test_pointerlike(self):
        assert is_pointerlike(ptr(int_t))
        assert is_pointerlike(array_of(char, 4))
        assert is_pointerlike(func(void))
        assert not is_pointerlike(int_t)


class TestStructs:
    def make_s(self):
        return StructType("S").define([Field("a", ptr(int_t)), Field("b", int_t)])

    def test_complete_and_members(self):
        s = self.make_s()
        assert s.is_complete
        assert [f.name for f in s.members()] == ["a", "b"]
        assert s.field_named("b").type is int_t
        assert s.has_field("a") and not s.has_field("z")

    def test_field_index_and_following(self):
        s = self.make_s()
        assert s.field_index("a") == 0
        assert [f.name for f in s.fields_after("a")] == ["b"]
        assert s.fields_after("b") == ()

    def test_incomplete_struct(self):
        s = StructType("Fwd")
        assert not s.is_complete
        with pytest.raises(ValueError):
            s.members()

    def test_double_define_rejected(self):
        s = self.make_s()
        with pytest.raises(ValueError):
            s.define([])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValueError):
            StructType("D").define([Field("x", int_t), Field("x", char)])

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            self.make_s().field_named("nope")

    def test_identity_semantics(self):
        a = self.make_s()
        b = self.make_s()
        assert a is not b
        assert a != b  # identity equality
        assert len({a, b}) == 2

    def test_self_referential(self):
        node = StructType("Node")
        node.define([Field("data", int_t), Field("next", ptr(node))])
        assert node.field_named("next").type.pointee is node

    def test_union_is_record(self):
        u = UnionType("U").define([Field("i", int_t), Field("p", ptr(char))])
        assert u.is_union
        assert u.is_record
        assert not u.is_struct

    def test_struct_predicates(self):
        s = self.make_s()
        assert s.is_struct and s.is_record and not s.is_union
