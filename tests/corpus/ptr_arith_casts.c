/* Pointer arithmetic, pointer<->integer round-trips, and byte-offset
 * pointer forging through char* — the Assumption-1 stress cases. */
struct S { int a; int *f; };
struct S s;
struct S *sp;
int g;
int *p, *q;
void *vp;
int main(void) {
    p = &g;
    q = p + 3;
    g = (int)(long)p;
    p = (int *)(long)g;
    vp = q;
    p = (int *)vp;
    sp = &s;
    p = (int *)((char *)sp + 4);
    return 0;
}
