struct B;
struct A { struct B b; };
struct B { struct A a; };
struct A g;
int main(void) { return 0; }
