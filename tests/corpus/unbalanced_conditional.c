#if FOO
int g;
#else
int h;
int main(void) { return 0; }
