_Complex double z;
int main(void) { return 0; }
