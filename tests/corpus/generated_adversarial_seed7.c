/* Frozen output of generate_program(7, ADVERSARIAL) — a broad
 * adversarial mix in one translation unit. */
struct Rec;
struct S0 {
    int f0;
    int *f1;
    int *f2;
};
struct S1 {
    int *f0;
};
struct S2 {
    int f0;
};
struct S3 {
    int f0;
};
struct Rec {
    struct Rec *next;
    int *payload;
};
struct Zero {
};
union U0 {
    int *u0;
    long u1;
    struct S0 u2;
};
union U1 {
    int *u0;
    long u1;
    struct S0 u2;
};
int g0;
int g1;
int g2;
int g3;
int g4;
int g5;
int *p0;
int *p1;
int *p2;
int *p3;
int *p4;
int *p5;
struct S1 sv0;
struct S1 *sp0;
struct S0 sv1;
struct S0 *sp1;
struct Rec sv2;
struct Rec *sp2;
struct S1 sv3;
struct S1 *sp3;
union U0 uv0;
union U1 uv1;
double d0;
double d1;
void *vp0;
void *vp1;
int *(*fp0)(int *);
struct Rec r0;
struct Rec *rp0;
int *adv_id(int *q) { return q; }
int adv_sum(int n, ...) { return n; }
int main(void) {
    p4 = &g2 + 1;
    p2 = (int *)((char *)sp1 + 1);
    sv0.f0 = &g3;
    p2 = p3;
    *sp2 = sv2;
    p1 = (int *)(long)g0;
    p0 = &g4 + 3;
    adv_sum(2, p1, &g3);
    sv2.payload = &g5;
    p3 = rp0->next->payload;
    p2 = &g3 + 0;
    p2 = g2 ? p5 : (int *)vp1;
    sv0 = sv3;
    p3 = (int *)((char *)sp0 + 0);
    p1 = (*fp0)(&g3);
    rp0 = &r0;
    p3 = (int *)vp1;
    p3 = sp3->f0;
    p1 = sv0.f0;
    p4 = uv0.u0;
    fp0 = adv_id;
    p1 = (int *)((char *)sp2 + 8);
    p3 = &g5;
    p3 = rp0->next->payload;
    p1 = &g3 + 1;
    p0 = (int *)((char *)sp0 + 0);
    sv2.payload = &g0;
    p1 = p5;
    adv_sum(2, p4, &g2);
    sv3.f0 = &g3;
    sv1.f1 = &g5;
    p1 = (*fp0)(&g4);
    sp2 = (struct Rec *)&uv0;
    p1 = sp0->f0;
    uv1.u1 = (long)uv1.u0;
    p5 = uv0.u0;
    sp3->f0 = &g4;
    *sp2 = sv2;
    p1 = &g3 + 1;
    p4 = rp0->next->payload;
    sv3.f0 = &g3;
    p5 = p2;
    p3 = g5 ? p3 : (int *)vp1;
    p1 = sv1.f1;
    p1 = rp0->next->payload;
    p0 = sv0.f0;
    p1 = sv3.f0;
    uv1.u1 = (long)uv1.u0;
    p2 = (int *)((char *)sp2 + 8);
    p5 = sv0.f0;
    p4 = p1;
    p3 = &g1;
    p1 = sv1.f2;
    sv0.f0 = &g5;
    *sp0 = sv0;
    fp0 = &adv_id;
    sv3.f0 = &g4;
    p3 = &g3 + 2;
    uv1.u0 = &g1;
    sv1.f2 = &g1;
    return 0;
}
