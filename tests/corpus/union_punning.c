/* Type punning through a union, plus a union-to-struct cast.  Clean
 * under both modes today; kept as a regression against strategy-layer
 * crashes on union layouts. */
union U {
    int *up;
    long ul;
    double ud;
};
struct S { int *f0; int f1; };
union U u;
struct S *sp;
int g;
int *p;
int main(void) {
    u.up = &g;
    p = u.up;
    u.ul = (long)u.up;
    sp = (struct S *)&u;
    p = sp->f0;
    return 0;
}
