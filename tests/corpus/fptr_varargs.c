/* Function pointers (direct, address-of, indirect call syntax) and a
 * varargs call mixing pointers and scalars. */
int x;
int *id(int *q) { return q; }
int vsum(int n, ...) { return n; }
int *(*fp)(int *);
int *p;
int main(void) {
    fp = id;
    p = fp(&x);
    fp = &id;
    p = (*fp)(&x);
    vsum(2, p, &x, 7);
    return 0;
}
