struct S { int x; };
struct S s; int g;
int main(void) { g = s.nosuch; return 0; }
