struct Z {};
struct Z z; struct Z *pz;
int main(void) { pz = &z; *pz = z; return 0; }
