struct A { struct A a; int *p; };
struct A g;
int x;
int main(void) { g.p = &x; return 0; }
