struct S { int x; };
struct S s; int g; int *p;
int main(void) { p = &s.x; g = g.field; return 0; }
