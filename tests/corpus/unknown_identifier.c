int *p;
int main(void) { p = &undeclared; return 0; }
