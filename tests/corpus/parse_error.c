int g = ;
int main(void) { return 0 }
