"""Unit tests for the mini-preprocessor and parse wrapper."""

import pytest

from repro.frontend.parse import PreprocessorError, parse_c, preprocess


class TestComments:
    def test_block_comment_stripped(self):
        out = preprocess("int x; /* hello */ int y;")
        assert "hello" not in out
        assert "int x;" in out and "int y;" in out

    def test_line_comment_stripped(self):
        out = preprocess("int x; // trailing\nint y;")
        assert "trailing" not in out

    def test_multiline_comment_preserves_line_count(self):
        src = "int a;\n/* one\ntwo\nthree */\nint b;"
        out = preprocess(src)
        assert out.count("\n") == src.count("\n")

    def test_comment_containing_directive(self):
        out = preprocess("/* #include <foo.h> */ int x;")
        assert "int x;" in out


class TestDefines:
    def test_object_macro(self):
        out = preprocess("#define N 10\nint a[N];")
        assert "int a[10];" in out

    def test_macro_chains(self):
        out = preprocess("#define A B\n#define B 3\nint x = A;")
        assert "int x = 3;" in out

    def test_word_boundary_respected(self):
        out = preprocess("#define N 10\nint NN = N;")
        assert "int NN = 10;" in out

    def test_undef(self):
        out = preprocess("#define N 10\n#undef N\nint N;")
        assert "int N;" in out

    def test_function_like_macro_rejected(self):
        with pytest.raises(PreprocessorError):
            preprocess("#define SQ(x) ((x)*(x))\n")

    def test_null_predefined(self):
        out = preprocess("char *p = NULL;")
        assert "((void*)0)" in out

    def test_external_defines(self):
        out = preprocess("int x = FLAG;", defines={"FLAG": "7"})
        assert "int x = 7;" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define DEBUG 1\n#ifdef DEBUG\nint d;\n#endif\n")
        assert "int d;" in out

    def test_ifdef_skipped(self):
        out = preprocess("#ifdef DEBUG\nint d;\n#endif\nint k;")
        assert "int d;" not in out
        assert "int k;" in out

    def test_ifndef_else(self):
        out = preprocess("#ifndef X\nint a;\n#else\nint b;\n#endif\n")
        assert "int a;" in out and "int b;" not in out

    def test_nested(self):
        src = "#define A 1\n#ifdef A\n#ifdef B\nint x;\n#endif\nint y;\n#endif\n"
        out = preprocess(src)
        assert "int x;" not in out and "int y;" in out

    def test_unterminated_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef A\nint x;")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif\n")

    def test_defines_inside_inactive_region_ignored(self):
        out = preprocess("#ifdef NO\n#define N 1\n#endif\nint a[N];",
                         defines={"N": "4"})
        assert "int a[4];" in out


class TestIncludesAndUnknown:
    def test_include_dropped(self):
        out = preprocess('#include <stdio.h>\nint x;')
        assert "stdio" not in out

    def test_unknown_directive_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#pragma pack(1)\nint x;")


class TestParse:
    def test_prelude_provides_libc(self):
        ast = parse_c("void f(void) { char *p = malloc(10); free(p); }")
        assert ast is not None

    def test_line_numbers_survive_prelude(self):
        ast = parse_c("int x;\nint y;\n\nint z;", filename="t.c")
        decl = [d for d in ast.ext if getattr(d, "name", None) == "z"][0]
        assert decl.coord.line == 4
        assert "t.c" in str(decl.coord.file)

    def test_without_prelude(self):
        ast = parse_c("int main(void) { return 0; }", use_prelude=False)
        assert len(ast.ext) == 1
