"""Differential coverage for the library-summary layer (interproc.py).

The context-insensitive call layer handles extern functions through
summaries (§5: "summaries of the potential pointer assignments in each
library function").  These tests pin the three summary families —
``memcpy``-style block copies, ``strcpy``/``strchr``-style
return-aliases-argument, and the default unknown-extern fallback —
against the reference solver: for every program and every strategy, the
production engine and the dict-of-frozensets reference implementation
must derive exactly the same points-to relation and the same
order-independent counters.  Semantic spot-checks assert the summaries
actually *do* what they claim (a differential test alone would pass if
both engines ignored the call).
"""

from __future__ import annotations

import pytest

from repro import (
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Offsets,
    analyze,
    program_from_c,
)
from repro.bench.harness import _UNGATED_STATS
from repro.core.reference import reference_analyze

STRATEGIES = (CollapseAlways, CollapseOnCast, CommonInitialSequence, Offsets)

MEMCPY_STRUCT = """
struct S { int *a; int *b; };
struct S src, dst;
int x, y;
struct S *sp;
void main(void) {
    src.a = &x;
    src.b = &y;
    memcpy(&dst, &src, sizeof(struct S));
    sp = memcpy(&dst, &src, sizeof(struct S));
}
"""

MEMCPY_VIA_POINTERS = """
struct T { char *name; struct T *next; };
struct T t1, t2;
char c0;
struct T *u, *v;
void main(void) {
    t1.name = &c0;
    t1.next = &t2;
    u = &t1;
    v = &t2;
    memcpy(v, u, sizeof(struct T));
}
"""

RET_GETS_ARG = """
char buf[8], line[8];
char *r, *s, *t;
void main(void) {
    r = strcpy(buf, line);
    s = strchr(buf, 65);
    t = fgets(line, 8, 0);
}
"""

DEFAULT_EXTERN = """
int x, y;
int *p, *q, *r;
void main(void) {
    p = &x;
    q = &y;
    r = mystery(p, q);
}
"""

DEFAULT_EXTERN_NO_LHS = """
int x;
int *p;
void main(void) {
    p = &x;
    mystery2(p);
}
"""

ALL_PROGRAMS = {
    "memcpy_struct": MEMCPY_STRUCT,
    "memcpy_via_pointers": MEMCPY_VIA_POINTERS,
    "ret_gets_arg": RET_GETS_ARG,
    "default_extern": DEFAULT_EXTERN,
    "default_extern_no_lhs": DEFAULT_EXTERN_NO_LHS,
}


def _gated(stats) -> dict:
    return {k: v for k, v in stats.as_dict().items() if k not in _UNGATED_STATS}


@pytest.mark.parametrize("name", sorted(ALL_PROGRAMS), ids=str)
@pytest.mark.parametrize("cls", STRATEGIES, ids=lambda c: c.key)
def test_summaries_match_reference(name, cls):
    program = program_from_c(ALL_PROGRAMS[name], name=name)
    strategy = cls()
    fast = analyze(program, strategy)
    ref = reference_analyze(program, strategy)
    assert set(fast.facts.all_facts()) == set(ref.facts.all_facts())
    assert fast.facts.edge_count() == ref.facts.edge_count()
    for src in ref.facts.sources():
        assert fast.facts.points_to(src) == ref.facts.points_to(src)
    assert _gated(fast.stats) == _gated(ref.stats)


class TestMemcpySemantics:
    @pytest.mark.parametrize("cls", STRATEGIES, ids=lambda c: c.key)
    def test_struct_fields_copied(self, cls):
        result = analyze(program_from_c(MEMCPY_STRUCT), cls())
        objs = result.program.objects
        dst = objs.lookup("dst")
        # The copy covers the whole destination: both pointer fields of
        # ``dst`` may now point where ``src``'s do (exactly which field
        # holds which target depends on the strategy's field-sensitivity,
        # so assert at whole-object granularity).
        names = set()
        for src_ref, tgt in result.facts.all_facts():
            if src_ref.obj is dst:
                names.add(tgt.obj.name)
        assert names == {"x", "y"}

    @pytest.mark.parametrize("cls", STRATEGIES, ids=lambda c: c.key)
    def test_memcpy_returns_dst(self, cls):
        result = analyze(program_from_c(MEMCPY_STRUCT), cls())
        sp = result.program.objects.lookup("sp")
        assert "dst" in result.points_to_names(sp)


class TestRetGetsArgSemantics:
    @pytest.mark.parametrize("cls", STRATEGIES, ids=lambda c: c.key)
    def test_return_aliases_first_argument(self, cls):
        result = analyze(program_from_c(RET_GETS_ARG), cls())
        objs = result.program.objects
        assert result.points_to_names(objs.lookup("r")) == {"buf"}
        assert result.points_to_names(objs.lookup("s")) == {"buf"}
        assert result.points_to_names(objs.lookup("t")) == {"line"}


class TestDefaultExternSemantics:
    @pytest.mark.parametrize("cls", STRATEGIES, ids=lambda c: c.key)
    def test_result_may_alias_any_pointer_argument(self, cls):
        result = analyze(program_from_c(DEFAULT_EXTERN), cls())
        r = result.program.objects.lookup("r")
        assert result.points_to_names(r) == {"x", "y"}

    @pytest.mark.parametrize("cls", STRATEGIES, ids=lambda c: c.key)
    def test_no_lhs_is_harmless(self, cls):
        result = analyze(program_from_c(DEFAULT_EXTERN_NO_LHS), cls())
        p = result.program.objects.lookup("p")
        assert result.points_to_names(p) == {"x"}
