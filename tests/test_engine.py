"""Integration tests of the inference engine: interprocedural analysis,
heap objects, function pointers, library summaries, and engine mechanics."""

import pytest

from conftest import pts_names, run

from repro import CollapseOnCast, analyze_c
from repro.core.engine import AnalysisBudgetExceeded


class TestInterprocedural:
    def test_param_passing(self, any_strategy):
        src = """
        int *g;
        void f(int *p) { g = p; }
        int x;
        void main(void) { f(&x); }
        """
        r = run(src, any_strategy)
        assert pts_names(r, "g") == ["x"]

    def test_return_value(self, any_strategy):
        src = """
        int x;
        int *id(int *p) { return p; }
        int *q;
        void main(void) { q = id(&x); }
        """
        r = run(src, any_strategy)
        assert pts_names(r, "q") == ["x"]

    def test_context_insensitive_merging(self, any_strategy):
        # One abstract param object per function: both call sites merge.
        src = """
        int *id(int *p) { return p; }
        int x, y, *a, *b;
        void main(void) { a = id(&x); b = id(&y); }
        """
        r = run(src, any_strategy)
        assert pts_names(r, "a") == ["x", "y"]
        assert pts_names(r, "b") == ["x", "y"]

    def test_recursion_terminates(self, any_strategy):
        src = """
        struct N { struct N *next; int v; };
        struct N *walk(struct N *n) {
            if (n->v) return walk(n->next);
            return n;
        }
        struct N a, b, *res;
        void main(void) { a.next = &b; res = walk(&a); }
        """
        r = run(src, any_strategy)
        assert set(pts_names(r, "res")) >= {"a", "b"}

    def test_struct_passed_by_value(self, field_strategy):
        src = """
        struct S { int *a; int *b; } g;
        int *out;
        void take(struct S s) { out = s.b; }
        int x, y;
        void main(void) { g.a = &x; g.b = &y; take(g); }
        """
        r = run(src, field_strategy)
        assert pts_names(r, "out") == ["y"]

    def test_global_initializer_flows(self, any_strategy):
        src = """
        int x;
        int *gp = &x;
        int *q;
        void main(void) { q = gp; }
        """
        r = run(src, any_strategy)
        assert pts_names(r, "q") == ["x"]


class TestFunctionPointers:
    SRC = """
    int x, y, *gx, *gy;
    int *fx(int *p) { gx = p; return p; }
    int *fy(int *p) { gy = p; return p; }
    void main(void) {
        int *(*fp)(int *);
        fp = fx;
        fp(&x);
    }
    """

    def test_indirect_call_binds_only_pointed_to_target(self, any_strategy):
        # Flow-insensitive analysis processes every function body, but a
        # call through fp only binds arguments to functions fp may point
        # to: fx's parameter receives &x, fy's does not.
        r = run(self.SRC, any_strategy)
        assert pts_names(r, "main::fp") == ["fx"]
        assert pts_names(r, "gx") == ["x"]
        assert pts_names(r, "gy") == []

    def test_fp_through_table(self, any_strategy):
        src = """
        int x, y, *g;
        void fx(void) { g = &x; }
        void fy(void) { g = &y; }
        void (*table[2])(void) = { fx, fy };
        void main(void) { table[1](); }
        """
        r = run(src, any_strategy)
        # Array collapsing merges both entries.
        assert pts_names(r, "g") == ["x", "y"]

    def test_fp_param_callback(self, any_strategy):
        src = """
        int x, *g;
        void cb(int *p) { g = p; }
        void invoke(void (*f)(int *), int *arg) { f(arg); }
        void main(void) { invoke(cb, &x); }
        """
        r = run(src, any_strategy)
        assert pts_names(r, "g") == ["x"]


class TestHeap:
    def test_malloc_flow(self, any_strategy):
        src = """
        struct S { struct S *next; } *head;
        void main(void) {
            head = (struct S*)malloc(sizeof(struct S));
            head->next = head;
        }
        """
        r = run(src, any_strategy)
        names = pts_names(r, "head")
        assert len(names) == 1 and names[0].startswith("malloc@")

    def test_list_building(self, field_strategy):
        src = """
        struct N { struct N *next; int *data; };
        int x;
        struct N *head;
        void main(void) {
            struct N *n = (struct N*)malloc(sizeof(struct N));
            n->data = &x;
            n->next = head;
            head = n;
        }
        """
        r = run(src, field_strategy)
        heap = [o for o in r.program.objects.all_objects() if o.is_heap][0]
        from repro.ir.refs import FieldRef

        data_pts = r.points_to_names(FieldRef(heap, ("data",)))
        assert data_pts == {"x"}

    def test_two_sites_distinguished(self, field_strategy):
        src = """
        int **p1, **p2;
        int x, y;
        void main(void) {
            p1 = (int**)malloc(sizeof(int*));
            p2 = (int**)malloc(sizeof(int*));
            *p1 = &x;
            *p2 = &y;
        }
        """
        r = run(src, field_strategy)
        assert pts_names(r, "p1") != pts_names(r, "p2")


class TestLibrarySummaries:
    def test_strdup_fresh_heap(self, any_strategy):
        src = """
        char *a;
        void main(void) { a = strdup("hi"); }
        """
        r = run(src, any_strategy)
        names = pts_names(r, "a")
        assert len(names) == 1 and names[0].startswith("strdup@")

    def test_strcpy_returns_dst(self, any_strategy):
        src = """
        char buf[16], *r;
        void main(void) { r = strcpy(buf, "x"); }
        """
        r = run(src, any_strategy)
        assert pts_names(r, "r") == ["buf"]

    def test_memcpy_copies_pointers(self, any_strategy):
        src = """
        struct S { int *a; int *b; } s1, s2;
        int x, y, *o;
        void main(void) {
            s1.a = &x; s1.b = &y;
            memcpy(&s2, &s1, sizeof(struct S));
            o = s2.a;
        }
        """
        r = run(src, any_strategy)
        assert "x" in pts_names(r, "o")

    def test_memcpy_field_precision(self, field_strategy):
        src = """
        struct S { int *a; int *b; } s1, s2;
        int x, y, *o;
        void main(void) {
            s1.a = &x; s1.b = &y;
            memcpy(&s2, &s1, sizeof(struct S));
            o = s2.a;
        }
        """
        r = run(src, field_strategy)
        assert pts_names(r, "o") == ["x"]

    def test_qsort_callback_bound(self, any_strategy):
        src = """
        int *seen;
        int cmp(void *a, void *b) { seen = (int*)a; return 0; }
        int arr[10];
        void main(void) { qsort(arr, 10, sizeof(int), cmp); }
        """
        r = run(src, any_strategy)
        assert "arr" in pts_names(r, "seen")

    def test_printf_no_effect(self, any_strategy):
        src = """
        int x, *p;
        void main(void) { p = &x; printf("%p", p); }
        """
        r = run(src, any_strategy)
        assert pts_names(r, "p") == ["x"]

    def test_unknown_extern_ret_aliases_args(self, any_strategy):
        src = """
        extern char *mystery(char *s);
        char buf[8], *r;
        void main(void) { r = mystery(buf); }
        """
        r = run(src, any_strategy)
        assert pts_names(r, "r") == ["buf"]


class TestUnions:
    SRC = """
    union U { int *ip; char *cp; } u;
    int x, *o1;
    char *o2;
    void main(void) {
        u.ip = &x;
        o1 = u.ip;
        o2 = u.cp;
    }
    """

    def test_union_members_alias(self, any_strategy):
        r = run(self.SRC, any_strategy)
        assert pts_names(r, "o1") == ["x"]
        assert pts_names(r, "o2") == ["x"]  # same storage

    def test_union_inside_struct(self, field_strategy):
        src = """
        struct V { int tag; union { int *i; char *c; } u; } v;
        int x; char *o;
        void main(void) { v.u.i = &x; o = v.u.c; }
        """
        r = run(src, field_strategy)
        assert pts_names(r, "o") == ["x"]


class TestEngineMechanics:
    def test_budget_exceeded(self):
        src = """
        struct Big { int *a[1]; } x, y;
        int v;
        void main(void) { x.a[0] = &v; y = x; }
        """
        with pytest.raises(AnalysisBudgetExceeded):
            analyze_c(src, CollapseOnCast(), max_facts=1)

    def test_stats_populated(self):
        src = """
        struct S { int *a; } s, t;
        void main(void) { t = s; }
        """
        r = analyze_c(src, CollapseOnCast())
        assert r.stats.resolve_calls >= 1
        assert r.stats.solve_seconds >= 0
        assert r.stats.facts == r.facts.edge_count()

    def test_lookup_counted_on_rule2(self):
        src = """
        struct S { int a; int b; } s, *p;
        int *q;
        void main(void) { p = &s; q = &p->b; }
        """
        r = analyze_c(src, CollapseOnCast())
        assert r.stats.lookup_calls >= 1
        assert r.stats.lookup_struct_calls >= 1

    def test_result_points_to_accepts_object(self):
        src = "int x, *p; void main(void) { p = &x; }"
        r = analyze_c(src, CollapseOnCast())
        p = r.program.objects.lookup("p")
        assert r.points_to_names(p) == {"x"}

    def test_fixpoint_idempotent(self, any_strategy):
        # Running twice gives identical fact counts.
        src = """
        struct N { struct N *next; } a, b, c;
        void main(void) { a.next = &b; b.next = &c; c.next = &a; }
        """
        r1 = run(src, any_strategy)
        r2 = run(src, type(any_strategy)())
        assert r1.facts.edge_count() == r2.facts.edge_count()


class TestDerefStatsPlumbing:
    def test_deref_sites_have_pointer(self):
        src = """
        int *p, x;
        void main(void) { x = *p; *p = x; }
        """
        r = analyze_c(src, CollapseOnCast())
        sites = list(r.program.deref_stmts())
        assert len(sites) == 2
        for st in sites:
            assert r.pointer_of_deref(st).name == "p"
