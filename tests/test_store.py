"""The content-addressed result store (:mod:`repro.store`).

Three contracts are pinned here:

- **Key sensitivity**: the hash must change — and hence lookups must
  miss — when any fixpoint-determining input changes: program text,
  strategy, ABI, strict/lenient mode, Assumption 1.  And it must NOT
  change for fixpoint-irrelevant inputs (the propagation backend).
- **Round-trip fidelity**: a warm-started result's points-to sets are
  byte-identical to the solved ones, across independent parses of the
  same source (fresh object identities), with ``store_hits`` visible
  in the result stats and the session counters.
- **Corruption safety**: whatever is on disk under the key — truncated
  JSON, random bytes, schema junk, version skew, facts naming unknown
  objects — a load degrades to a miss plus a WARNING diagnostic
  (kind ``store-corrupt``), never a crash.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import CommonInitialSequence, Offsets, analyze, program_from_c
from repro.core.facts import FactBase
from repro.core.result import Result
from repro.ctype.layout import LP64, Layout
from repro.diag import DiagnosticSink, Severity
from repro.ir.refs import FieldRef
from repro.session import AnalysisSession
from repro.store import ResultStore, store_key

SRC = """
struct S { int *p; int *q; };
int x, y;
int *gp;
struct S s;
void main(void) { s.p = &x; s.q = &y; gp = s.p; }
"""


def _solved(src=SRC, strategy=None):
    prog = program_from_c(src, name="t.c")
    strategy = strategy or CommonInitialSequence()
    return prog, strategy, analyze(prog, strategy)


# ---------------------------------------------------------------------------
# Key sensitivity.
# ---------------------------------------------------------------------------
def test_key_changes_on_every_fixpoint_input() -> None:
    prog = program_from_c(SRC, name="t.c")
    base = store_key(prog, CommonInitialSequence())
    # Program text.
    grown = program_from_c(SRC + "int extra;\n", name="t.c")
    assert store_key(grown, CommonInitialSequence()) != base
    # Strategy.
    assert store_key(prog, Offsets()) != base
    # ABI.
    assert store_key(prog, CommonInitialSequence(Layout(LP64))) != base
    # Strict / lenient front-end mode.
    assert store_key(prog, CommonInitialSequence(), strict=False) != base
    # Assumption 1.
    assert store_key(prog, CommonInitialSequence(),
                     assume_valid_pointers=False) != base


def test_key_ignores_backend_and_is_stable_across_parses() -> None:
    a = program_from_c(SRC, name="t.c")
    b = program_from_c(SRC, name="t.c")
    assert store_key(a, CommonInitialSequence()) == \
        store_key(b, CommonInitialSequence())


def test_key_sees_struct_member_changes() -> None:
    """Same tag, different member list: ``repr`` can't tell structs
    apart (it is deliberately field-blind), the store key must."""
    other = SRC.replace("int *p; int *q;", "int *q; int *p;")
    a = program_from_c(SRC, name="t.c")
    b = program_from_c(other, name="t.c")
    assert store_key(a, CommonInitialSequence()) != \
        store_key(b, CommonInitialSequence())


# ---------------------------------------------------------------------------
# Round trip.
# ---------------------------------------------------------------------------
def test_round_trip_byte_identical_across_parses(tmp_path) -> None:
    prog, strategy, res = _solved()
    store = ResultStore(tmp_path)
    key = store.put(prog, res)
    assert key is not None
    assert store.path_for(key).exists()

    prog2 = program_from_c(SRC, name="t.c")     # fresh identities
    strategy2 = CommonInitialSequence()
    warm = store.load(prog2, strategy2)
    assert warm is not None and warm.key == key
    for obj in prog.objects.all_objects():
        o2 = prog2.objects.lookup(obj.name)
        a = sorted(repr(r) for r in res.points_to(FieldRef(obj, ())))
        b = sorted(repr(r) for r in warm.result.points_to(FieldRef(o2, ())))
        assert a == b, obj.name
    assert warm.result.stats.store_hits == 1
    assert warm.result.facts.edge_count() == res.facts.edge_count()
    assert store.hits == 1 and store.misses == 0


def test_modular_summaries_round_trip(tmp_path) -> None:
    session = AnalysisSession.from_c(SRC, store=str(tmp_path))
    mres = session.solve_modular(CommonInitialSequence())
    warm = AnalysisSession.from_c(SRC, store=str(tmp_path))
    stored = warm.store.load(warm.program, CommonInitialSequence())
    assert stored is not None
    by_name = {s.name: s for s in stored.summaries}
    assert by_name.keys() == mres.summaries.keys()
    for name, summary in mres.summaries.items():
        assert by_name[name].as_dict() == summary.as_dict()


def test_session_warm_start_and_dropping_on_growth(tmp_path) -> None:
    st = CommonInitialSequence()
    cold = AnalysisSession.from_c(SRC, store=str(tmp_path))
    cold.solve(st)
    assert cold.store_misses == 1        # first solve missed, then wrote

    warm = AnalysisSession.from_c(SRC, store=str(tmp_path))
    res = warm.solve(st)
    assert warm.store_hits == 1
    assert res.stats.store_hits == 1
    assert warm.query(["gp"]) == {"gp": ["x"]}

    # Growth invalidates: warm results have no engine to re-drain.
    from repro.ir.stmts import AddrOf

    program = warm.program
    gp, y = program.objects.lookup("gp"), program.objects.lookup("y")
    warm.add_statements([AddrOf(gp, FieldRef(y, ()))], function="main")
    assert warm.query(["gp"]) == {"gp": ["x", "y"]}
    # The grown program re-solved (its key is new — another miss+write).
    assert warm.store_misses >= 1


def test_put_declines_unstorable_facts(tmp_path) -> None:
    """Facts naming objects outside the program's table (the pessimistic
    ``<unknown>`` sink) cannot be rebuilt by name: put returns None."""
    prog, strategy, res = _solved()
    foreign = program_from_c("int alien;", name="a.c")
    facts = FactBase()
    facts.add(
        strategy.normalize(FieldRef(prog.objects.lookup("gp"), ())),
        strategy.normalize(FieldRef(foreign.objects.lookup("alien"), ())),
    )
    fake = Result(prog, strategy, facts, res.stats)
    store = ResultStore(tmp_path)
    assert store.put(prog, fake) is None
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Corruption safety: fuzz the entry under a valid key.
# ---------------------------------------------------------------------------
def _corruptions(payload_text: str):
    rng = random.Random(0)
    yield ""                                            # empty file
    yield payload_text[: len(payload_text) // 2]        # truncated JSON
    yield "not json at all {{{"
    yield bytes(rng.randrange(256) for _ in range(512)).decode(
        "latin-1")                                      # random bytes
    yield json.dumps([1, 2, 3])                         # wrong shape
    yield json.dumps({"version": 999})                  # version skew
    doc = json.loads(payload_text)
    doc["strategy"] = "offsets"                         # field mismatch
    yield json.dumps(doc)
    doc = json.loads(payload_text)
    doc["refs"] = [["F", "no_such_object", []]]
    doc["adjacency"] = [[0, [0]]]
    yield json.dumps(doc)                               # unknown object
    doc = json.loads(payload_text)
    doc["adjacency"] = [[0, [10_000]]]                  # target out of range
    yield json.dumps(doc)
    doc = json.loads(payload_text)
    doc["adjacency"] = [[-2, [0]]]                      # source out of range
    yield json.dumps(doc)
    doc = json.loads(payload_text)
    doc["refs"] = "oops"                                # table not a list
    yield json.dumps(doc)


def test_corrupted_entries_degrade_to_miss_with_warning(tmp_path) -> None:
    prog, strategy, res = _solved()
    store = ResultStore(tmp_path)
    key = store.put(prog, res)
    path = store.path_for(key)
    pristine = path.read_text()

    for i, garbage in enumerate(_corruptions(pristine)):
        path.write_text(garbage, encoding="latin-1")
        sink = DiagnosticSink()
        loaded = store.load(prog, strategy, diagnostics=sink)
        assert loaded is None, f"corruption #{i} was not a miss"
        warnings = [d for d in sink.records if d.kind == "store-corrupt"]
        assert warnings and warnings[0].severity is Severity.WARNING, (
            f"corruption #{i} produced no store-corrupt WARNING")

    # The pristine entry still loads (the store object is not poisoned).
    path.write_text(pristine)
    assert store.load(prog, strategy) is not None


def test_corrupt_entry_makes_session_resolve(tmp_path) -> None:
    st = CommonInitialSequence()
    AnalysisSession.from_c(SRC, store=str(tmp_path)).solve(st)
    entry = next(tmp_path.glob("*.json"))
    entry.write_text("garbage")
    session = AnalysisSession.from_c(SRC, store=str(tmp_path))
    res = session.solve(st)                  # re-solves, never crashes
    assert session.store_hits == 0 and session.store_misses == 1
    assert res.points_to_names(session.program.objects.lookup("gp")) == {"x"}
    assert any(d.kind == "store-corrupt" for d in session.diagnostics.records)
    # ... and the re-solve healed the entry for the next process.
    healed = AnalysisSession.from_c(SRC, store=str(tmp_path))
    healed.solve(st)
    assert healed.store_hits == 1


def test_unwritable_store_warns_instead_of_raising(tmp_path) -> None:
    prog, strategy, res = _solved()
    store = ResultStore(tmp_path)
    (tmp_path / "blocker").mkdir()
    # Force the final rename target to be an existing directory: the
    # atomic replace fails with OSError on every platform.
    store.path_for = lambda key: tmp_path / "blocker"  # type: ignore
    sink = DiagnosticSink()
    assert store.put(prog, res, diagnostics=sink) is None
    assert any(d.kind == "store-write-failed" for d in sink.records)


@pytest.mark.parametrize("strict", [True, False], ids=["strict", "lenient"])
def test_lenient_and_strict_do_not_share_entries(tmp_path, strict) -> None:
    first = AnalysisSession.from_c(SRC, strict=strict, store=str(tmp_path))
    first.solve(CommonInitialSequence())
    other = AnalysisSession.from_c(SRC, strict=not strict,
                                   store=str(tmp_path))
    other.solve(CommonInitialSequence())
    assert other.store_hits == 0             # opposite mode never hits
    assert other.store_misses == 1
