"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    CollapseAlways,
    CollapseOnCast,
    CommonInitialSequence,
    Offsets,
    analyze_c,
)


def pts(result, name):
    """Points-to set (as sorted repr strings) of the named object."""
    obj = result.program.objects.lookup(name)
    assert obj is not None, f"no object named {name!r}"
    return sorted(map(repr, result.points_to(obj)))


def pts_names(result, name):
    """Names of objects pointed to by the named object."""
    obj = result.program.objects.lookup(name)
    assert obj is not None, f"no object named {name!r}"
    return sorted(result.points_to_names(obj))


@pytest.fixture(params=["collapse_always", "collapse_on_cast",
                        "common_initial_sequence", "offsets"])
def any_strategy(request):
    """Parametrize a test over all four instances of the framework."""
    return {
        "collapse_always": CollapseAlways,
        "collapse_on_cast": CollapseOnCast,
        "common_initial_sequence": CommonInitialSequence,
        "offsets": Offsets,
    }[request.param]()


@pytest.fixture(params=["collapse_on_cast", "common_initial_sequence", "offsets"])
def field_strategy(request):
    """Parametrize over the three field-distinguishing instances."""
    return {
        "collapse_on_cast": CollapseOnCast,
        "common_initial_sequence": CommonInitialSequence,
        "offsets": Offsets,
    }[request.param]()


def run(src: str, strategy):
    return analyze_c(src, strategy)
