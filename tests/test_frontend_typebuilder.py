"""Unit tests for the pycparser → CType builder."""


from pycparser import c_parser

from repro.ctype.types import (
    ArrayType,
    EnumType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    UnionType,
)
from repro.frontend.typebuilder import TypeBuilder


def decl_type(src: str, index: int = 0):
    """Type of the index-th declaration in ``src``."""
    ast = c_parser.CParser().parse(src)
    tb = TypeBuilder()
    result = None
    count = 0
    for ext in ast.ext:
        if ext.__class__.__name__ == "Typedef":
            tb.add_typedef(ext.name, ext.type)
            continue
        t = tb.from_decl(ext)
        if count == index:
            result = t
        count += 1
    return result, tb


class TestScalars:
    def test_int_variants(self):
        t, _ = decl_type("unsigned long x;")
        assert isinstance(t, IntType) and t.kind == "long" and not t.signed

    def test_long_long(self):
        t, _ = decl_type("long long x;")
        assert isinstance(t, IntType) and t.kind == "long long"

    def test_plain_unsigned(self):
        t, _ = decl_type("unsigned x;")
        assert isinstance(t, IntType) and t.kind == "int" and not t.signed

    def test_double(self):
        t, _ = decl_type("double d;")
        assert isinstance(t, FloatType) and t.kind == "double"

    def test_long_double(self):
        t, _ = decl_type("long double d;")
        assert isinstance(t, FloatType) and t.kind == "long double"

    def test_qualifiers(self):
        t, _ = decl_type("const volatile int x;")
        assert t.quals == ("const", "volatile")


class TestDerived:
    def test_pointer_chain(self):
        t, _ = decl_type("char **pp;")
        assert isinstance(t, PointerType)
        assert isinstance(t.pointee, PointerType)

    def test_array_with_constant_expr(self):
        t, _ = decl_type("int a[4 * 2 + 1];")
        assert isinstance(t, ArrayType) and t.length == 9

    def test_array_unsized(self):
        t, _ = decl_type("extern int a[];")
        assert isinstance(t, ArrayType) and t.length is None

    def test_matrix(self):
        t, _ = decl_type("int m[3][5];")
        assert isinstance(t, ArrayType) and t.length == 3
        assert isinstance(t.elem, ArrayType) and t.elem.length == 5

    def test_function_type(self):
        t, _ = decl_type("int f(char *s, double d);")
        assert isinstance(t, FunctionType)
        assert len(t.params) == 2 and not t.varargs

    def test_varargs(self):
        t, _ = decl_type("int printf(char *fmt, ...);")
        assert t.varargs

    def test_void_param_means_none(self):
        t, _ = decl_type("int f(void);")
        assert t.params == ()

    def test_array_param_decays(self):
        t, _ = decl_type("int f(int a[10]);")
        assert isinstance(t.params[0], PointerType)

    def test_function_param_decays(self):
        t, _ = decl_type("int f(int g(void));")
        assert isinstance(t.params[0], PointerType)
        assert isinstance(t.params[0].pointee, FunctionType)

    def test_function_pointer_var(self):
        t, _ = decl_type("int (*fp)(int);")
        assert isinstance(t, PointerType)
        assert isinstance(t.pointee, FunctionType)


class TestRecords:
    def test_struct_definition(self):
        t, _ = decl_type("struct P { int x; int y; } p;")
        assert isinstance(t, StructType) and t.is_complete
        assert [f.name for f in t.members()] == ["x", "y"]

    def test_struct_interned_by_tag(self):
        src = "struct P { int x; } a; struct P b;"
        t0, tb = decl_type(src, 0)
        t1, _tb = decl_type(src, 1)
        # Same builder interns by tag; different builders create new types.
        ast = c_parser.CParser().parse(src)
        tb = TypeBuilder()
        ta = tb.from_decl(ast.ext[0])
        tbb = tb.from_decl(ast.ext[1])
        assert ta is tbb

    def test_forward_declaration_completed(self):
        src = "struct N; struct N { struct N *next; } n;"
        ast = c_parser.CParser().parse(src)
        tb = TypeBuilder()
        fwd = tb.from_node(ast.ext[0].type)
        full = tb.from_decl(ast.ext[1])
        assert fwd is full and full.is_complete

    def test_self_referential(self):
        t, _ = decl_type("struct L { struct L *next; int v; } l;")
        assert t.field_named("next").type.pointee is t

    def test_union(self):
        t, _ = decl_type("union U { int i; char *p; } u;")
        assert isinstance(t, UnionType)

    def test_anonymous_struct_gets_tag(self):
        t, _ = decl_type("struct { int x; } s;")
        assert t.tag.startswith("<anon:")

    def test_nested_anonymous(self):
        t, _ = decl_type("struct O { struct { int a; } inner; } o;")
        inner = t.field_named("inner").type
        assert isinstance(inner, StructType) and inner.is_complete

    def test_bitfields(self):
        t, _ = decl_type("struct B { unsigned a : 3; unsigned b : 5; } x;")
        assert t.members()[0].bit_width == 3
        assert t.members()[1].bit_width == 5


class TestEnumsAndTypedefs:
    def test_enum_constants_recorded(self):
        src = "enum color { RED, GREEN = 5, BLUE } c;"
        t, tb = decl_type(src)
        assert isinstance(t, EnumType)
        assert tb.enum_consts == {"RED": 0, "GREEN": 5, "BLUE": 6}

    def test_enum_constant_in_array_size(self):
        src = "enum k { N = 4 }; int a[N];"
        t, _ = decl_type(src, 1)
        assert isinstance(t, ArrayType) and t.length == 4

    def test_typedef_resolution(self):
        src = "typedef unsigned long size_t; size_t n;"
        t, _ = decl_type(src)
        assert isinstance(t, IntType) and t.kind == "long" and not t.signed

    def test_typedef_of_struct(self):
        src = "typedef struct Pt { int x; } Pt; Pt p;"
        t, _ = decl_type(src)
        assert isinstance(t, StructType) and t.tag == "Pt"

    def test_char_constant_in_size(self):
        t, _ = decl_type("int a['A'];")
        assert t.length == 65

    def test_escape_char_constant(self):
        t, _ = decl_type(r"int a['\n'];")
        assert t.length == 10
